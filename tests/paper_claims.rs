//! The paper's quantitative claims, as executable assertions.
//!
//! Table I is reproduced exactly (the catalog is constructed from it); the
//! Fig. 8 curves are *measured* by running the suite, so these tests assert
//! the published qualitative shape: who improves, where the inflection
//! points fall, which clusters persist. EXPERIMENTS.md records the measured
//! values next to the paper's.

use openacc_vv::compiler::{BugCatalog, VendorCompiler, VendorId};
use openacc_vv::prelude::*;

fn pass_rates(vendor: VendorId) -> Vec<(f64, f64)> {
    let campaign = Campaign::new(openacc_vv::testsuite::full_suite());
    campaign
        .run_vendor_line(vendor)
        .runs
        .iter()
        .map(|r| (r.pass_rate(Language::C), r.pass_rate(Language::Fortran)))
        .collect()
}

#[test]
fn table_1_is_exact() {
    let catalog = BugCatalog::paper();
    let expected: &[(VendorId, Language, [usize; 8])] = &[
        (VendorId::Caps, Language::C, [36, 24, 20, 1, 1, 1, 0, 0]),
        (
            VendorId::Caps,
            Language::Fortran,
            [32, 70, 15, 1, 1, 0, 0, 0],
        ),
        (VendorId::Pgi, Language::C, [8, 8, 7, 6, 6, 5, 5, 5]),
        (
            VendorId::Pgi,
            Language::Fortran,
            [14, 14, 14, 14, 14, 13, 13, 13],
        ),
        (
            VendorId::Cray,
            Language::C,
            [16, 16, 16, 16, 16, 16, 16, 16],
        ),
        (VendorId::Cray, Language::Fortran, [6, 6, 6, 6, 6, 5, 5, 5]),
    ];
    for (vendor, lang, row) in expected {
        for (i, version) in vendor.versions().iter().enumerate() {
            assert_eq!(
                catalog.count(*vendor, *version, *lang),
                row[i],
                "{vendor} {version} {lang}"
            );
        }
    }
}

#[test]
fn fig8a_caps_shape() {
    let rates = pass_rates(VendorId::Caps);
    // "pass rates for CAPS 3.0.x and CAPS 3.1.x are much lower than 3.2.x
    // and 3.3.x" (§V-A).
    assert!(rates[0].0 < 70.0 && rates[2].0 < 70.0);
    assert!(rates[3].0 > 95.0 && rates[3].1 > 95.0);
    // 3.0.8's Fortran front-end regression (Table I: 70 bugs).
    assert!(rates[1].1 < rates[0].1);
    // Latest releases are clean.
    assert_eq!(rates[7], (100.0, 100.0));
}

#[test]
fn fig8b_pgi_shape() {
    let rates = pass_rates(VendorId::Pgi);
    // "version 12.8 onwards shows better quality … pass rate in 13.2 is not
    // as good as 12.10 … improvement from version 13.4 onwards" (§V-A).
    assert!(rates[3].0 > rates[0].0, "12.10 better than 12.6");
    assert!(rates[4].0 < rates[3].0, "13.2 dips below 12.10");
    assert!(rates[5].0 > rates[4].0, "13.4 recovers");
    // "Most of the tests that do not pass were mainly due to the async
    // clause": the latest release still fails async features only…
    let campaign = Campaign::new(openacc_vv::testsuite::full_suite());
    let run = campaign.run_one(&VendorCompiler::latest(VendorId::Pgi));
    let failing = run.failing_features(Language::C);
    assert!(!failing.is_empty());
    assert!(
        failing.iter().all(|f| {
            f.as_str().contains("async") || f.as_str() == "wait" || f.as_str() == "update.async"
        }),
        "PGI 13.8 C failures must all be in the async cluster: {failing:?}"
    );
}

#[test]
fn fig8c_cray_shape() {
    let rates = pass_rates(VendorId::Cray);
    // "The bar plots mostly shows no variation" (§V-A).
    for w in rates.windows(2) {
        assert!((w[0].0 - w[1].0).abs() < 1e-9, "C flat");
    }
    // Fortran improves once, at 8.1.7.
    assert!(rates[5].1 > rates[4].1);
    assert_eq!(rates[5].1, rates[7].1);
}

#[test]
fn caps_num_gangs_story_reproduces() {
    // §V-B Fig. 9: constant num_gangs works, variable expression is an
    // internal error before 3.1.0 and fixed afterwards.
    let suite = openacc_vv::testsuite::full_suite();
    let case = suite
        .iter()
        .find(|c| c.feature.as_str() == "parallel.num_gangs")
        .unwrap();
    use openacc_vv::validation::harness::run_case;
    let before = VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap());
    let r = run_case(case, &before, Language::C);
    assert!(
        matches!(r.status, TestStatus::CompileError(_)),
        "{:?}",
        r.status
    );
    let after = VendorCompiler::new(VendorId::Caps, "3.1.0".parse().unwrap());
    let r = run_case(case, &after, Language::C);
    assert!(r.passed(), "{:?}", r.status);
}

#[test]
fn pgi_async_test_story_reproduces() {
    // §V-B Fig. 10: acc_async_test keeps returning -1 on every PGI release.
    let suite = openacc_vv::testsuite::full_suite();
    let case = suite
        .iter()
        .find(|c| c.feature.as_str() == "rt.acc_async_test")
        .unwrap();
    use openacc_vv::validation::harness::run_case;
    for version in VendorId::Pgi.versions() {
        let compiler = VendorCompiler::new(VendorId::Pgi, version);
        let r = run_case(case, &compiler, Language::C);
        assert_eq!(r.status, TestStatus::WrongResult, "PGI {version}");
    }
}

#[test]
fn cray_scalar_copy_and_dead_region_stories_reproduce() {
    // §V-B: scalar copy omitted; dead compute regions eliminated.
    let suite = openacc_vv::testsuite::full_suite();
    use openacc_vv::validation::harness::run_case;
    let cray = VendorCompiler::latest(VendorId::Cray);
    let scalar = suite
        .iter()
        .find(|c| c.feature.as_str() == "data.copy_scalar")
        .unwrap();
    assert_eq!(
        run_case(scalar, &cray, Language::C).status,
        TestStatus::WrongResult
    );
    let copyout = suite
        .iter()
        .find(|c| c.feature.as_str() == "data.copyout")
        .unwrap();
    assert_eq!(
        run_case(copyout, &cray, Language::C).status,
        TestStatus::WrongResult
    );
    // Both pass under the reference implementation.
    let reference = VendorCompiler::reference();
    assert!(run_case(scalar, &reference, Language::C).passed());
    assert!(run_case(copyout, &reference, Language::C).passed());
}

#[test]
fn every_catalogued_bug_feature_has_a_corpus_test() {
    // A catalogued bug the suite cannot exercise would be undiscoverable;
    // every record's feature id must have a test in the corpus (in the
    // record's language).
    let suite = openacc_vv::testsuite::full_suite();
    let catalog = BugCatalog::paper();
    for record in catalog.records() {
        let case = suite.iter().find(|c| c.feature == record.feature);
        let case = case.unwrap_or_else(|| {
            panic!(
                "bug {} references feature {} with no corpus test",
                record.id, record.feature
            )
        });
        assert!(
            case.supports(record.language),
            "bug {} is a {} bug but the {} test does not cover that language",
            record.id,
            record.language,
            record.feature
        );
    }
}

#[test]
fn suite_scale_matches_paper() {
    // "more than 160 test cases covering the OpenACC C and OpenACC Fortran
    // feature set" (§III).
    let suite = openacc_vv::testsuite::full_suite();
    assert!(openacc_vv::testsuite::variant_count(&suite) > 160);
}
