//! Historical time-series determinism (ISSUE 10).
//!
//! The contract pinned here: the trend a store yields depends only on the
//! store's *contents*, never on how it was produced or maintained —
//!
//! 1. **Worker-count identity** — the default `accvv history` table (no
//!    latency columns) is byte-identical whether the suite ran with
//!    `--jobs 1` or `--jobs 4`.
//! 2. **Compaction/restart identity** — the full series, latency
//!    quantiles included, is identical before compaction, after it, and
//!    after reopening the store from disk.
//! 3. **Window edges** — `since`/`until` are inclusive on both edges, and
//!    epoch-0 rows (pre-epoch store format) land in the window's first
//!    bucket instead of being dropped.
//! 4. **Query agreement** — per-feature counted totals in the history
//!    agree with `/v1/query`-style totals, before and after compaction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use openacc_vv::compiler::VendorId;
use openacc_vv::harness::history::{baseline_json, render_table};
use openacc_vv::harness::{
    check_drift, history, DriftTolerance, HistoryRequest, QueryFilter, ResultStore,
};
use openacc_vv::obs::{GroupBy, LatencyCollector};
use openacc_vv::server::{run_submission, RunOptions, SubmissionSpec};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh on-disk store with an injectable clock, in a temp directory.
fn fresh_store(tag: &str) -> (ResultStore, Arc<AtomicU64>, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "accvv-history-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create store dir");
    let now = Arc::new(AtomicU64::new(10_000));
    let clock = Arc::clone(&now);
    let store = ResultStore::open(dir.join("results.j1"))
        .expect("open store")
        .with_clock(Arc::new(move || clock.load(Ordering::SeqCst)));
    (store, now, dir)
}

/// Run one small submission with `jobs` workers and fold it into `store`.
fn run_into(store: &ResultStore, jobs: usize, tenant: &str) -> u64 {
    let mut spec = SubmissionSpec::new(VendorId::Reference);
    spec.language = Some(openacc_vv::prelude::Language::C);
    spec.features = vec!["loop".to_string()];
    spec.tenant = tenant.to_string();
    let latency = LatencyCollector::new();
    let opts = RunOptions {
        jobs,
        latency: Some(latency.clone()),
        ..RunOptions::default()
    };
    let outcome = run_submission(&spec, &opts).expect("run submission");
    let scope = spec.compiler().expect("compiler").label();
    let id = store.begin(tenant, &scope, "text").expect("begin");
    store
        .record_cases(id, &outcome.run.results)
        .expect("record cases");
    store
        .record_latency(id, &latency.snapshot())
        .expect("record latency");
    store.set_state(id, "done", "").expect("set state");
    id
}

#[test]
fn trend_table_is_byte_identical_across_jobs() {
    let (store1, _, dir1) = fresh_store("jobs1");
    let (store4, _, dir4) = fresh_store("jobs4");
    run_into(&store1, 1, "alice");
    run_into(&store4, 4, "alice");

    let req = HistoryRequest::default();
    let rows1 = history(&store1, &req);
    let rows4 = history(&store4, &req);

    // The default table carries no wall-clock data: byte-identical.
    let t1 = render_table(&rows1, GroupBy::Profile, false);
    let t4 = render_table(&rows4, GroupBy::Profile, false);
    assert_eq!(t1, t4, "trend table diverged between --jobs 1 and --jobs 4");
    assert!(!t1.contains("p50us"));

    // Both runs recorded one latency sample per counted case, merged from
    // however many workers there were.
    assert_eq!(rows1.len(), 1);
    assert_eq!(rows1[0].latency.count(), rows1[0].counts.counted());
    assert_eq!(rows4[0].latency.count(), rows4[0].counts.counted());

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn series_survives_compaction_and_reopen_with_latency() {
    let (store, now, dir) = fresh_store("compact");
    run_into(&store, 2, "alice");
    now.store(20_000, Ordering::SeqCst);
    run_into(&store, 2, "bob");

    let req = HistoryRequest {
        bucket: 3600,
        by: GroupBy::Tenant,
        ..Default::default()
    };
    // Latency columns included: the merge law makes even the quantiles
    // stable across log rewrites.
    let before = render_table(&history(&store, &req), GroupBy::Tenant, true);
    assert!(before.contains("alice") && before.contains("bob"), "{before}");

    store.compact().expect("compact");
    let after_compact = render_table(&history(&store, &req), GroupBy::Tenant, true);
    assert_eq!(before, after_compact, "series changed across compaction");

    let reopened = ResultStore::open(dir.join("results.j1")).expect("reopen");
    let after_reopen = render_table(&history(&reopened, &req), GroupBy::Tenant, true);
    assert_eq!(before, after_reopen, "series changed across reopen");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn window_edges_are_inclusive_and_epoch_zero_joins_first_bucket() {
    let (store, now, dir) = fresh_store("edges");
    // Three submissions at epochs 10_000 / 13_600 / 17_200 — exactly one
    // bucket apart at width 3600, so each boundary is a bucket edge.
    for (epoch, tenant) in [(10_000u64, "t0"), (13_600, "t1"), (17_200, "t2")] {
        now.store(epoch, Ordering::SeqCst);
        let id = store.begin(tenant, "ref", "text").expect("begin");
        store
            .record_cases(
                id,
                &[openacc_vv::validation::CaseResult {
                    name: "loop".to_string(),
                    feature: openacc_vv::prelude::FeatureId::new("loop".to_string()),
                    language: openacc_vv::prelude::Language::C,
                    status: openacc_vv::prelude::TestStatus::Pass,
                    certainty: None,
                    functional_source: String::new(),
                    attempts: 1,
                }],
            )
            .expect("record");
    }

    let count = |since: u64, until: u64| -> u64 {
        let rows = history(
            &store,
            &HistoryRequest {
                bucket: 3600,
                since,
                until,
                by: GroupBy::Tenant,
                ..Default::default()
            },
        );
        rows.iter().map(|r| r.counts.pass).sum()
    };
    // Both window edges are inclusive…
    assert_eq!(count(10_000, 17_200), 3);
    assert_eq!(count(10_001, 17_199), 1, "interior only");
    assert_eq!(count(10_000, 10_000), 1, "single-point window keeps its edge row");
    // …and the bucket grid aligns to the absolute epoch, so a shifted
    // window reports the same bucket start for a shared submission.
    let full = history(
        &store,
        &HistoryRequest {
            bucket: 3600,
            by: GroupBy::Tenant,
            ..Default::default()
        },
    );
    let shifted = history(
        &store,
        &HistoryRequest {
            bucket: 3600,
            since: 12_000,
            by: GroupBy::Tenant,
            ..Default::default()
        },
    );
    let bucket_of = |rows: &[openacc_vv::obs::SeriesRow], key: &str| {
        rows.iter().find(|r| r.key == key).map(|r| r.bucket)
    };
    assert_eq!(bucket_of(&full, "t1"), bucket_of(&shifted, "t1"));

    // Epoch-0 rows predate the store's epoch field: any window adopts them
    // into its first bucket rather than dropping history.
    let zero_dir = std::env::temp_dir().join(format!(
        "accvv-history-zero-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&zero_dir).expect("create store dir");
    let zero = ResultStore::open(zero_dir.join("results.j1"))
        .expect("open")
        .with_clock(Arc::new(|| 0));
    let id = zero.begin("old", "ref", "text").expect("begin");
    zero.record_cases(
        id,
        &[openacc_vv::validation::CaseResult {
            name: "loop".to_string(),
            feature: openacc_vv::prelude::FeatureId::new("loop".to_string()),
            language: openacc_vv::prelude::Language::C,
            status: openacc_vv::prelude::TestStatus::Pass,
            certainty: None,
            functional_source: String::new(),
            attempts: 1,
        }],
    )
    .expect("record");
    let rows = history(
        &zero,
        &HistoryRequest {
            bucket: 3600,
            since: 50_000,
            until: 60_000,
            ..Default::default()
        },
    );
    assert_eq!(rows.len(), 1, "epoch-0 row dropped");
    assert_eq!(rows[0].bucket, 46_800, "first bucket of the window (50_000 aligned down)");

    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(zero_dir);
}

#[test]
fn history_agrees_with_query_before_and_after_compaction() {
    let (store, _, dir) = fresh_store("agree");
    run_into(&store, 2, "alice");

    let agree = |store: &ResultStore| {
        let rows = history(
            store,
            &HistoryRequest {
                by: GroupBy::Feature,
                ..Default::default()
            },
        );
        let query = store.query(&QueryFilter::default());
        assert_eq!(rows.len(), query.len(), "feature sets diverge");
        for q in &query {
            let h = rows
                .iter()
                .find(|r| r.key == q.feature)
                .unwrap_or_else(|| panic!("feature `{}` missing from history", q.feature));
            assert_eq!(
                h.counts.counted(),
                q.total as u64,
                "counted totals diverge for `{}`",
                q.feature
            );
            assert_eq!(
                h.counts.pass + h.counts.flaky,
                q.passed as u64,
                "pass totals diverge for `{}`",
                q.feature
            );
        }
    };
    agree(&store);
    store.compact().expect("compact");
    agree(&store);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drift_gate_round_trips_through_baseline_files() {
    let (store, _, dir) = fresh_store("drift");
    run_into(&store, 2, "alice");
    let rows = history(&store, &HistoryRequest::default());
    let baseline = baseline_json(&rows, GroupBy::Profile);
    // A store checked against its own baseline is clean and reports the
    // latency comparisons too (server-style runs record latency).
    let lines = check_drift(&rows, &baseline, &DriftTolerance::default()).expect("clean");
    assert!(!lines.is_empty());
    // Doctoring the baseline upward (the CI negative test does the same
    // with `accvv history --check`) trips the gate.
    let doctored = baseline.replace("\"pass_rate\":", "\"pass_rate\":200.0,\"was\":");
    let err = check_drift(&rows, &doctored, &DriftTolerance::default()).unwrap_err();
    assert!(err.contains("pass-rate regression"), "{err}");

    let _ = std::fs::remove_dir_all(dir);
}
