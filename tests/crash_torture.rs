//! Hostile-filesystem torture: the acceptance gate for the durability
//! layer (ISSUE 7 tentpole).
//!
//! The harness-level crash matrix (`openacc_vv::harness::run_torture`)
//! replays the reference durability workload — store lifecycle, rotated
//! journal, mid-campaign compaction, atomic sinks — crashing after EVERY
//! recorded filesystem operation and asserting the recovery invariants.
//! This file runs the FULL matrix (stride 1) plus targeted fault shapes
//! the matrix doesn't force: persistent ENOSPC, fsync poisoning, and a
//! crash wedged precisely into each window of the compaction swap.

use openacc_vv::harness::store::CompactionStats;
use openacc_vv::harness::{run_torture, QueryFilter, ResultStore, TortureConfig};
use openacc_vv::prelude::*;
use openacc_vv::validation::vfs::read_to_string;
use openacc_vv::validation::CaseResult;
use openacc_vv::validation::{FaultFs, FaultKind, Injection, OpKind, Vfs};
use std::path::Path;
use std::sync::Arc;

fn arc(fs: &FaultFs) -> Arc<dyn Vfs> {
    Arc::new(fs.clone())
}

fn case(name: &str, status: TestStatus) -> CaseResult {
    CaseResult {
        name: name.to_string(),
        feature: FeatureId::new("loop".to_string()),
        language: Language::C,
        status,
        certainty: None,
        functional_source: "int main(void) { return 0; }\n".to_string(),
        attempts: 1,
    }
}

/// A store with two submissions, the first rewritten enough times that
/// compaction has dead frames to reclaim.
fn seeded_store(vfs: Arc<dyn Vfs>) -> ResultStore {
    let store = ResultStore::open_via(vfs, "results.j1").expect("open store");
    let a = store.begin("alice", "PGI 13.4", "text").expect("begin a");
    for state in ["running", "compiling", "running", "done"] {
        store.set_state(a, state, "").expect("state");
    }
    store
        .record_cases(a, &[case("t1", TestStatus::Pass), case("t2", TestStatus::WrongResult)])
        .expect("cases");
    store.record_report(a, "REPORT A\n").expect("report");
    let b = store.begin("bob", "CAPS 3.3.0", "text").expect("begin b");
    store.set_state(b, "done", "").expect("state");
    store
}

#[test]
fn full_crash_matrix_holds_every_invariant() {
    // The tentpole acceptance criterion: crash after EVERY filesystem
    // operation of the reference workload; zero invariant violations.
    let outcome = run_torture(&TortureConfig {
        seed: 0xACC,
        stride: 1,
        verbose: false,
    })
    .expect("torture harness runs");
    assert_eq!(outcome.crash_points, outcome.total_ops);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "recovery invariants must hold at all {} crash points",
        outcome.total_ops
    );
}

#[test]
fn crash_matrix_holds_across_seeds() {
    // Different seeds pick different surviving prefixes of unsynced data
    // and pending renames — different torn states, same invariants.
    for seed in [1, 7, 0xDEAD] {
        let outcome = run_torture(&TortureConfig {
            seed,
            stride: 3,
            verbose: false,
        })
        .expect("torture harness runs");
        assert_eq!(
            outcome.violations,
            Vec::<String>::new(),
            "seed {seed} found violations"
        );
    }
}

#[test]
fn compaction_is_equivalent_and_reclaims_space() {
    let fs = FaultFs::new(9);
    let store = seeded_store(arc(&fs));
    let before_rows = store.query(&QueryFilter::default());
    let before_list = format!("{:?}", store.list());

    let stats: CompactionStats = store.compact().expect("compact");
    assert!(
        stats.new_bytes < stats.old_bytes,
        "compaction must reclaim space: {} -> {} bytes",
        stats.old_bytes,
        stats.new_bytes
    );
    assert_eq!(store.query(&QueryFilter::default()), before_rows);
    assert_eq!(format!("{:?}", store.list()), before_list);

    // Byte-level check: a reopen of the compacted store sees the identical
    // index — the swapped generation is self-sufficient.
    let reopened = ResultStore::open_via(arc(&fs), "results.j1").expect("reopen");
    assert_eq!(reopened.query(&QueryFilter::default()), before_rows);
    assert_eq!(format!("{:?}", reopened.list()), before_list);
    assert_eq!(reopened.generation(), 1);
}

#[test]
fn crash_in_every_compaction_window_recovers() {
    // Build the store once on a clean run to learn how many filesystem
    // ops the compaction itself performs, then crash inside each of them.
    let probe_fs = FaultFs::new(21);
    let probe_store = seeded_store(arc(&probe_fs));
    let setup_ops = probe_fs.op_count();
    let expected = probe_store.query(&QueryFilter::default());
    probe_store.compact().expect("clean compaction");
    let compact_ops = probe_fs.op_count() - setup_ops;
    assert!(compact_ops > 5, "compaction should span several ops");

    for k in 1..=compact_ops {
        let fs = FaultFs::new(21).with_crash_after(setup_ops + k);
        let store = seeded_store(arc(&fs));
        let _ = store.compact(); // errors expected at the crash point
        drop(store);
        // The last window (crash budget == total ops) never actually
        // fires; the settled image is the honest equivalent.
        let image = fs.crash_image().unwrap_or_else(|| fs.settled_image());

        // Reboot: the store must come back with the exact same queryable
        // state — either generation may be current, neither may be torn —
        // and stale generations must be garbage-collected.
        let boot = FaultFs::from_image(&image, 21);
        let vfs = arc(&boot);
        let store = ResultStore::open_via(Arc::clone(&vfs), "results.j1")
            .unwrap_or_else(|e| panic!("crash@+{k}: store failed to reopen: {e}"));
        assert_eq!(
            store.query(&QueryFilter::default()),
            expected,
            "crash@+{k}: query results changed across interrupted compaction"
        );
        let current = store.current_data_path();
        for g in 0..4u64 {
            let p = if g == 0 {
                "results.j1".to_string()
            } else {
                format!("results.j1.g{g}")
            };
            if Path::new(&p) != current && vfs.exists(Path::new(&p)) {
                panic!("crash@+{k}: stale generation {p} survived reopen");
            }
        }
    }
}

#[test]
fn enospc_mid_record_is_reported_and_recoverable() {
    // A full disk during a verdict append must surface as an error to the
    // caller (never a silent partial ack), and a later reopen must serve
    // the trusted prefix.
    let fs = FaultFs::new(3);
    let store = ResultStore::open_via(arc(&fs), "results.j1").expect("open");
    let id = store.begin("alice", "PGI 13.4", "text").expect("begin");
    // Arm the fault only now: FaultFs clones share state, so the disk
    // "fills up" between the acked begin and the verdict append.
    let fs = fs.with_injection(
        Injection::on(OpKind::Write, "results.j1", FaultKind::Enospc).times(1),
    );
    let err = store
        .record_cases(id, &[case("t1", TestStatus::Pass)])
        .expect_err("ENOSPC must be reported");
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);

    let reopened = ResultStore::open_via(arc(&fs), "results.j1").expect("reopen after ENOSPC");
    let sub = reopened.submission(id).expect("acked begin survives");
    assert!(
        sub.cases.len() <= 1,
        "un-acked verdict may be lost but never duplicated or torn"
    );
}

#[test]
fn failed_fsync_poisons_the_ack_path() {
    // fsyncgate semantics: after a failed fsync the buffered bytes are
    // GONE. The store must keep failing the ack path rather than retry
    // and pretend the data landed.
    let fs = FaultFs::new(5).with_injection(
        Injection::on(OpKind::Sync, "results.j1", FaultKind::Eio).times(1),
    );
    let store = ResultStore::open_via(arc(&fs), "results.j1").expect("open");
    let err = store.begin("alice", "PGI 13.4", "text").expect_err("failed fsync must fail begin");
    assert_eq!(err.kind(), std::io::ErrorKind::Other);

    // Nothing from the failed ack may surface after reboot.
    let image = fs.settled_image();
    let boot = FaultFs::from_image(&image, 5);
    let reopened = ResultStore::open_via(arc(&boot), "results.j1").expect("reopen");
    assert!(
        reopened.list().is_empty(),
        "un-acked submission must not survive a poisoned fsync"
    );
}

#[test]
fn journal_rotation_crash_points_preserve_acked_verdicts() {
    use openacc_vv::validation::journal::{JournalRecord, JournalSink, Replay};
    use openacc_vv::validation::FileJournal;

    // Reference: journal enough verdicts to force several rotations.
    let names: Vec<String> = (0..6).map(|i| format!("case-{i}")).collect();
    let write_all = |vfs: Arc<dyn Vfs>| -> Vec<String> {
        // Creation itself is inside the crash matrix: a budget of 1–2 ops
        // dies right here, acking nothing.
        let Ok(journal) = FileJournal::create_via(Arc::clone(&vfs), "sweep.journal") else {
            return Vec::new();
        };
        let journal = journal.with_rotation(200);
        let mut acked = Vec::new();
        for name in &names {
            journal.append(&JournalRecord::CaseDone {
                result: case(name, TestStatus::Pass),
                node: Some(3),
                duration_ms: 7,
            });
            if journal.take_error().is_none() {
                acked.push(name.clone());
            }
        }
        acked
    };
    let ref_fs = FaultFs::new(13);
    write_all(arc(&ref_fs));
    let total = ref_fs.op_count();

    for k in 1..=total {
        let fs = FaultFs::new(13).with_crash_after(k);
        let acked = write_all(arc(&fs));
        let image = fs.crash_image().unwrap_or_else(|| fs.settled_image());
        let boot = FaultFs::from_image(&image, 13);
        let vfs = arc(&boot);
        let (replay, _journal) = match Replay::open_resume_via(Arc::clone(&vfs), "sweep.journal") {
            Ok(pair) => pair,
            // The journal name itself may not have survived an early crash
            // — legal only if nothing was ever acked.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && acked.is_empty() => continue,
            Err(e) => panic!("crash@{k}: resume failed: {e}"),
        };
        for name in &acked {
            assert!(
                replay
                    .completed
                    .contains_key(&(name.clone(), Language::C)),
                "crash@{k}: acked verdict {name} lost across rotation"
            );
        }
    }
}

#[test]
fn torn_frames_never_reach_a_query() {
    // Hand-corrupt a store file at the byte level: a torn final frame and
    // trailing garbage must be invisible to queries and compacted away on
    // open, leaving only checksum-valid frames on disk.
    let fs = FaultFs::new(17);
    {
        let store = seeded_store(arc(&fs));
        drop(store);
    }
    let mut bytes = arc(&fs).read(Path::new("results.j1")).expect("read store");
    let intact = ResultStore::open_via(arc(&fs), "results.j1").expect("open intact");
    let intact_rows = intact.query(&QueryFilter::default());
    drop(intact);

    // Tear the last frame in half and append garbage.
    let keep = bytes.len() - 10;
    bytes.truncate(keep);
    bytes.extend_from_slice(b"J1 nothexa garbage\n\xff\xfe");
    let torn = FaultFs::new(17);
    {
        let mut f = torn.create(Path::new("results.j1")).expect("seed torn file");
        f.write_all(&bytes).expect("write");
        f.sync_all().expect("sync");
    }
    let store = ResultStore::open_via(arc(&torn), "results.j1").expect("open torn");
    let rows = store.query(&QueryFilter::default());
    assert!(rows.len() <= intact_rows.len());
    for row in &rows {
        assert!(intact_rows.contains(row), "query surfaced a frame the intact store never had");
    }
    // After open, the on-disk file holds only whole frames.
    let text = read_to_string(arc(&torn).as_ref(), Path::new("results.j1")).expect("readback");
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(line.starts_with("J1 "), "non-frame line survived open: {line:?}");
    }
}
