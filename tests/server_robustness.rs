//! Robustness of the campaign server (ISSUE 6).
//!
//! Four obligations from the issue are pinned here, over a real listener
//! (`127.0.0.1:0`) with a hand-rolled HTTP client:
//!
//! 1. **Breakers** — a vendor profile's circuit trips after N consecutive
//!    `Infra` verdicts, degrades admission while open, admits one half-open
//!    trial after the cooldown, and closes again on a clean trial.
//! 2. **Load shedding** — once the admission queue is full further
//!    submissions get 429 + `Retry-After`, while every submission that WAS
//!    admitted still runs to completion.
//! 3. **Deadlines & drain** — work whose deadline expired while queued is
//!    cancelled (never run); a drain marks queued-unstarted work cancelled
//!    and the result store still resolves every id after the fact.
//! 4. **Byte identity** — the report served over HTTP (cold cache and warm)
//!    equals the bytes `run_submission` produces with no cache at all.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use openacc_vv::compiler::VendorId;
use openacc_vv::harness::store::ResultStore;
use openacc_vv::prelude::*;
use openacc_vv::server::{
    run_submission, BreakerDecision, BreakerSet, BreakerState, DrainSummary, RunOptions,
    ServeConfig, Server, SubmissionSpec,
};

// ---------------------------------------------------------------------------
// Harness: a served instance on an ephemeral port + a raw HTTP/1.1 client
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "accvv-server-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

struct TestServer {
    addr: SocketAddr,
    store_dir: PathBuf,
    drain: std::sync::Arc<openacc_vv::validation::CancelToken>,
    handle: thread::JoinHandle<std::io::Result<DrainSummary>>,
}

impl TestServer {
    fn start(tag: &str, tune: impl FnOnce(&mut ServeConfig)) -> TestServer {
        let store_dir = fresh_store_dir(tag);
        let mut config = ServeConfig::new(&store_dir);
        config.addr = "127.0.0.1:0".to_string();
        tune(&mut config);
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let drain = server.drain_token();
        let handle = thread::spawn(move || server.run());
        TestServer {
            addr,
            store_dir,
            drain,
            handle,
        }
    }

    fn drain_and_join(self) -> DrainSummary {
        self.drain.cancel();
        let summary = self
            .handle
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
        let _ = std::fs::remove_dir_all(&self.store_dir);
        summary
    }
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Pull `"key":"value"` or `"key":123` out of a flat JSON body. The
    /// server emits no nested objects in the fields these tests read, so a
    /// scan is enough — no parser dependency in the test.
    fn json_field(&self, key: &str) -> Option<String> {
        let needle = format!("\"{key}\":");
        let at = self.body.find(&needle)? + needle.len();
        let rest = &self.body[at..];
        if let Some(stripped) = rest.strip_prefix('"') {
            Some(stripped[..stripped.find('"')?].to_string())
        } else {
            let end = rest
                .find([',', '}', ']'])
                .unwrap_or(rest.len());
            Some(rest[..end].trim().to_string())
        }
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> HttpReply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: accvv\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .expect("response has a head/body separator");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    HttpReply {
        status,
        headers,
        body: payload.to_string(),
    }
}

/// A small, fast submission: one feature prefix, one language.
fn small_submission(tenant: &str) -> String {
    format!(
        "{{\"vendor\":\"reference\",\"lang\":\"c\",\"features\":[\"loop\"],\"tenant\":\"{tenant}\"}}"
    )
}

fn poll_state(addr: SocketAddr, id: &str, until: &[&str], timeout: Duration) -> HttpReply {
    let deadline = Instant::now() + timeout;
    loop {
        let reply = http(addr, "GET", &format!("/v1/status/{id}"), None);
        let state = reply.json_field("state").unwrap_or_default();
        if until.contains(&state.as_str()) {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "submission {id} stuck in state `{state}` after {timeout:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------------
// 1. Circuit breaker state machine (pure, deterministic via explicit clocks)
// ---------------------------------------------------------------------------

#[test]
fn breaker_trips_half_opens_and_recovers() {
    let cooldown = Duration::from_secs(5);
    let set = BreakerSet::new(3, cooldown);
    let t0 = Instant::now();
    let infra = TestStatus::Infra("node fault".into());

    // Closed: everything admitted, no trial flag.
    assert!(matches!(
        set.admit_at("PGI 12.6", t0),
        BreakerDecision::Admit { trial: false }
    ));

    // Two consecutive infra failures: still closed (threshold is 3), and a
    // healthy verdict in between resets the streak.
    set.observe_at("PGI 12.6", [&infra, &infra], t0);
    set.observe_at("PGI 12.6", [&TestStatus::Pass], t0);
    set.observe_at("PGI 12.6", [&infra, &infra], t0);
    assert!(matches!(
        set.admit_at("PGI 12.6", t0),
        BreakerDecision::Admit { trial: false }
    ));
    assert_eq!(set.trips_total(), 0);

    // The third consecutive failure trips the circuit.
    set.observe_at("PGI 12.6", [&infra], t0);
    assert_eq!(set.trips_total(), 1);
    let BreakerDecision::Degraded { reason } = set.admit_at("PGI 12.6", t0) else {
        panic!("open breaker must degrade admission");
    };
    assert!(
        reason.contains("PGI 12.6") && reason.contains("3 consecutive"),
        "degradation reason should name the profile and threshold: {reason}"
    );

    // Other profiles are unaffected: the breaker is per vendor profile.
    assert!(matches!(
        set.admit_at("Cray 8.0", t0),
        BreakerDecision::Admit { trial: false }
    ));

    // After the cooldown, exactly one half-open trial is admitted…
    let later = t0 + cooldown + Duration::from_millis(1);
    assert!(matches!(
        set.admit_at("PGI 12.6", later),
        BreakerDecision::Admit { trial: true }
    ));
    // …and a clean trial closes the circuit again.
    set.observe_at("PGI 12.6", [&TestStatus::Pass, &TestStatus::Pass], later);
    assert!(matches!(
        set.admit_at("PGI 12.6", later),
        BreakerDecision::Admit { trial: false }
    ));
    assert_eq!(set.open_count(), 0);
}

#[test]
fn breaker_half_open_failure_reopens_immediately() {
    let cooldown = Duration::from_secs(5);
    let set = BreakerSet::new(2, cooldown);
    let t0 = Instant::now();
    let infra = TestStatus::Infra("still broken".into());

    set.observe_at("CAPS 3.0.8", [&infra, &infra], t0);
    assert_eq!(set.trips_total(), 1);

    // Half-open trial after the cooldown — but the profile is still sick:
    // ONE infra verdict re-opens it without needing a fresh streak.
    let trial_time = t0 + cooldown + Duration::from_millis(1);
    assert!(matches!(
        set.admit_at("CAPS 3.0.8", trial_time),
        BreakerDecision::Admit { trial: true }
    ));
    set.observe_at("CAPS 3.0.8", [&TestStatus::Pass, &infra], trial_time);
    assert_eq!(set.trips_total(), 2);
    assert!(matches!(
        set.admit_at("CAPS 3.0.8", trial_time),
        BreakerDecision::Degraded { .. }
    ));
    assert_eq!(
        set.snapshot()
            .iter()
            .map(|(_, s, trips)| (s.label(), *trips))
            .collect::<Vec<_>>(),
        vec![("open", 2)]
    );
    // Skipped rows are uncounted everywhere else; the breaker must agree.
    set.observe_at(
        "CAPS 3.0.8",
        [&TestStatus::Skipped(Some("degraded".into()))],
        trial_time,
    );
    assert!(matches!(
        set.snapshot()[0].1,
        BreakerState::Open { .. }
    ));
}

// ---------------------------------------------------------------------------
// 2. Load shedding under overload
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_429_while_admitted_work_completes() {
    let server = TestServer::start("shed", |c| {
        c.queue_cap = 2;
        c.retry_after_secs = 7;
    });
    let addr = server.addr;

    // Freeze the scheduler so the queue genuinely fills.
    assert_eq!(http(addr, "POST", "/v1/pause", None).status, 200);

    let mut admitted_ids = Vec::new();
    let mut shed = 0;
    for i in 0..5 {
        let reply = http(
            addr,
            "POST",
            "/v1/submit",
            Some(&small_submission(&format!("tenant-{i}"))),
        );
        match reply.status {
            202 => admitted_ids.push(reply.json_field("id").expect("admitted id")),
            429 => {
                shed += 1;
                assert_eq!(
                    reply.header("Retry-After"),
                    Some("7"),
                    "shed responses must carry the configured Retry-After"
                );
                assert!(reply.body.contains("queue full"), "{}", reply.body);
            }
            other => panic!("submit returned unexpected status {other}: {}", reply.body),
        }
    }
    assert_eq!(admitted_ids.len(), 2, "queue_cap=2 admits exactly two");
    assert_eq!(shed, 3, "everything past the cap is shed");

    // Back-pressure released: every admitted submission still completes.
    assert_eq!(http(addr, "POST", "/v1/resume", None).status, 200);
    for id in &admitted_ids {
        let reply = poll_state(addr, id, &["done"], Duration::from_secs(60));
        assert_eq!(reply.json_field("report_ready").as_deref(), Some("true"));
        let report = http(addr, "GET", &format!("/v1/report/{id}"), None);
        assert_eq!(report.status, 200);
        assert!(report.body.contains("loop"), "report covers the feature");
    }

    let summary = server.drain_and_join();
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.shed, 3);
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.cancelled, 0);
}

// ---------------------------------------------------------------------------
// 3. Deadlines and graceful drain
// ---------------------------------------------------------------------------

#[test]
fn deadline_expired_while_queued_is_cancelled_not_run() {
    let server = TestServer::start("deadline", |_| {});
    let addr = server.addr;

    assert_eq!(http(addr, "POST", "/v1/pause", None).status, 200);
    let body = "{\"vendor\":\"reference\",\"lang\":\"c\",\"features\":[\"loop\"],\"deadline_ms\":40}";
    let reply = http(addr, "POST", "/v1/submit", Some(body));
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = reply.json_field("id").expect("id");

    // Let the deadline lapse while the scheduler is paused, then release.
    thread::sleep(Duration::from_millis(120));
    assert_eq!(http(addr, "POST", "/v1/resume", None).status, 200);

    let reply = poll_state(addr, &id, &["cancelled"], Duration::from_secs(30));
    assert_eq!(
        reply.json_field("detail").as_deref(),
        Some("deadline expired while queued; not run")
    );
    assert_eq!(
        reply.json_field("cases").as_deref(),
        Some("0"),
        "expired work must never have executed"
    );

    let summary = server.drain_and_join();
    assert_eq!(summary.cancelled, 1);
    assert_eq!(summary.completed, 0);
}

#[test]
fn drain_cancels_queued_work_and_the_store_survives_restart() {
    let server = TestServer::start("drain", |c| c.queue_cap = 4);
    let addr = server.addr;
    let store_path = server.store_dir.join("results.j1");

    assert_eq!(http(addr, "POST", "/v1/pause", None).status, 200);
    let mut ids = Vec::new();
    for i in 0..2 {
        let reply = http(
            addr,
            "POST",
            "/v1/submit",
            Some(&small_submission(&format!("drainer-{i}"))),
        );
        assert_eq!(reply.status, 202, "{}", reply.body);
        ids.push(reply.json_field("id").expect("id").parse::<u64>().unwrap());
    }

    // Drain over HTTP (same path a SIGTERM takes), with the queue still
    // paused: nothing has started, so both submissions are cancelled.
    let reply = http(addr, "POST", "/v1/drain", None);
    assert_eq!(reply.status, 202);
    assert!(reply.body.contains("draining"));
    let summary = server
        .handle
        .join()
        .expect("server thread panicked")
        .expect("server run failed");
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.cancelled, 2);
    assert_eq!(summary.completed, 0);

    // Every id the server ever returned is resolvable after a restart: a
    // fresh ResultStore replaying the same journal sees the final states.
    let store = ResultStore::open(&store_path).expect("reopen result store");
    for id in ids {
        let sub = store
            .submission(id)
            .unwrap_or_else(|| panic!("submission {id} lost across restart"));
        assert_eq!(sub.state, "cancelled");
        assert_eq!(sub.detail, "server drained before execution");
    }
    let _ = std::fs::remove_dir_all(&server.store_dir);
}

// ---------------------------------------------------------------------------
// 4. Byte identity: the served report IS the one-shot report
// ---------------------------------------------------------------------------

#[test]
fn served_report_matches_run_submission_cold_and_warm() {
    // An early CAPS release so the report includes a bug appendix — the
    // hardest part to keep byte-stable.
    let mut spec = SubmissionSpec::new(VendorId::Caps);
    spec.version = Some("3.0.8".parse().unwrap());
    spec.language = Some(Language::C);
    spec.features = vec!["data.copy".to_string()];
    let expected = run_submission(&spec, &RunOptions::default())
        .expect("local run")
        .report;

    let server = TestServer::start("identity", |c| c.jobs = 2);
    let addr = server.addr;
    let body = "{\"vendor\":\"caps\",\"version\":\"3.0.8\",\"lang\":\"c\",\"features\":[\"data.copy\"]}";

    // Cold cache, then warm: the cache must never leak into the bytes.
    for pass in ["cold", "warm"] {
        let reply = http(addr, "POST", "/v1/submit", Some(body));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let id = reply.json_field("id").expect("id");
        poll_state(addr, &id, &["done"], Duration::from_secs(60));
        let report = http(addr, "GET", &format!("/v1/report/{id}"), None);
        assert_eq!(report.status, 200);
        assert_eq!(
            report.body, expected,
            "{pass}-cache served report diverged from the one-shot bytes"
        );
    }

    // The query endpoint aggregates what was stored.
    let query = http(addr, "GET", "/v1/query?scope=CAPS&lang=C", None);
    assert_eq!(query.status, 200);
    assert!(
        query.body.contains("\"pass_rate\":"),
        "query rows expose pass rates: {}",
        query.body
    );

    let summary = server.drain_and_join();
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.degraded, 0);
}

// ---------------------------------------------------------------------------
// 5. Execution dedup: identical in-flight submissions share one run
// ---------------------------------------------------------------------------

/// Three submissions selecting the identical execution (different tenants
/// and report formats) plus one selecting a different engine are queued
/// while the scheduler is paused. On release, the identical trio must
/// resolve through ONE execution — whichever of them runs first becomes
/// the leader and the other two are served from its results, re-rendered
/// in their own formats — while the odd one out runs on its own.
#[test]
fn identical_inflight_submissions_share_one_execution() {
    let server = TestServer::start("dedup", |c| c.queue_cap = 8);
    let addr = server.addr;
    assert_eq!(http(addr, "POST", "/v1/pause", None).status, 200);

    let trio_bodies = [
        small_submission("alpha"),
        small_submission("beta"),
        "{\"vendor\":\"reference\",\"lang\":\"c\",\"features\":[\"loop\"],\
         \"tenant\":\"gamma\",\"format\":\"csv\"}"
            .to_string(),
    ];
    let solo_body = "{\"vendor\":\"reference\",\"lang\":\"c\",\"features\":[\"loop\"],\
                     \"tenant\":\"delta\",\"exec_mode\":\"walk\"}";
    let mut trio_ids = Vec::new();
    for body in &trio_bodies {
        let reply = http(addr, "POST", "/v1/submit", Some(body));
        assert_eq!(reply.status, 202, "{}", reply.body);
        trio_ids.push(reply.json_field("id").expect("id"));
    }
    let solo = http(addr, "POST", "/v1/submit", Some(solo_body));
    assert_eq!(solo.status, 202, "{}", solo.body);
    let solo_id = solo.json_field("id").expect("id");

    assert_eq!(http(addr, "POST", "/v1/resume", None).status, 200);
    for id in trio_ids.iter().chain([&solo_id]) {
        poll_state(addr, id, &["done"], Duration::from_secs(60));
    }

    // Exactly one of the trio ran (empty detail); the other two were served
    // from its execution and say so.
    let details: Vec<String> = trio_ids
        .iter()
        .map(|id| {
            http(addr, "GET", &format!("/v1/status/{id}"), None)
                .json_field("detail")
                .unwrap_or_default()
        })
        .collect();
    assert_eq!(
        details.iter().filter(|d| d.contains("shared execution")).count(),
        2,
        "two of three identical submissions must be shared: {details:?}"
    );
    assert_eq!(
        details.iter().filter(|d| d.is_empty()).count(),
        1,
        "exactly one of the trio is the leader: {details:?}"
    );

    // The two text-format reports are byte-identical regardless of which
    // submission led; the csv sharer got its own format from the shared run.
    let report = |id: &str| http(addr, "GET", &format!("/v1/report/{id}"), None);
    let (alpha, beta, gamma) = (
        report(&trio_ids[0]),
        report(&trio_ids[1]),
        report(&trio_ids[2]),
    );
    assert_eq!(alpha.status, 200);
    assert_eq!(alpha.body, beta.body, "shared text reports diverged");
    assert!(
        gamma
            .header("Content-Type")
            .unwrap_or("")
            .contains("csv"),
        "csv sharer must be served csv"
    );
    assert_ne!(gamma.body, alpha.body, "csv body re-rendered, not copied");

    // The different-engine submission never shared: it ran itself.
    let solo_detail = http(addr, "GET", &format!("/v1/status/{solo_id}"), None)
        .json_field("detail")
        .unwrap_or_default();
    assert_eq!(solo_detail, "", "walk-mode submission must not share a vm run");

    let summary = server.drain_and_join();
    assert_eq!(summary.admitted, 4);
    assert_eq!(summary.completed, 4, "sharers still count as completed");
    assert_eq!(summary.shared, 2);
    assert_eq!(summary.cancelled, 0);
}

#[test]
fn report_before_completion_is_409_and_unknown_ids_404() {
    let server = TestServer::start("edges", |_| {});
    let addr = server.addr;

    assert_eq!(http(addr, "POST", "/v1/pause", None).status, 200);
    let reply = http(addr, "POST", "/v1/submit", Some(&small_submission("edge")));
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = reply.json_field("id").expect("id");

    // Queued, not run: the report is not ready yet.
    let early = http(addr, "GET", &format!("/v1/report/{id}"), None);
    assert_eq!(early.status, 409);
    assert!(early.body.contains("report not ready"), "{}", early.body);

    assert_eq!(http(addr, "GET", "/v1/status/99999", None).status, 404);
    assert_eq!(http(addr, "GET", "/v1/report/99999", None).status, 404);
    assert_eq!(http(addr, "GET", "/v1/status/xyz", None).status, 400);
    // Wrong method on a known path is 405, unknown paths are 404.
    assert_eq!(http(addr, "GET", "/v1/submit", None).status, 405);
    assert_eq!(http(addr, "GET", "/v1/nope", None).status, 404);

    // Malformed and invalid submissions are rejected at admission.
    assert_eq!(http(addr, "POST", "/v1/submit", Some("{nope")).status, 400);
    let bad_vendor = http(addr, "POST", "/v1/submit", Some("{\"vendor\":\"gcc\"}"));
    assert_eq!(bad_vendor.status, 400);
    assert!(bad_vendor.body.contains("unknown vendor"), "{}", bad_vendor.body);

    assert_eq!(http(addr, "POST", "/v1/resume", None).status, 200);
    poll_state(addr, &id, &["done"], Duration::from_secs(60));
    server.drain_and_join();
}

// ---------------------------------------------------------------------------
// 6. History endpoint: bucketed series, stable across compaction + restart
// ---------------------------------------------------------------------------

/// `GET /v1/history` folds the store into a bucketed series whose bytes
/// depend only on store contents: compacting the store and restarting the
/// server on the same directory must both serve the identical body. The
/// health and metrics endpoints ride along: per-profile breaker trip
/// counts in `/v1/healthz`, histogram quantiles and per-endpoint HTTP
/// latency in `/metrics`.
#[test]
fn history_survives_compaction_and_restart() {
    let server = TestServer::start("history", |c| c.jobs = 2);
    let addr = server.addr;
    let store_dir = server.store_dir.clone();

    for tenant in ["alice", "bob"] {
        let reply = http(addr, "POST", "/v1/submit", Some(&small_submission(tenant)));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let id = reply.json_field("id").expect("id");
        poll_state(addr, &id, &["done"], Duration::from_secs(60));
    }

    let path = "/v1/history?bucket=3600&by=profile";
    let before = http(addr, "GET", path, None);
    assert_eq!(before.status, 200);
    assert!(before.body.contains("\"by\":\"profile\""), "{}", before.body);
    assert!(before.body.contains("\"pass_rate\":"), "{}", before.body);
    assert!(
        before.body.contains("\"p50_us\":"),
        "server runs record per-case latency: {}",
        before.body
    );

    // Parameter validation.
    assert_eq!(http(addr, "GET", "/v1/history?bucket=0", None).status, 400);
    assert_eq!(http(addr, "GET", "/v1/history?by=planet", None).status, 400);
    assert_eq!(
        http(addr, "GET", "/v1/history?since=9&until=3", None).status,
        400
    );
    assert_eq!(http(addr, "POST", "/v1/history", None).status, 405);

    // Tenant grouping and filter agree with the full series.
    let by_tenant = http(addr, "GET", "/v1/history?by=tenant", None);
    assert!(by_tenant.body.contains("\"key\":\"alice\""), "{}", by_tenant.body);
    let only_bob = http(addr, "GET", "/v1/history?tenant=bob", None);
    assert!(!only_bob.body.contains("alice"), "{}", only_bob.body);

    // Health exposes per-profile trip counts (zero here — no infra faults).
    let health = http(addr, "GET", "/v1/healthz", None);
    assert!(health.body.contains("\"trips\":0"), "{}", health.body);
    // Metrics expose phase-latency quantiles and per-endpoint HTTP latency,
    // each with HELP/TYPE headers.
    let metrics = http(addr, "GET", "/metrics", None);
    for needle in [
        "# TYPE accvv_http_request_duration_us summary",
        "accvv_http_request_duration_us{path=\"/v1/submit\",quantile=\"0.5\"}",
    ] {
        assert!(metrics.body.contains(needle), "missing `{needle}`:\n{}", metrics.body);
    }

    // Compaction rewrites the log; the served series must not move.
    assert_eq!(http(addr, "POST", "/v1/compact", None).status, 200);
    let after_compact = http(addr, "GET", path, None);
    assert_eq!(
        before.body, after_compact.body,
        "history changed across compaction"
    );

    // Query agreement after compaction: same counted totals per scope.
    let query = http(addr, "GET", "/v1/query", None);
    assert!(query.body.contains("\"pass_rate\":"), "{}", query.body);

    // Restart on the same store: drain the first instance (keeping the
    // directory), bind a second, and expect the identical body.
    server.drain.cancel();
    server
        .handle
        .join()
        .expect("server thread panicked")
        .expect("server run failed");
    let mut config = ServeConfig::new(&store_dir);
    config.addr = "127.0.0.1:0".to_string();
    let second = Server::bind(config).expect("rebind on existing store");
    let addr2 = second.local_addr().expect("local addr");
    let drain = second.drain_token();
    let handle = thread::spawn(move || second.run());
    let after_restart = http(addr2, "GET", path, None);
    assert_eq!(
        before.body, after_restart.body,
        "history changed across restart"
    );
    drain.cancel();
    handle.join().expect("second server thread panicked").expect("run");
    let _ = std::fs::remove_dir_all(&store_dir);
}
