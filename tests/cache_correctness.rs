//! Correctness of the content-addressed compilation cache (ISSUE 3).
//!
//! The cache is a pure optimisation: its presence or absence must never be
//! observable in any report. Three obligations are pinned here:
//!
//! 1. **Transparency** — cached and uncached campaign reports are
//!    byte-identical, serial and parallel, for healthy and buggy compilers.
//! 2. **Isolation** — executable-level entries are keyed by the full vendor
//!    fingerprint: a PGI artifact is never served to Cray, while both share
//!    one front-end entry per distinct source.
//! 3. **Composition** — the PR 2 journal halt/resume machinery composes
//!    with the cache: a resumed cached run reproduces the clean uncached
//!    report byte for byte.

use openacc_vv::compiler::{CompileCache, VendorCompiler, VendorId};
use openacc_vv::prelude::*;
use openacc_vv::server::{run_submission, RunOptions, SubmissionSpec};
use openacc_vv::validation::{MemoryJournal, Replay};
use proptest::prelude::*;
use std::sync::Arc;

/// A small but representative slice of the corpus: compute, data, async and
/// update features, so both passing rows and (for old releases) bug-report
/// appendices appear in the rendered reports.
fn suite() -> Vec<TestCase> {
    const FEATURES: &[&str] = &["loop", "data.copy", "parallel.async", "update.host"];
    openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| FEATURES.contains(&c.feature.as_str()))
        .collect()
}

fn render_text(run: &openacc_vv::validation::SuiteRun) -> String {
    render(run, ReportFormat::Text)
}

// ---------------------------------------------------------------------------
// 1. Transparency
// ---------------------------------------------------------------------------

#[test]
fn cached_report_is_byte_identical_serial_and_parallel() {
    for compiler in [
        VendorCompiler::reference(),
        // An early CAPS release: real failures exercise the bug-report
        // appendix (which embeds generated sources) in the identity check.
        VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap()),
    ] {
        let plain = Campaign::new(suite());
        let cached = Campaign::new(suite()).with_cache(CompileCache::shared());
        let baseline = render_text(&plain.run_one(&compiler));
        assert_eq!(
            render_text(&cached.run_one(&compiler)),
            baseline,
            "cached serial report diverged ({})",
            compiler.label()
        );
        assert_eq!(
            render_text(&cached.run_one_parallel(&compiler, 4)),
            baseline,
            "cached parallel report diverged ({})",
            compiler.label()
        );
        assert_eq!(
            render_text(&plain.run_one_parallel(&compiler, 4)),
            baseline,
            "uncached parallel report diverged ({})",
            compiler.label()
        );
    }
}

#[test]
fn vendor_sweep_is_cache_transparent_and_hits() {
    let cache = CompileCache::shared();
    let plain = Campaign::new(suite());
    let cached = Campaign::new(suite()).with_cache(Arc::clone(&cache));
    let baseline = plain.run_vendor_line(VendorId::Pgi);
    let swept = cached.run_vendor_line(VendorId::Pgi);
    assert_eq!(swept.runs.len(), baseline.runs.len());
    for (c, b) in swept.runs.iter().zip(&baseline.runs) {
        assert_eq!(render_text(c), render_text(b));
    }
    // The whole point of the sweep cache: front-end work amortises across
    // versions, so hits dominate once the first version has populated it.
    let stats = cache.stats();
    assert!(
        stats.frontend_hits > stats.frontend_misses,
        "sweep should mostly hit the front-end cache: {stats}"
    );
}

// ---------------------------------------------------------------------------
// 2. Isolation
// ---------------------------------------------------------------------------

#[test]
fn exec_entries_are_isolated_per_vendor_but_share_the_frontend() {
    let cache = CompileCache::shared();
    let pgi = VendorCompiler::latest(VendorId::Pgi).with_cache(Arc::clone(&cache));
    let cray = VendorCompiler::latest(VendorId::Cray).with_cache(Arc::clone(&cache));
    let case = &suite()[0];
    let source = case.source_for(Language::C);

    let from_pgi = pgi.compile_shared(&source, Language::C).unwrap();
    let from_cray = cray.compile_shared(&source, Language::C).unwrap();
    // Distinct vendor fingerprints ⇒ distinct executables: the PGI artifact
    // (its defect walk baked in) must never be served to Cray.
    assert!(
        !Arc::ptr_eq(&from_pgi, &from_cray),
        "a PGI executable was served to Cray"
    );
    assert!(from_pgi.profile.name.starts_with("PGI"), "{}", from_pgi.profile.name);
    assert!(from_cray.profile.name.starts_with("Cray"), "{}", from_cray.profile.name);
    // ... while the language-level front-end entry is shared: one source,
    // one parse, whatever the vendor.
    assert_eq!(cache.frontend_entries(), 1);
    assert_eq!(cache.exec_entries(), 2);

    // Same vendor again: a true hit — the identical Arc comes back.
    let again = pgi.compile_shared(&source, Language::C).unwrap();
    assert!(Arc::ptr_eq(&from_pgi, &again));
}

#[test]
fn vendor_versions_do_not_share_executables() {
    let cache = CompileCache::shared();
    let case = &suite()[0];
    let source = case.source_for(Language::C);
    let mut seen = Vec::new();
    for v in VendorId::Caps.versions() {
        let c = VendorCompiler::new(VendorId::Caps, v).with_cache(Arc::clone(&cache));
        seen.push(c.compile_shared(&source, Language::C).unwrap());
    }
    for (i, a) in seen.iter().enumerate() {
        for b in &seen[i + 1..] {
            assert!(
                !Arc::ptr_eq(a, b),
                "two CAPS versions shared one executable entry"
            );
        }
    }
    // Every version walked its own defect catalog over ONE shared parse.
    assert_eq!(cache.frontend_entries(), 1);
    assert_eq!(cache.exec_entries(), seen.len());
}

// ---------------------------------------------------------------------------
// 3. Composition with the PR 2 journal
// ---------------------------------------------------------------------------

#[test]
fn journal_resume_composes_with_cache() {
    let compiler = VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap());
    // Clean, uncached, serial run: the reference output.
    let clean = {
        let campaign = Campaign::new(suite());
        let exec = Executor::new(ExecutorPolicy::new());
        render_text(&exec.run_suite(&campaign, &compiler))
    };

    // First leg: cached, journaled, halted partway through.
    let cache = CompileCache::shared();
    let campaign = Campaign::new(suite()).with_cache(Arc::clone(&cache));
    let journal = Arc::new(MemoryJournal::default());
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_jobs(4)
            .with_journal(journal.clone())
            .with_halt_after(3),
    );
    let (_, stats) = exec.run_suite_stats(&campaign, &compiler);
    assert!(stats.halted, "halt_after(3) should interrupt the suite");
    let warm_lookups = cache.stats().lookups();
    assert!(warm_lookups > 0, "first leg should have used the cache");

    // Second leg: resume from the journal with the SAME warm cache — the
    // replayed rows skip execution, the remainder compiles through the cache.
    let replay = Replay::from_text(&journal.text());
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_jobs(1)
            .with_resume(Arc::new(replay)),
    );
    let (run, stats) = exec.run_suite_stats(&campaign, &compiler);
    assert!(!stats.halted);
    assert!(stats.cached > 0, "resume should replay journaled rows");
    assert_eq!(
        render_text(&run),
        clean,
        "cached halt/resume diverged from the clean uncached run"
    );
}

// ---------------------------------------------------------------------------
// 4. Multi-tenant sharing (ISSUE 6: the campaign server's situation)
// ---------------------------------------------------------------------------

/// Build the submission one served tenant would send.
fn tenant_spec(vendor: VendorId, feature: &str, lang: Option<Language>) -> SubmissionSpec {
    let mut spec = SubmissionSpec::new(vendor);
    spec.features = vec![feature.to_string()];
    spec.language = lang;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The server runs many tenants' submissions against ONE process-wide
    /// compile cache, with campaigns from different tenants interleaving on
    /// the worker pool. Pin the tenancy obligation: two submissions running
    /// concurrently on a shared warm cache produce reports byte-identical
    /// to each submission run serially with no cache at all.
    #[test]
    fn interleaved_tenants_on_a_shared_warm_cache_match_serial_isolated_runs(
        vendor_a in prop::sample::select(vec![
            VendorId::Caps, VendorId::Pgi, VendorId::Cray, VendorId::Reference,
        ]),
        vendor_b in prop::sample::select(vec![
            VendorId::Caps, VendorId::Pgi, VendorId::Cray, VendorId::Reference,
        ]),
        feature_a in prop::sample::select(vec!["loop", "data.copy", "parallel.async"]),
        feature_b in prop::sample::select(vec!["data.copy", "update.host", "loop"]),
        c_only in prop::bool::ANY,
        jobs in prop::sample::select(vec![1usize, 3]),
    ) {
        let lang = if c_only { Some(Language::C) } else { None };
        let spec_a = tenant_spec(vendor_a, feature_a, lang);
        let spec_b = tenant_spec(vendor_b, feature_b, lang);

        // Serial, isolated, cache-less: the reference bytes.
        let serial_a = run_submission(&spec_a, &RunOptions::default()).unwrap().report;
        let serial_b = run_submission(&spec_b, &RunOptions::default()).unwrap().report;

        // One shared cache, pre-warmed by tenant A's campaign (the served
        // steady state: most submissions hit entries earlier tenants left).
        let cache = CompileCache::shared();
        let warm_opts = RunOptions {
            jobs,
            cache: Some(Arc::clone(&cache)),
            ..RunOptions::default()
        };
        let _ = run_submission(&spec_a, &warm_opts).unwrap();
        prop_assert!(cache.stats().lookups() > 0, "warmup must populate the cache");

        // Interleave: both tenants execute concurrently on the warm cache.
        let thread_a = {
            let spec = spec_a.clone();
            let opts = warm_opts.clone();
            std::thread::spawn(move || run_submission(&spec, &opts).unwrap().report)
        };
        let thread_b = {
            let spec = spec_b.clone();
            let opts = warm_opts.clone();
            std::thread::spawn(move || run_submission(&spec, &opts).unwrap().report)
        };
        let report_a = thread_a.join().expect("tenant A run panicked");
        let report_b = thread_b.join().expect("tenant B run panicked");

        prop_assert_eq!(
            report_a, serial_a,
            "tenant A's interleaved warm-cache report diverged from its serial isolated run"
        );
        prop_assert_eq!(
            report_b, serial_b,
            "tenant B's interleaved warm-cache report diverged from its serial isolated run"
        );
    }
}
