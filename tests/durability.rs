//! Durability properties of the campaign journal: crash-safe resume and
//! corruption recovery.
//!
//! The central claim (ISSUE: the tentpole invariant): for ANY interrupt
//! point — measured in raw journal bytes, so torn lines and half-written
//! records are in scope — and ANY `--jobs` value on either side, replaying
//! the journal prefix and resuming produces a final report byte-identical
//! to the uninterrupted run.

use openacc_vv::compiler::{VendorCompiler, VendorId};
use openacc_vv::prelude::*;
use openacc_vv::validation::report::render;
use openacc_vv::validation::{MemoryJournal, Replay};
use proptest::prelude::*;
use std::sync::Arc;

/// Fast exact-match features (4 cases × 2 languages = 8 jobs max).
const FEATURES: &[&str] = &["loop", "data.copy", "parallel.async", "update.host"];

fn suite_for(mask: &[bool]) -> Vec<TestCase> {
    let picked: Vec<&str> = FEATURES
        .iter()
        .zip(mask)
        .filter(|(_, &on)| on)
        .map(|(f, _)| *f)
        .collect();
    // Never an empty suite: default to the first feature.
    let picked = if picked.is_empty() {
        vec![FEATURES[0]]
    } else {
        picked
    };
    openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| picked.contains(&c.feature.as_str()))
        .collect()
}

fn compiler_for(buggy: bool) -> VendorCompiler {
    if buggy {
        // An early CAPS release: real failures, so the bug-report appendix
        // (with code snippets) is part of the byte-identity obligation.
        VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap())
    } else {
        VendorCompiler::reference()
    }
}

/// Run the suite journaled and uninterrupted; return the journal text and
/// the rendered report.
fn journaled_run(
    campaign: &Campaign,
    compiler: &VendorCompiler,
    jobs: usize,
) -> (String, String) {
    let journal = Arc::new(MemoryJournal::default());
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_jobs(jobs)
            .with_journal(journal.clone()),
    );
    let (run, stats) = exec.run_suite_stats(campaign, compiler);
    assert!(!stats.halted);
    assert_eq!(stats.cached, 0);
    (journal.text(), render(&run, ReportFormat::Text))
}

/// Resume from `journal_prefix` and render the final report.
fn resumed_report(campaign: &Campaign, compiler: &VendorCompiler, journal_prefix: &str, jobs: usize) -> String {
    let replay = Replay::from_text(journal_prefix);
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_jobs(jobs)
            .with_resume(Arc::new(replay)),
    );
    let (run, stats) = exec.run_suite_stats(campaign, compiler);
    assert!(!stats.halted);
    render(&run, ReportFormat::Text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random suite, random compiler, random byte-level interrupt point,
    /// random jobs on both sides: resume must reproduce the uninterrupted
    /// report byte for byte.
    #[test]
    fn resume_report_is_byte_identical_at_any_interrupt_point(
        mask in prop::collection::vec(prop::bool::ANY, 4usize),
        buggy in prop::bool::ANY,
        jobs_first in prop::sample::select(&[1usize, 4]),
        jobs_resume in prop::sample::select(&[1usize, 4]),
        cut_seed in 0usize..10_000,
    ) {
        let campaign = Campaign::new(suite_for(&mask));
        let compiler = compiler_for(buggy);
        let (journal, clean) = journaled_run(&campaign, &compiler, jobs_first);
        let mut cut = cut_seed % (journal.len() + 1);
        while !journal.is_char_boundary(cut) {
            cut -= 1;
        }
        let resumed = resumed_report(&campaign, &compiler, &journal[..cut], jobs_resume);
        prop_assert_eq!(
            resumed, clean,
            "cut at byte {} of {} (jobs {}→{})",
            cut, journal.len(), jobs_first, jobs_resume
        );
    }
}

// ---------------------------------------------------------------------------
// Targeted corruption recovery: each failure mode must recover without a
// panic, report what was discarded, and still reach the identical report.
// ---------------------------------------------------------------------------

fn full_campaign() -> (Campaign, VendorCompiler) {
    (
        Campaign::new(suite_for(&[true, true, true, true])),
        compiler_for(true),
    )
}

#[test]
fn truncated_last_line_is_discarded_and_resume_recovers() {
    let (campaign, compiler) = full_campaign();
    let (journal, clean) = journaled_run(&campaign, &compiler, 1);
    // Chop the final newline plus a few bytes: a torn tail from a crash
    // mid-write.
    let torn = &journal[..journal.len() - 3];
    let replay = Replay::from_text(torn);
    assert!(replay.torn_tail_discarded);
    assert!(
        replay.summary().contains("torn tail"),
        "discard must be reported: {}",
        replay.summary()
    );
    assert_eq!(resumed_report(&campaign, &compiler, torn, 1), clean);
}

#[test]
fn checksum_bit_flip_discards_the_tail_and_resume_recovers() {
    let (campaign, compiler) = full_campaign();
    let (journal, clean) = journaled_run(&campaign, &compiler, 1);
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 4);
    // Flip one checksum hex digit in a mid-journal line.
    let victim = lines.len() / 2;
    let mut corrupted = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == victim {
            let mut bytes = line.to_string().into_bytes();
            // Line format: `J1 <16 hex> payload…` — byte 3 is checksum hex.
            bytes[3] = if bytes[3] == b'0' { b'1' } else { b'0' };
            corrupted.push_str(&String::from_utf8(bytes).unwrap());
        } else {
            corrupted.push_str(line);
        }
        corrupted.push('\n');
    }
    let replay = Replay::from_text(&corrupted);
    assert_eq!(
        replay.corrupt_discarded,
        lines.len() - victim,
        "the flipped line and everything after it is untrusted"
    );
    assert!(
        replay.summary().contains("corrupt line"),
        "discard must be reported: {}",
        replay.summary()
    );
    assert_eq!(resumed_report(&campaign, &compiler, &corrupted, 1), clean);
}

#[test]
fn duplicate_completion_records_keep_first_and_resume_recovers() {
    let (campaign, compiler) = full_campaign();
    let (journal, clean) = journaled_run(&campaign, &compiler, 1);
    // Duplicate every case-completion line (valid frame, valid checksum).
    let mut duplicated = String::new();
    let mut dupes = 0;
    for line in journal.lines() {
        duplicated.push_str(line);
        duplicated.push('\n');
        // A completion line's frame is `J1 <checksum> done\t…`.
        if line.split('\t').next().unwrap_or("").ends_with(" done") {
            duplicated.push_str(line);
            duplicated.push('\n');
            dupes += 1;
        }
    }
    assert!(dupes > 0, "journal has completion records");
    let replay = Replay::from_text(&duplicated);
    assert_eq!(replay.duplicates_discarded, dupes, "first occurrence wins");
    assert!(
        replay.summary().contains("duplicate record"),
        "discard must be reported: {}",
        replay.summary()
    );
    assert_eq!(resumed_report(&campaign, &compiler, &duplicated, 1), clean);
}

#[test]
fn open_resume_compacts_a_poisoned_tail_before_appending() {
    let (campaign, compiler) = full_campaign();
    let (journal, clean) = journaled_run(&campaign, &compiler, 1);
    let dir = std::env::temp_dir().join(format!("accvv-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("poisoned.j1");
    // Persist a journal whose tail is torn mid-record.
    std::fs::write(&path, &journal[..journal.len() - 3]).unwrap();
    let (replay, file_journal) = Replay::open_resume(&path).unwrap();
    assert!(replay.torn_tail_discarded);
    // The torn bytes are gone from disk; the file ends at the trusted
    // prefix, so appended records are never behind a poisoned line.
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk.len(), replay.valid_bytes);
    assert!(on_disk.ends_with('\n'));
    // Finish the run against the compacted journal and replay the whole
    // thing: nothing may be discarded this time.
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_journal(Arc::new(file_journal))
            .with_resume(Arc::new(replay)),
    );
    let (run, stats) = exec.run_suite_stats(&campaign, &compiler);
    assert!(stats.cached > 0, "the journal prefix was worth something");
    assert_eq!(render(&run, ReportFormat::Text), clean);
    let final_replay = Replay::load(&path).unwrap();
    assert!(!final_replay.torn_tail_discarded);
    assert_eq!(final_replay.corrupt_discarded, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
