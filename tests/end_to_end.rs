//! End-to-end integration: template text → expansion → generated C and
//! Fortran programs → vendor compilation → simulated execution →
//! functional/cross verdicts → reports.

use openacc_vv::prelude::*;
use openacc_vv::validation::harness::run_case;
use openacc_vv::validation::report;
use openacc_vv::validation::template::parse_templates;

const TEMPLATE: &str = r#"
<acctest name="e2e.saxpy" feature="parallel.copy" cross="replace-clause:parallel.copy->create">
<description>end-to-end saxpy through the whole stack</description>
<code>
int main(void) {
    int error = 0;
    float X[32];
    float Y[32];
    float a = 2.0f;
    for (i = 0; i < 32; i++)
    {
        X[i] = i;
        Y[i] = 1.0f;
    }
    #pragma acc parallel copyin(X[0:32]) copy(Y[0:32])
    {
        #pragma acc loop
        for (i = 0; i < 32; i++)
        {
            Y[i] = a * X[i] + Y[i];
        }
    }
    for (i = 0; i < 32; i++)
    {
        if (Y[i] != 2.0f * i + 1.0f)
        {
            error++;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

#[test]
fn template_to_verdict_pipeline() {
    let case = parse_templates(TEMPLATE).unwrap().remove(0);
    // Both generated languages carry the directives.
    assert!(case
        .source_for(Language::C)
        .contains("#pragma acc parallel"));
    assert!(case
        .source_for(Language::Fortran)
        .contains("!$acc parallel"));
    // Reference: functional passes, cross discriminates at 100% certainty.
    let reference = VendorCompiler::reference();
    for lang in [Language::C, Language::Fortran] {
        let r = run_case(&case, &reference, lang);
        assert_eq!(r.status, TestStatus::Pass, "{lang}: {:?}", r.status);
        assert!(r.certainty.unwrap().validated());
    }
    // Every commercial latest release also passes this clean feature.
    for vendor in VendorId::COMMERCIAL {
        let compiler = VendorCompiler::latest(vendor);
        let r = run_case(&case, &compiler, Language::C);
        assert!(r.passed(), "{vendor}: {:?}", r.status);
    }
}

#[test]
fn full_suite_runs_produce_wellformed_reports() {
    let suite = openacc_vv::testsuite::full_suite();
    let campaign = Campaign::new(suite);
    let compiler = VendorCompiler::new(VendorId::Pgi, "12.6".parse().unwrap());
    let run = campaign.run_one(&compiler);
    // Every counted result is one of the taxonomy states; skipped results
    // only occur for Fortran variants of C-only tests.
    for r in &run.results {
        if r.language == Language::C {
            assert!(r.status.counted(), "{}: C variants always run", r.name);
        }
    }
    // All three report formats render non-trivially.
    for fmt in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Html] {
        let out = report::render(&run, fmt);
        assert!(out.len() > 200, "{fmt:?}");
        assert!(out.contains("PGI 12.6"));
    }
    // The async cluster must be visible in the failures.
    let failing = run.failing_features(Language::C);
    assert!(
        failing.iter().any(|f| f.as_str().contains("async")),
        "PGI 12.6 must fail async features: {failing:?}"
    );
}

#[test]
fn environment_variables_reach_the_runtime() {
    // The env.ACC_DEVICE_TYPE test passes only because the harness threads
    // the EnvConfig into the run.
    let suite = openacc_vv::testsuite::full_suite();
    let case = suite
        .iter()
        .find(|c| c.feature.as_str() == "env.ACC_DEVICE_TYPE")
        .unwrap();
    let r = run_case(case, &VendorCompiler::reference(), Language::C);
    assert!(r.passed(), "{:?}", r.status);
    // Strip the env and the same program must fail (the device type is no
    // longer HOST).
    let mut stripped = case.clone();
    stripped.env = openacc_vv::spec::envvar::EnvConfig::empty();
    let r = run_case(&stripped, &VendorCompiler::reference(), Language::C);
    assert_eq!(r.status, TestStatus::WrongResult);
}

#[test]
fn crash_timeout_and_compile_error_taxonomy_all_occur() {
    // Sweep every release of every vendor and collect the failure taxonomy;
    // the paper's three runtime error classes plus compile errors must all
    // be observable somewhere in the matrix.
    let suite = openacc_vv::testsuite::full_suite();
    let campaign = Campaign::new(suite);
    let mut total = FailureBreakdown::default();
    for vendor in VendorId::COMMERCIAL {
        for version in vendor.versions() {
            let run = campaign.run_one(&VendorCompiler::new(vendor, version));
            for lang in [Language::C, Language::Fortran] {
                let b = run.failure_breakdown(lang);
                total.compile_errors += b.compile_errors;
                total.wrong_results += b.wrong_results;
                total.crashes += b.crashes;
                total.timeouts += b.timeouts;
                total.infra += b.infra;
                total.flaky += b.flaky;
            }
        }
    }
    assert!(total.compile_errors > 0, "compile errors must occur");
    assert!(total.wrong_results > 0, "silent wrong results must occur");
    assert!(total.crashes > 0, "crashes must occur");
    assert!(total.timeouts > 0, "hangs (timeouts) must occur");
    // The vendor sweep is deterministic and panic-free: the two executor
    // classes never appear without injected infrastructure faults.
    assert_eq!(total.infra, 0, "no panics in a clean sweep");
    assert_eq!(total.flaky, 0, "no flakes without transient faults");
}
