//! Differential validation of the bytecode VM — and the parallel gang
//! engine layered under it — against the tree-walking reference
//! interpreter (ISSUE 4, extended for the parallel engine).
//!
//! The walker is the semantic oracle; the VM is the default engine; the
//! parallel engine (`--exec-mode par[:N]`) executes provably race-free
//! gang loops on a worker pool and falls back to the serial VM everywhere
//! else. Nothing observable may depend on which engine — or how many
//! worker threads — ran a case: reports (all formats), status sequences,
//! flake classification under seeded transient faults, version-sweep
//! output, and journal-resume results must be byte-identical. A seeded
//! shuffle picks the sampled subset so the comparison crosses feature
//! families without running the full corpus twice per configuration.

use openacc_vv::device::Defect;
use openacc_vv::prelude::*;
use openacc_vv::validation::report;
use openacc_vv::validation::{MemoryJournal, Replay};
use std::sync::Arc;

/// The parallel-engine thread counts every cross-engine check sweeps:
/// inline single-thread, one split, and more workers than the host has
/// cores.
const PAR_THREADS: [u16; 3] = [1, 2, 8];

/// Tiny xorshift* so the sample is deterministic without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A seeded sample of the full corpus: Fisher–Yates shuffle, truncate,
/// restore corpus order (so reports read like a normal run).
fn sampled_suite(seed: u64, keep: usize) -> Vec<TestCase> {
    let full = openacc_vv::testsuite::full_suite();
    let mut order: Vec<usize> = (0..full.len()).collect();
    let mut rng = Rng(seed | 1);
    for i in (1..order.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut picked: Vec<usize> = order.into_iter().take(keep.min(full.len())).collect();
    picked.sort_unstable();
    let mut by_index: Vec<Option<TestCase>> = full.into_iter().map(Some).collect();
    picked
        .into_iter()
        .map(|i| by_index[i].take().expect("index picked once"))
        .collect()
}

fn run_mode(
    campaign: &Campaign,
    compiler: &VendorCompiler,
    mode: ExecMode,
    jobs: usize,
) -> openacc_vv::validation::SuiteRun {
    let policy = ExecutorPolicy::new().with_exec_mode(mode).with_jobs(jobs);
    Executor::new(policy).run_suite(campaign, compiler)
}

#[test]
fn vm_and_walker_reports_are_byte_identical_across_vendors() {
    let campaign = Campaign::new(sampled_suite(0xACC1, 36));
    for compiler in [
        VendorCompiler::latest(VendorId::Pgi),
        VendorCompiler::latest(VendorId::Cray),
        // An early CAPS release: real failures put generated sources and
        // bug-report appendices into the identity check.
        VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap()),
    ] {
        let walked = run_mode(&campaign, &compiler, ExecMode::Walk, 1);
        let vmed = run_mode(&campaign, &compiler, ExecMode::Vm, 1);
        for fmt in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Html] {
            assert_eq!(
                report::render(&vmed, fmt),
                report::render(&walked, fmt),
                "{fmt:?} report diverged between engines ({})",
                compiler.label()
            );
        }
        for threads in PAR_THREADS {
            let parred = run_mode(&campaign, &compiler, ExecMode::Par { threads }, 1);
            for fmt in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Html] {
                assert_eq!(
                    report::render(&parred, fmt),
                    report::render(&walked, fmt),
                    "{fmt:?} report diverged under par:{threads} ({})",
                    compiler.label()
                );
            }
        }
    }
}

#[test]
fn engine_parity_is_independent_of_worker_count() {
    let campaign = Campaign::new(sampled_suite(0xACC2, 24));
    let compiler = VendorCompiler::latest(VendorId::Pgi);
    let baseline = report::render(
        &run_mode(&campaign, &compiler, ExecMode::Walk, 1),
        ReportFormat::Text,
    );
    for jobs in [1usize, 4] {
        assert_eq!(
            report::render(
                &run_mode(&campaign, &compiler, ExecMode::Vm, jobs),
                ReportFormat::Text
            ),
            baseline,
            "VM report with jobs={jobs} diverged from the serial walker"
        );
        // Worker pools inside the engine stacked on executor job threads:
        // still byte-identical.
        for threads in PAR_THREADS {
            assert_eq!(
                report::render(
                    &run_mode(&campaign, &compiler, ExecMode::Par { threads }, jobs),
                    ReportFormat::Text
                ),
                baseline,
                "par:{threads} report with jobs={jobs} diverged from the serial walker"
            );
        }
    }
}

#[test]
fn version_sweep_is_engine_independent() {
    let suite = sampled_suite(0xACC3, 16);
    let walk = Campaign::new(suite.clone())
        .with_config(SuiteConfig::new().with_exec_mode(ExecMode::Walk))
        .run_vendor_line(VendorId::Caps);
    let vm = Campaign::new(suite.clone())
        .with_config(SuiteConfig::new().with_exec_mode(ExecMode::Vm))
        .run_vendor_line(VendorId::Caps);
    assert_eq!(walk.runs.len(), vm.runs.len());
    for (w, v) in walk.runs.iter().zip(&vm.runs) {
        assert_eq!(
            report::render(v, ReportFormat::Text),
            report::render(w, ReportFormat::Text),
            "sweep row diverged between engines"
        );
    }
    let par = Campaign::new(suite)
        .with_config(SuiteConfig::new().with_exec_mode(ExecMode::Par { threads: 2 }))
        .run_vendor_line(VendorId::Caps);
    assert_eq!(walk.runs.len(), par.runs.len());
    for (w, p) in walk.runs.iter().zip(&par.runs) {
        assert_eq!(
            report::render(p, ReportFormat::Text),
            report::render(w, ReportFormat::Text),
            "sweep row diverged under the parallel engine"
        );
    }
}

/// Transient-fault draws are a pure function of (seed, program, run index),
/// and the run index advances identically in both engines — so retries,
/// flake classification, and the attempt series must match draw for draw.
#[test]
fn transient_memcpy_faults_classify_identically() {
    let suite = sampled_suite(0xACC4, 20);
    // Scan a small seed window for one that actually flips a verdict across
    // retries, so the Flaky path itself is part of the comparison.
    let statuses = |mode: ExecMode, seed: u64, jobs: usize| -> Vec<TestStatus> {
        let compiler = VendorCompiler::reference().with_extra_defect(
            Defect::TransientMemcpyFault { rate_pct: 35, seed },
        );
        let policy = ExecutorPolicy::new()
            .with_exec_mode(mode)
            .with_retries(4)
            .with_jobs(jobs);
        Executor::new(policy)
            .run_suite(&Campaign::new(suite.clone()), &compiler)
            .results
            .into_iter()
            .map(|r| r.status)
            .collect()
    };
    let seed = (0..32u64)
        .find(|&s| statuses(ExecMode::Walk, s, 1).contains(&TestStatus::Flaky))
        .expect("a seed in 0..32 produces at least one flaky case");
    let walk = statuses(ExecMode::Walk, seed, 1);
    assert!(walk.contains(&TestStatus::Flaky));
    assert_eq!(statuses(ExecMode::Vm, seed, 1), walk, "serial fault parity");
    assert_eq!(
        statuses(ExecMode::Vm, seed, 4),
        walk,
        "parallel fault parity"
    );
    // The gang engine under fault injection: a transient-fault profile has
    // region state drawn per run, and any case whose region the plan can't
    // prove race-free must fall back without perturbing the draw sequence.
    assert_eq!(
        statuses(ExecMode::Par { threads: 2 }, seed, 1),
        walk,
        "par:2 fault parity"
    );
    assert_eq!(
        statuses(ExecMode::Par { threads: 8 }, seed, 4),
        walk,
        "par:8 fault parity under --jobs 4"
    );
}

/// Journal resume under the parallel engine: interrupt a journaled par-mode
/// run mid-suite, resume it par-mode, and require the final report to match
/// the serial walker's uninterrupted run byte for byte.
#[test]
fn journal_resume_is_engine_independent() {
    let campaign = Campaign::new(sampled_suite(0xACC5, 18));
    let compiler = VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap());
    let oracle = report::render(
        &run_mode(&campaign, &compiler, ExecMode::Walk, 1),
        ReportFormat::Text,
    );
    for threads in PAR_THREADS {
        let mode = ExecMode::Par { threads };
        // Journaled, uninterrupted par run.
        let journal = Arc::new(MemoryJournal::default());
        let full = Executor::new(
            ExecutorPolicy::new()
                .with_exec_mode(mode)
                .with_journal(journal.clone()),
        )
        .run_suite(&campaign, &compiler);
        assert_eq!(
            report::render(&full, ReportFormat::Text),
            oracle,
            "journaled par:{threads} run diverged from the walker"
        );
        // Cut the journal mid-stream and resume under the same engine.
        let text = journal.text();
        let cut = text.len() / 2;
        let resumed = Executor::new(
            ExecutorPolicy::new()
                .with_exec_mode(mode)
                .with_resume(Arc::new(Replay::from_text(&text[..cut]))),
        )
        .run_suite(&campaign, &compiler);
        assert_eq!(
            report::render(&resumed, ReportFormat::Text),
            oracle,
            "par:{threads} resume from a torn journal diverged from the walker"
        );
    }
}
