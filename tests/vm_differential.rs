//! Differential validation of the bytecode VM against the tree-walking
//! reference interpreter (ISSUE 4).
//!
//! The walker is the semantic oracle; the VM is the default engine. Nothing
//! observable may depend on which one ran a case: reports (all formats),
//! status sequences, flake classification under seeded transient faults,
//! and version-sweep output must be byte-identical. A seeded shuffle picks
//! the sampled subset so the comparison crosses feature families without
//! running the full corpus twice per configuration.

use openacc_vv::device::Defect;
use openacc_vv::prelude::*;
use openacc_vv::validation::report;

/// Tiny xorshift* so the sample is deterministic without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A seeded sample of the full corpus: Fisher–Yates shuffle, truncate,
/// restore corpus order (so reports read like a normal run).
fn sampled_suite(seed: u64, keep: usize) -> Vec<TestCase> {
    let full = openacc_vv::testsuite::full_suite();
    let mut order: Vec<usize> = (0..full.len()).collect();
    let mut rng = Rng(seed | 1);
    for i in (1..order.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut picked: Vec<usize> = order.into_iter().take(keep.min(full.len())).collect();
    picked.sort_unstable();
    let mut by_index: Vec<Option<TestCase>> = full.into_iter().map(Some).collect();
    picked
        .into_iter()
        .map(|i| by_index[i].take().expect("index picked once"))
        .collect()
}

fn run_mode(
    campaign: &Campaign,
    compiler: &VendorCompiler,
    mode: ExecMode,
    jobs: usize,
) -> openacc_vv::validation::SuiteRun {
    let policy = ExecutorPolicy::new().with_exec_mode(mode).with_jobs(jobs);
    Executor::new(policy).run_suite(campaign, compiler)
}

#[test]
fn vm_and_walker_reports_are_byte_identical_across_vendors() {
    let campaign = Campaign::new(sampled_suite(0xACC1, 36));
    for compiler in [
        VendorCompiler::latest(VendorId::Pgi),
        VendorCompiler::latest(VendorId::Cray),
        // An early CAPS release: real failures put generated sources and
        // bug-report appendices into the identity check.
        VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap()),
    ] {
        let walked = run_mode(&campaign, &compiler, ExecMode::Walk, 1);
        let vmed = run_mode(&campaign, &compiler, ExecMode::Vm, 1);
        for fmt in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Html] {
            assert_eq!(
                report::render(&vmed, fmt),
                report::render(&walked, fmt),
                "{fmt:?} report diverged between engines ({})",
                compiler.label()
            );
        }
    }
}

#[test]
fn engine_parity_is_independent_of_worker_count() {
    let campaign = Campaign::new(sampled_suite(0xACC2, 24));
    let compiler = VendorCompiler::latest(VendorId::Pgi);
    let baseline = report::render(
        &run_mode(&campaign, &compiler, ExecMode::Walk, 1),
        ReportFormat::Text,
    );
    for jobs in [1usize, 4] {
        assert_eq!(
            report::render(
                &run_mode(&campaign, &compiler, ExecMode::Vm, jobs),
                ReportFormat::Text
            ),
            baseline,
            "VM report with jobs={jobs} diverged from the serial walker"
        );
    }
}

#[test]
fn version_sweep_is_engine_independent() {
    let suite = sampled_suite(0xACC3, 16);
    let walk = Campaign::new(suite.clone())
        .with_config(SuiteConfig::new().with_exec_mode(ExecMode::Walk))
        .run_vendor_line(VendorId::Caps);
    let vm = Campaign::new(suite)
        .with_config(SuiteConfig::new().with_exec_mode(ExecMode::Vm))
        .run_vendor_line(VendorId::Caps);
    assert_eq!(walk.runs.len(), vm.runs.len());
    for (w, v) in walk.runs.iter().zip(&vm.runs) {
        assert_eq!(
            report::render(v, ReportFormat::Text),
            report::render(w, ReportFormat::Text),
            "sweep row diverged between engines"
        );
    }
}

/// Transient-fault draws are a pure function of (seed, program, run index),
/// and the run index advances identically in both engines — so retries,
/// flake classification, and the attempt series must match draw for draw.
#[test]
fn transient_memcpy_faults_classify_identically() {
    let suite = sampled_suite(0xACC4, 20);
    // Scan a small seed window for one that actually flips a verdict across
    // retries, so the Flaky path itself is part of the comparison.
    let statuses = |mode: ExecMode, seed: u64, jobs: usize| -> Vec<TestStatus> {
        let compiler = VendorCompiler::reference().with_extra_defect(
            Defect::TransientMemcpyFault { rate_pct: 35, seed },
        );
        let policy = ExecutorPolicy::new()
            .with_exec_mode(mode)
            .with_retries(4)
            .with_jobs(jobs);
        Executor::new(policy)
            .run_suite(&Campaign::new(suite.clone()), &compiler)
            .results
            .into_iter()
            .map(|r| r.status)
            .collect()
    };
    let seed = (0..32u64)
        .find(|&s| statuses(ExecMode::Walk, s, 1).contains(&TestStatus::Flaky))
        .expect("a seed in 0..32 produces at least one flaky case");
    let walk = statuses(ExecMode::Walk, seed, 1);
    assert!(walk.contains(&TestStatus::Flaky));
    assert_eq!(statuses(ExecMode::Vm, seed, 1), walk, "serial fault parity");
    assert_eq!(
        statuses(ExecMode::Vm, seed, 4),
        walk,
        "parallel fault parity"
    );
}
