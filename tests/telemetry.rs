//! Telemetry guarantees: deterministic traces, zero report/journal
//! perturbation, resume attribution, and well-formed Chrome exports.
//!
//! The two load-bearing claims (ISSUE: the tentpole invariants):
//!
//! 1. The merged JSONL trace is **byte-identical across `--jobs 1` and
//!    `--jobs N`** for the same suite and compiler — events merge on a
//!    deterministic `(run, part, job, seq)` key with no wall-clock
//!    component, and schedule-dependent (timing-class) events neither
//!    appear in the JSONL nor shift the sequence numbers of the logical
//!    events around them.
//! 2. Turning telemetry on changes **nothing** the suite already produced:
//!    rendered reports and journal bytes are identical with the recorder
//!    enabled or disabled.

use openacc_vv::compiler::{CompileCache, VendorCompiler, VendorId};
use openacc_vv::obs;
use openacc_vv::prelude::*;
use openacc_vv::validation::report::render;
use openacc_vv::validation::{MemoryJournal, Replay};
use std::sync::Arc;

/// Fast exact-match features (4 cases × 2 languages = 8 jobs).
const FEATURES: &[&str] = &["loop", "data.copy", "parallel.async", "update.host"];

fn small_suite() -> Vec<TestCase> {
    openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| FEATURES.contains(&c.feature.as_str()))
        .collect()
}

/// Run the suite with a fresh enabled recorder; return the merged JSONL.
fn traced_jsonl(compiler: &VendorCompiler, jobs: usize, cache: bool) -> String {
    let recorder = obs::Recorder::enabled();
    let mut campaign = Campaign::new(small_suite());
    if cache {
        campaign = campaign.with_cache(CompileCache::shared());
    }
    let exec = Executor::new(
        ExecutorPolicy::new()
            .with_jobs(jobs)
            .with_recorder(recorder.clone()),
    );
    let (_, stats) = exec.run_suite_stats(&campaign, compiler);
    assert!(!stats.halted);
    obs::trace::render_jsonl(&recorder.snapshot())
}

#[test]
fn merged_jsonl_is_byte_identical_across_jobs() {
    for buggy in [false, true] {
        let compiler = if buggy {
            VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap())
        } else {
            VendorCompiler::reference()
        };
        // The shared compile cache makes hit/miss attribution (and the
        // miss-only lowering span) land on whichever worker got there
        // first — exactly the schedule dependence the JSONL must not see.
        let serial = traced_jsonl(&compiler, 1, true);
        let parallel = traced_jsonl(&compiler, 4, true);
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "trace diverged across --jobs (buggy={buggy})");
    }
}

/// Journal frames with the wall-clock duration fields zeroed: durations
/// differ between ANY two runs, telemetry or not, so the byte-identity
/// claim is about every other byte of every frame. The per-frame checksum
/// covers the duration bytes, so it is dropped along with them.
fn normalized_journal(text: &str) -> String {
    text.lines()
        .map(|line| {
            // Frame layout: `J1 <hash> <tab-separated record>`.
            let record = line.splitn(3, ' ').nth(2).unwrap_or(line);
            let mut f: Vec<&str> = record.split('\t').collect();
            match f.first() {
                Some(&"attempt") if f.len() >= 6 => f[5] = "0",
                Some(&"done") if f.len() >= 8 => f[7] = "0",
                _ => {}
            }
            f.join("\t")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn reports_and_journal_bytes_are_identical_with_telemetry_on_or_off() {
    let compiler = VendorCompiler::new(VendorId::Caps, "3.0.8".parse().unwrap());
    let campaign = Campaign::new(small_suite());
    let run_with = |recorder: obs::Recorder| {
        let journal = Arc::new(MemoryJournal::default());
        // Serial: with workers, journal APPEND order is schedule-dependent
        // with or without telemetry — the frames-identical claim is about
        // frame content, checked here in the one deterministic order.
        let exec = Executor::new(
            ExecutorPolicy::new()
                .with_journal(journal.clone())
                .with_recorder(recorder),
        );
        let (run, _) = exec.run_suite_stats(&campaign, &compiler);
        (render(&run, ReportFormat::Text), journal.text())
    };
    let (report_off, journal_off) = run_with(obs::Recorder::disabled());
    let enabled = obs::Recorder::enabled();
    let (report_on, journal_on) = run_with(enabled.clone());
    assert!(!enabled.snapshot().is_empty(), "recorder collected nothing");
    assert_eq!(report_off, report_on, "telemetry perturbed the report");
    assert_eq!(
        normalized_journal(&journal_off),
        normalized_journal(&journal_on),
        "telemetry perturbed the journal"
    );
}

#[test]
fn resumed_cases_are_marked_cached_resume_and_never_re_execute() {
    let compiler = VendorCompiler::reference();
    let campaign = Campaign::new(small_suite());
    // First run: journal everything, halt partway.
    let journal = Arc::new(MemoryJournal::default());
    let halted = Executor::new(
        ExecutorPolicy::new()
            .with_journal(journal.clone())
            .with_halt_after(5),
    );
    let (_, stats) = halted.run_suite_stats(&campaign, &compiler);
    assert!(stats.halted);
    assert_eq!(stats.executed, 5);
    // Resume with tracing on.
    let recorder = obs::Recorder::enabled();
    let resumed = Executor::new(
        ExecutorPolicy::new()
            .with_resume(Arc::new(Replay::from_text(&journal.text())))
            .with_recorder(recorder.clone()),
    );
    let (_, stats) = resumed.run_suite_stats(&campaign, &compiler);
    assert!(!stats.halted);
    assert_eq!(stats.cached, 5);
    let events = recorder.snapshot();
    // Every replayed job is a single `cached_resume` instant carrying the
    // recorded verdict...
    let replayed: Vec<u32> = events
        .iter()
        .filter(|e| e.attr_str("source") == Some("cached_resume"))
        .map(|e| {
            assert_eq!(e.kind, "case");
            assert_eq!(e.ph, obs::Phase::Instant);
            assert!(e.attr_str("status").is_some());
            e.job
        })
        .collect();
    assert_eq!(replayed.len(), 5);
    // ...and its job scope contains no compile/exec/attempt activity: a
    // replayed case is never re-run.
    for e in &events {
        if e.part == obs::PART_JOB && replayed.contains(&e.job) {
            assert_eq!(
                e.kind, "case",
                "replayed job {} re-emitted a `{}` event",
                e.job, e.kind
            );
        }
    }
    // Executed jobs, by contrast, do carry execute spans.
    assert!(events
        .iter()
        .any(|e| e.kind == "exec" && !replayed.contains(&e.job)));
}

#[test]
fn chrome_export_validates_and_agrees_with_parsed_jsonl() {
    let recorder = obs::Recorder::enabled();
    let campaign = Campaign::new(small_suite()).with_cache(CompileCache::shared());
    let exec = Executor::new(ExecutorPolicy::new().with_jobs(4).with_recorder(recorder.clone()));
    exec.run_suite_stats(&campaign, &VendorCompiler::reference());
    let events = recorder.snapshot();
    let jsonl = obs::trace::render_jsonl(&events);
    // The live snapshot and the parsed JSONL must export the same Chrome
    // document (the chrome sink excludes timing-class events for exactly
    // this equivalence), and the export must pass span-nesting validation.
    let live = obs::chrome::render(&events);
    let parsed = obs::trace::parse_jsonl(&jsonl).expect("own trace parses");
    let reparsed = obs::chrome::render(&parsed);
    assert_eq!(live, reparsed);
    let spans = obs::chrome::validate(&live).expect("chrome trace validates");
    assert!(spans > 0);
    // JSONL re-render is byte-stable through a parse round trip.
    assert_eq!(obs::trace::render_jsonl(&parsed), jsonl);
}

#[test]
fn metrics_expose_cache_counters_as_single_source_of_truth() {
    let recorder = obs::Recorder::enabled();
    let cache = CompileCache::shared();
    let campaign = Campaign::new(small_suite()).with_cache(Arc::clone(&cache));
    let exec = Executor::new(ExecutorPolicy::new().with_recorder(recorder.clone()));
    exec.run_suite_stats(&campaign, &VendorCompiler::reference());
    let stats = cache.stats();
    assert!(stats.lookups() > 0);
    let counters = obs::metrics::CacheCounters {
        frontend_hits: stats.frontend_hits,
        frontend_misses: stats.frontend_misses,
        exec_hits: stats.exec_hits,
        exec_misses: stats.exec_misses,
    };
    let text = obs::metrics::render_prometheus(&recorder.snapshot(), Some(&counters));
    // The exposition carries the cache's own atomics, verbatim.
    assert!(text.contains(&format!(
        "accvv_compile_cache_lookups_total{{level=\"frontend\",outcome=\"miss\"}} {}",
        stats.frontend_misses
    )));
    assert!(text.contains(&format!(
        "accvv_compile_cache_lookups_total{{level=\"exec\",outcome=\"hit\"}} {}",
        stats.exec_hits
    )));
    // And the case outcomes aggregated from span attrs are present.
    assert!(text.contains("accvv_case_status_total{status=\"PASS\"}"));
}
