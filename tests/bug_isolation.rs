//! Every catalogued bug must be discoverable by the suite **in isolation**:
//! injecting just that record's defect into the defect-free reference
//! implementation must make the record's feature test fail.
//!
//! This is the deep consistency contract between the bug catalog and the
//! corpus (DESIGN.md §4.2 — "bugs injected at lowering/runtime, not at
//! scoring"): Table I is not merely declared, each entry is independently
//! observable through black-box testing.

use openacc_vv::compiler::driver::compile_with_profile;
use openacc_vv::compiler::{BugCatalog, RunOutcome, VendorId};
use openacc_vv::device::ExecProfile;

#[test]
fn every_catalogued_bug_is_discoverable_in_isolation() {
    let suite = openacc_vv::testsuite::full_suite();
    let catalog = BugCatalog::paper();
    let mut checked = 0;
    let mut failures: Vec<String> = Vec::new();
    for record in catalog.records() {
        let case = suite
            .iter()
            .find(|c| c.feature == record.feature)
            .unwrap_or_else(|| panic!("{}: no corpus test for {}", record.id, record.feature));
        assert!(case.supports(record.language), "{}", record.id);
        // Reference implementation + exactly this defect.
        let profile = ExecProfile::reference().with_defect(record.defect.clone());
        let concrete = VendorId::Reference.concrete_device();
        let source = case.source_for(record.language);
        let discovered = match compile_with_profile(&source, record.language, profile, concrete) {
            Err(_) => true, // compile-time rejection: discovered
            Ok(exe) => !matches!(
                exe.run_with_env(&case.env).outcome,
                RunOutcome::Completed(v) if v != 0
            ),
        };
        checked += 1;
        if !discovered {
            failures.push(format!(
                "{} ({} on {}): {:?} not discovered by its feature test",
                record.id, record.language, record.feature, record.defect
            ));
        }
    }
    assert!(checked >= 160, "catalog unexpectedly small: {checked}");
    assert!(
        failures.is_empty(),
        "{} of {checked} catalogued bugs are NOT discoverable in isolation:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn fixing_a_bug_restores_the_pass() {
    // The inverse direction: the reference implementation (no defects)
    // passes every feature test a bug record points at — removing the bug
    // restores conformance.
    let suite = openacc_vv::testsuite::full_suite();
    let catalog = BugCatalog::paper();
    let reference = openacc_vv::compiler::VendorCompiler::reference();
    use openacc_vv::validation::harness::run_case;
    use std::collections::BTreeSet;
    let features: BTreeSet<_> = catalog
        .records()
        .iter()
        .map(|r| (r.feature.clone(), r.language))
        .collect();
    for (feature, language) in features {
        let case = suite.iter().find(|c| c.feature == feature).unwrap();
        let r = run_case(case, &reference, language);
        assert!(r.passed(), "{feature} ({language}): {:?}", r.status);
    }
}
