//! Acceptance tests for the fault-tolerant campaign executor: panic
//! isolation, deterministic parallelism, watchdog budgets, and seeded
//! transient-fault flake classification — end to end through the public API
//! and the `accvv` binary.

use openacc_vv::device::Defect;
use openacc_vv::prelude::*;
use openacc_vv::validation::executor::JobMeta;
use openacc_vv::validation::report;
use std::process::Command;

fn small_campaign() -> Campaign {
    let keep = ["loop", "data.copy", "parallel.async", "update.host"];
    let suite: Vec<TestCase> = openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| keep.contains(&c.feature.as_str()))
        .collect();
    assert!(!suite.is_empty());
    Campaign::new(suite)
}

#[test]
fn panicking_case_yields_infra_while_campaign_completes() {
    // The executor's generic entry point lets the test stand in for a
    // harness bug: job 3 of 8 panics, the other seven must still produce
    // their verdicts.
    let metas: Vec<JobMeta> = (0..8)
        .map(|i| JobMeta {
            name: format!("case{i}"),
            feature: FeatureId::from(format!("f.{i}").as_str()),
            language: Language::C,
        })
        .collect();
    let exec = Executor::new(ExecutorPolicy::new().with_jobs(4));
    let results = exec.run_jobs_with(&metas, |i, _attempt| {
        if i == 3 {
            panic!("injected harness defect");
        }
        openacc_vv::validation::CaseResult {
            name: metas[i].name.clone(),
            feature: metas[i].feature.clone(),
            language: metas[i].language,
            status: TestStatus::Pass,
            certainty: None,
            functional_source: String::new(),
            attempts: 1,
        }
    });
    assert_eq!(results.len(), 8, "the campaign completed");
    match &results[3].status {
        TestStatus::Infra(m) => assert!(m.contains("injected harness defect"), "{m}"),
        other => panic!("expected Infra, got {other:?}"),
    }
    let completed = results
        .iter()
        .filter(|r| r.status == TestStatus::Pass)
        .count();
    assert_eq!(completed, 7);
}

#[test]
fn parallel_reports_are_byte_identical_on_fault_free_runs() {
    let campaign = small_campaign();
    let compiler = VendorCompiler::latest(VendorId::Cray);
    let serial = Executor::new(ExecutorPolicy::new()).run_suite(&campaign, &compiler);
    let parallel =
        Executor::new(ExecutorPolicy::new().with_jobs(4)).run_suite(&campaign, &compiler);
    for fmt in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Html] {
        assert_eq!(
            report::render(&serial, fmt),
            report::render(&parallel, fmt),
            "{fmt:?} report must not depend on --jobs"
        );
    }
}

/// Status sequence of a campaign under a transient memcpy fault.
fn faulted_statuses(seed: u64, jobs: usize) -> Vec<TestStatus> {
    let compiler = VendorCompiler::reference().with_extra_defect(Defect::TransientMemcpyFault {
        rate_pct: 35,
        seed,
    });
    let policy = ExecutorPolicy::new().with_retries(4).with_jobs(jobs);
    let run = Executor::new(policy).run_suite(&small_campaign(), &compiler);
    run.results.into_iter().map(|r| r.status).collect()
}

#[test]
fn seeded_transient_faults_classify_flaky_deterministically() {
    // The fault draws are pure functions of (seed, program, run index), so
    // some seed in a small scan window must flip a verdict across retries.
    let seed = (0..32u64)
        .find(|&s| faulted_statuses(s, 1).contains(&TestStatus::Flaky))
        .expect("a seed in 0..32 produces at least one flaky case");
    let a = faulted_statuses(seed, 1);
    let b = faulted_statuses(seed, 1);
    assert_eq!(a, b, "same seed → identical classification");
    let c = faulted_statuses(seed, 4);
    assert_eq!(a, c, "classification is independent of the worker count");
    // And a flaky case folds the attempt series into the certainty model.
    let compiler = VendorCompiler::reference().with_extra_defect(Defect::TransientMemcpyFault {
        rate_pct: 35,
        seed,
    });
    let run = Executor::new(ExecutorPolicy::new().with_retries(4))
        .run_suite(&small_campaign(), &compiler);
    let flaky = run
        .results
        .iter()
        .find(|r| r.status == TestStatus::Flaky)
        .expect("flaky case present");
    assert!(flaky.attempts > 1);
    let cert = flaky.certainty.expect("attempt-series certainty");
    assert_eq!(cert.m, flaky.attempts);
    assert!(cert.nf >= 1 && cert.nf < cert.m);
    assert!(flaky.passed(), "flaky is not a hard failure");
}

#[test]
fn step_budget_watchdog_times_out_deterministically_under_parallelism() {
    let campaign = small_campaign();
    let reference = VendorCompiler::reference();
    let runs: Vec<Vec<TestStatus>> = [1usize, 2, 4]
        .iter()
        .map(|&jobs| {
            let policy = ExecutorPolicy::new().with_jobs(jobs).with_step_limit(10);
            Executor::new(policy)
                .run_suite(&campaign, &reference)
                .results
                .into_iter()
                .map(|r| r.status)
                .collect()
        })
        .collect();
    for statuses in &runs {
        for s in statuses {
            assert!(
                matches!(s, TestStatus::Timeout | TestStatus::Skipped(_)),
                "a 10-step budget starves every run: {s:?}"
            );
        }
        assert!(statuses.contains(&TestStatus::Timeout));
    }
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

#[test]
fn accvv_exits_nonzero_on_failures_and_prints_taxonomy() {
    // A clean reference run exits zero and prints the taxonomy line…
    let ok = Command::new(env!("CARGO_BIN_EXE_accvv"))
        .args(["run", "--vendor", "reference", "--features", "loop", "--lang", "c"])
        .output()
        .expect("spawn accvv");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(ok.status.success(), "reference run must exit 0: {stdout}");
    assert!(stdout.contains("taxonomy [C]:"), "{stdout}");
    // …while a failing vendor run exits nonzero and reports the counts.
    let bad = Command::new(env!("CARGO_BIN_EXE_accvv"))
        .args([
            "run",
            "--vendor",
            "pgi",
            "--version",
            "12.6",
            "--features",
            "parallel.async",
            "--lang",
            "c",
            "--jobs",
            "2",
        ])
        .output()
        .expect("spawn accvv");
    assert!(
        !bad.status.success(),
        "failing cases must flip the exit status"
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stdout.contains("taxonomy [C]:"), "{stdout}");
    assert!(stderr.contains("case(s) failed"), "{stderr}");
}
