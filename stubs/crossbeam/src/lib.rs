//! Offline stand-in for the `crossbeam` crate, covering the scoped-thread
//! API this workspace uses (`crossbeam::scope`, `Scope::spawn`, handle
//! `join`). Implemented over `std::thread::scope`, which has provided the
//! same structured-concurrency guarantee since Rust 1.63.
//!
//! Semantics preserved from crossbeam 0.8:
//! * `scope` returns `Err(payload)` instead of unwinding if any spawned
//!   worker panicked (std's scope would re-raise the panic; we catch it).
//! * Spawned closures receive a `&Scope` argument so they can spawn
//!   nested siblings.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread module, mirroring `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Result, Scope, ScopedJoinHandle};
}

/// Result of a scope: `Err` carries the panic payload of a worker.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Handle for spawning threads that may borrow from the enclosing stack
/// frame (alive for `'env`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. The closure receives the scope
    /// handle back (crossbeam's signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&handle)),
        }
    }
}

/// Join handle for a scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker; `Err` carries its panic payload.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

/// Create a scope in which threads may borrow non-`'static` data.
///
/// All spawned threads are joined before this returns. If any worker (or
/// the closure itself) panicked, the first payload is returned as `Err`
/// rather than resuming the unwind — callers decide how to surface it.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn borrowed_data_is_visible_after_scope() {
        let mut slots = vec![0u64; 4];
        super::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
