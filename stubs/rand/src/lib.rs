//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`
//! and `SliceRandom::shuffle`.
//!
//! The container that builds this repository has no access to a crates
//! registry, so external dependencies are replaced by small local crates
//! with compatible signatures. The generator core is SplitMix64 — fully
//! deterministic for a given seed, which is exactly what the harness needs
//! (seeded campaigns must reproduce bit-for-bit). It makes no attempt to
//! match upstream `rand`'s value streams.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG (the subset of the
/// `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "cannot sample from empty range");
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// In-place slice randomization, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic,
    /// fast, and with good enough distribution for test scheduling and
    /// Monte-Carlo sanity checks.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// The common-import module, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2014);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }
}
