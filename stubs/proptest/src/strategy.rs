//! The `Strategy` trait and combinators (generation only — no shrinking).

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core is [`Strategy::generate`]; combinators carry
/// `Self: Sized` bounds so `dyn Strategy<Value = T>` works (that is what
/// [`BoxedStrategy`] wraps).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one more level. The stub
    /// unrolls `depth` levels eagerly (upstream's probabilistic descent is
    /// not needed without shrinking); `_desired_size` and `_expected_branch`
    /// are accepted for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A reference-counted, type-erased strategy (clonable, unlike upstream's
/// `Box`-based version — which is strictly more permissive).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof requires positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strat) in &self.arms {
            let weight = *weight as u64;
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick always lands in an arm")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// `&str` as a strategy: a miniature regex generator supporting exactly the
/// shapes the tests use — character classes with ranges and `\n`/`\t`/`\\`
/// escapes, quantified by `{m,n}`, `*`, `+` or `?`, plus literal characters.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

const UNQUANTIFIED_MAX: usize = 16;

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let (candidates, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1, pattern),
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                (vec![unescape(c)], i + 2)
            }
            c => (vec![c], i + 1),
        };
        let (min, max_inclusive, next) = parse_quantifier(&chars, next, pattern);
        let span = (max_inclusive - min + 1) as u64;
        let count = min + (rng.next_u64() % span) as usize;
        for _ in 0..count {
            let pick = (rng.next_u64() % candidates.len() as u64) as usize;
            out.push(candidates[pick]);
        }
        i = next;
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse a `[...]` class starting just past the `[`; returns the candidate
/// set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut candidates = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                candidates.push(c);
            }
            i += 3;
        } else {
            candidates.push(lo);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    assert!(
        !candidates.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (candidates, i + 1)
}

/// Parse an optional quantifier at `i`; returns `(min, max_inclusive, next)`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, UNQUANTIFIED_MAX, i + 1),
        Some('+') => (1, UNQUANTIFIED_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo, hi),
                None => (body.as_str(), body.as_str()),
            };
            let lo: usize = lo.trim().parse().expect("quantifier lower bound");
            let hi: usize = hi.trim().parse().expect("quantifier upper bound");
            assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
            (lo, hi, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let n = (-9i64..9).generate(&mut rng);
            assert!((-9..9).contains(&n));
        }
    }

    #[test]
    fn printable_class_pattern_generates_printables() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let s = "[ -~]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn newline_class_pattern_includes_escapes() {
        let mut rng = TestRng::for_case(2);
        let mut saw_newline = false;
        for _ in 0..500 {
            let s = "[ -~\n]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            saw_newline |= s.contains('\n');
        }
        assert!(saw_newline, "newline must be reachable");
    }

    #[test]
    fn union_respects_zero_weight_absence() {
        let mut rng = TestRng::for_case(3);
        let u = crate::prop_oneof![
            1 => 0u32..1,
            9 => 100u32..101,
        ];
        let mut hits = [0u32; 2];
        for _ in 0..1000 {
            match u.generate(&mut rng) {
                0 => hits[0] += 1,
                100 => hits[1] += 1,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(hits[0] > 0 && hits[1] > hits[0], "{hits:?}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|n| n.to_string());
        let nested = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        let mut rng = TestRng::for_case(4);
        for _ in 0..50 {
            let s = nested.generate(&mut rng);
            assert!(s.starts_with('(') && s.ends_with(')'));
        }
    }
}
