//! Test-runner configuration and the deterministic RNG behind generation.

/// Subset of `proptest::test_runner::Config` the workspace uses.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// `ProptestConfig::with_cases(n)` — run each property `n` times.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// SplitMix64 generator seeded per test case, so every case index yields a
/// reproducible input stream (no persistence file needed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case_index` of a property.
    pub fn for_case(case_index: u64) -> Self {
        // Golden-ratio spread keeps neighbouring case streams decorrelated.
        TestRng {
            state: 0xA076_1D64_78BD_642F ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_deterministic() {
        let mut a = TestRng::for_case(11);
        let mut b = TestRng::for_case(11);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_cases_diverge() {
        let mut a = TestRng::for_case(0);
        let mut b = TestRng::for_case(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
