//! Offline stand-in for the `proptest` crate, covering the API surface the
//! workspace's property tests use: the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros, `Strategy` with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `collection::vec`, `sample::select`,
//! `bool::ANY`, and a tiny character-class regex strategy for `&str`.
//!
//! Differences from upstream, by design:
//! * generation only — failing cases are reported but **not shrunk**;
//! * the value stream is deterministic per test-case index (SplitMix64),
//!   so failures reproduce without a persistence file;
//! * unsupported regex syntax panics at generation time instead of being
//!   a parse error at strategy construction.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Strategy};

/// Strategies for collections (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)` — size may be a `usize`
    /// (exact length) or a `Range<usize>` (half-open, as upstream).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for sampling from explicit value sets (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Sources accepted by [`select`]: a `Vec` or any slice of clonable
    /// values.
    pub trait SelectSource<T> {
        /// Convert into the owned candidate list.
        fn into_values(self) -> Vec<T>;
    }

    impl<T: Clone> SelectSource<T> for Vec<T> {
        fn into_values(self) -> Vec<T> {
            self
        }
    }

    impl<T: Clone> SelectSource<T> for &[T] {
        fn into_values(self) -> Vec<T> {
            self.to_vec()
        }
    }

    impl<T: Clone, const N: usize> SelectSource<T> for &[T; N] {
        fn into_values(self) -> Vec<T> {
            self.to_vec()
        }
    }

    /// `prop::sample::select(values)` — uniform choice from `values`.
    pub fn select<T: Clone, S: SelectSource<T>>(values: S) -> Select<T> {
        let values = values.into_values();
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest!` — expands each `fn name(arg in strategy, ..) { body }` into a
/// plain test function that generates inputs and runs the body `cases`
/// times with a per-case deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @expand $cfg; $($rest)* }
    };
    (@expand $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case_index in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(case_index as u64);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @expand $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// `prop_oneof!` — weighted (`w => strategy`) or uniform choice between
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `prop_assert!` — in this stub a direct `assert!` (no shrinking, so an
/// immediate panic is the clearest report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` — direct `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` — direct `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
