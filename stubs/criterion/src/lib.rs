//! Offline stand-in for the `criterion` crate: same macro and builder API,
//! but each benchmark body is executed a small fixed number of times and
//! reported with plain wall-clock timing. No statistics, no HTML reports —
//! enough to keep the bench targets compiling, running, and useful as
//! smoke tests + rough timers in a registry-less container.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value (thin wrapper over
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("par_sum", 1024)` → `par_sum/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs the body and times it.
pub struct Bencher {
    iterations: u32,
}

impl Bencher {
    /// Run the benchmark body `iterations` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        let elapsed = start.elapsed();
        println!(
            "    {} iter(s) in {:?} (~{:?}/iter)",
            self.iterations,
            elapsed,
            elapsed / self.iterations
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub always smoke-runs a fixed
    /// small iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.into());
        body(&mut Bencher {
            iterations: self.criterion.iterations,
        });
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.full);
        body(
            &mut Bencher {
                iterations: self.criterion.iterations,
            },
            input,
        );
        self
    }

    /// End the group (no-op; upstream finalizes reports here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // One timed pass per benchmark: bench binaries double as smoke
        // tests under `cargo bench` without taking minutes.
        Criterion { iterations: 1 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {id}");
        body(&mut Bencher {
            iterations: self.iterations,
        });
        self
    }
}

/// `criterion_group!(name, target, ...)` — bundle targets into a runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
