//! Offline stand-in for the `smol_str` crate: an immutable string type that
//! stores short strings (≤ [`INLINE_CAP`] bytes — every OpenACC directive,
//! clause and generated identifier fits) inline on the stack, falling back
//! to a shared `Arc<str>` for longer ones. Cloning is therefore always free
//! of heap allocation: inline strings are `Copy`-like memcpys and heap
//! strings bump a reference count.
//!
//! Only the subset of the real crate's API the front-end uses is provided.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Maximum byte length stored inline (matches the real crate's 22-byte
/// small-string optimization + a length byte inside 24 bytes).
pub const INLINE_CAP: usize = 22;

#[derive(Clone)]
enum Repr {
    /// `len` bytes of UTF-8 in a fixed buffer.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Shared heap allocation; clones bump the refcount.
    Heap(Arc<str>),
}

/// An immutable, cheaply-cloneable string with inline small-string storage.
pub struct SmolStr(Repr);

impl SmolStr {
    /// Build from any string-like value; allocates only past [`INLINE_CAP`].
    pub fn new(text: impl AsRef<str>) -> Self {
        let s = text.as_ref();
        if s.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmolStr(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            SmolStr(Repr::Heap(Arc::from(s)))
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            // Construction only ever copies from a `&str`, so the inline
            // bytes are valid UTF-8 by construction.
            Repr::Inline { len, buf } => unsafe {
                std::str::from_utf8_unchecked(&buf[..*len as usize])
            },
            Repr::Heap(s) => s,
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.as_str().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the contents are stored inline (no heap allocation).
    pub fn is_heap_allocated(&self) -> bool {
        matches!(self.0, Repr::Heap(_))
    }
}

impl Clone for SmolStr {
    fn clone(&self) -> Self {
        SmolStr(self.0.clone())
    }
}

impl Deref for SmolStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for SmolStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for SmolStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for SmolStr {
    fn from(s: &str) -> Self {
        SmolStr::new(s)
    }
}

impl From<String> for SmolStr {
    fn from(s: String) -> Self {
        SmolStr::new(&s)
    }
}

impl From<&SmolStr> for String {
    fn from(s: &SmolStr) -> Self {
        s.as_str().to_string()
    }
}

impl From<SmolStr> for String {
    fn from(s: SmolStr) -> Self {
        s.as_str().to_string()
    }
}

impl PartialEq for SmolStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SmolStr {}

impl PartialEq<str> for SmolStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmolStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<SmolStr> for str {
    fn eq(&self, other: &SmolStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<SmolStr> for &str {
    fn eq(&self, other: &SmolStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<String> for SmolStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<SmolStr> for String {
    fn eq(&self, other: &SmolStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for SmolStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SmolStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for SmolStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Debug for SmolStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmolStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

impl Default for SmolStr {
    fn default() -> Self {
        SmolStr::new("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_strings_stay_inline() {
        let s = SmolStr::new("num_gangs");
        assert!(!s.is_heap_allocated());
        assert_eq!(s.as_str(), "num_gangs");
        assert_eq!(s.len(), 9);
        let c = s.clone();
        assert_eq!(c, s);
        assert!(!c.is_heap_allocated());
    }

    #[test]
    fn boundary_is_inline() {
        let at = "a".repeat(INLINE_CAP);
        assert!(!SmolStr::new(&at).is_heap_allocated());
        let over = "a".repeat(INLINE_CAP + 1);
        let s = SmolStr::new(&over);
        assert!(s.is_heap_allocated());
        assert_eq!(s.as_str(), over);
    }

    #[test]
    fn comparisons_and_deref() {
        let s = SmolStr::new("loop");
        assert_eq!(s, "loop");
        assert_eq!("loop", s);
        assert_eq!(s, "loop".to_string());
        assert!(s.starts_with("lo"));
        assert_eq!(&s[..2], "lo");
    }

    #[test]
    fn hash_matches_str() {
        use std::collections::HashMap;
        let mut m: HashMap<SmolStr, i32> = HashMap::new();
        m.insert(SmolStr::new("x"), 1);
        // Borrow<str> lets &str index the map.
        assert_eq!(m.get("x"), Some(&1));
    }

    #[test]
    fn conversions() {
        let s: SmolStr = "abc".into();
        let back: String = s.clone().into();
        assert_eq!(back, "abc");
        let s2: SmolStr = back.into();
        assert_eq!(s2, s);
        assert_eq!(SmolStr::default(), "");
        assert!(SmolStr::default().is_empty());
    }

    #[test]
    fn unicode_survives() {
        let s = SmolStr::new("é✓");
        assert_eq!(s.as_str(), "é✓");
        assert!(!s.is_heap_allocated());
    }
}
