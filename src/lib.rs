//! # openacc-vv — a validation & verification testsuite for OpenACC 1.0
//!
//! A full, executable reproduction of *"A Validation Testsuite for OpenACC
//! 1.0"* (Wang, Xu, Chandrasekaran, Chapman, Hernandez — IPDPSW 2014),
//! built as a Rust workspace. The umbrella crate re-exports every layer:
//!
//! | Crate | Role |
//! |---|---|
//! | [`spec`] | The OpenACC 1.0 feature model (directives, clauses, routines, env vars) |
//! | [`ast`] | The mini-language AST with C and Fortran code generators |
//! | [`frontend`] | Mini-C and mini-Fortran parsers with directive support |
//! | [`device`] | The simulated discrete-memory accelerator |
//! | [`rt`] | The OpenACC runtime library over the simulated device |
//! | [`compiler`] | Simulated vendor compilers (CAPS/PGI/Cray version lines + bug catalog) |
//! | [`validation`] | The testsuite infrastructure: templates, cross tests, statistics, reports |
//! | [`testsuite`] | The 100+-feature test corpus (200+ generated programs) |
//! | [`harness`] | The Titan-style production harness |
//! | [`server`] | The overload-safe campaign server (`accvv serve`) |
//! | [`obs`] | Telemetry: structured spans, deterministic traces, Chrome/Prometheus sinks |
//!
//! ## Quickstart
//!
//! ```
//! use openacc_vv::prelude::*;
//!
//! // Validate one feature against the newest CAPS release.
//! let suite = openacc_vv::testsuite::full_suite();
//! let campaign = Campaign::new(suite);
//! let compiler = VendorCompiler::latest(VendorId::Caps);
//! let run = campaign.run_one(&compiler);
//! assert_eq!(run.pass_rate(Language::C), 100.0);
//! ```

#![warn(missing_docs)]

pub use acc_ast as ast;
pub use acc_compiler as compiler;
pub use acc_device as device;
pub use acc_frontend as frontend;
pub use acc_harness as harness;
pub use acc_obs as obs;
pub use acc_runtime as rt;
pub use acc_server as server;
pub use acc_spec as spec;
pub use acc_testsuite as testsuite;
pub use acc_validation as validation;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use acc_compiler::{ExecMode, RunOutcome, VendorCompiler, VendorId};
    pub use acc_spec::{FeatureId, Language};
    pub use acc_validation::report::{render, ReportFormat};
    pub use acc_validation::{
        Campaign, CrossRule, Executor, ExecutorPolicy, FailureBreakdown, SuiteConfig, TestCase,
        TestStatus,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn quickstart_compiles_and_passes() {
        let suite = crate::testsuite::full_suite();
        let campaign = Campaign::new(suite);
        let run = campaign.run_one(&VendorCompiler::reference());
        assert_eq!(run.pass_rate(Language::C), 100.0);
        assert_eq!(run.pass_rate(Language::Fortran), 100.0);
    }
}
