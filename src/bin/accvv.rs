//! `accvv` — the validation suite as a command-line tool.
//!
//! This is the operator-facing entry point, mirroring how the paper's suite
//! is driven in production (compiler configuration, feature selection,
//! report generation — §III's "major features").
//!
//! ```text
//! accvv list [PREFIX]                         list corpus tests
//! accvv show NAME [--lang c|fortran] [--cross] print a generated program
//! accvv run --vendor V [--version X] [options] run the suite, print a report
//! accvv campaign [--vendor V]                  Fig. 8 sweep across releases
//! accvv bugs --vendor V --version X [--lang L] active catalog entries
//! accvv expand FILE                            expand a template file
//! accvv titan [--nodes N] [--sample K] [--seed S]  production-harness run
//! ```

use openacc_vv::compiler::{BugCatalog, CacheStats, VendorCompiler, VendorId};
use openacc_vv::harness::{HarnessRun, NodeFault, SimulatedCluster};
use openacc_vv::obs;
use openacc_vv::prelude::*;
use openacc_vv::validation::report::{self, ReportFormat};
use openacc_vv::validation::template::parse_templates;
use openacc_vv::validation::{FileJournal, Replay};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("matrix") => cmd_matrix(&args[1..]),
        Some("bugs") => cmd_bugs(&args[1..]),
        Some("expand") => cmd_expand(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("titan") => cmd_titan(&args[1..]),
        Some("torture") => cmd_torture(&args[1..]),
        Some("selftest") => cmd_selftest(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `accvv help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("accvv: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "accvv — OpenACC 1.0 validation suite\n\n\
         USAGE:\n\
         \x20 accvv list [PREFIX]\n\
         \x20 accvv show NAME [--lang c|fortran] [--cross]\n\
         \x20 accvv run --vendor caps|pgi|cray|reference [--version X] [--lang c|fortran]\n\
         \x20          [--features P1,P2,…] [--format text|csv|html] [--repetitions M]\n\
         \x20          [--attribute] [--jobs N] [--retries R] [--case-deadline-ms MS]\n\
         \x20          [--journal FILE | --resume FILE] [--out FILE] [--halt-after N]\n\
         \x20          [--no-cache] [--exec-mode vm|walk|par[:N]]\n\
         \x20          [--trace-out FILE] [--metrics-out FILE]\n\
         \x20 accvv serve [--addr HOST:PORT] [--store DIR] [--jobs N] [--queue-cap N]\n\
         \x20            [--breaker-threshold N] [--breaker-cooldown-ms MS]\n\
         \x20            [--retry-after-secs S] [--trace-out FILE] [--metrics-out FILE]\n\
         \x20 accvv campaign [--vendor caps|pgi|cray] [--no-cache] [--exec-mode vm|walk|par[:N]]\n\
         \x20               [--trace-out FILE] [--metrics-out FILE]\n\
         \x20 accvv bench [--iters N] [--out FILE] [--no-cache]\n\
         \x20            [--check BASELINE [--tolerance-pct P] [--overhead-pct P]]\n\
         \x20 accvv history [--store DIR] [--bucket SECS] [--since EPOCH] [--until EPOCH]\n\
         \x20              [--by profile|feature|tenant|lang] [--tenant T] [--scope PREFIX]\n\
         \x20              [--latency] [--out FILE]\n\
         \x20              [--check BASELINE [--pass-tolerance PTS] [--latency-tolerance-pct P]]\n\
         \x20 accvv trace export TRACE.jsonl [--out FILE]\n\
         \x20 accvv trace check FILE\n\
         \x20 accvv matrix --vendor caps|pgi|cray [--lang c|fortran]\n\
         \x20 accvv bugs --vendor caps|pgi|cray --version X [--lang c|fortran]\n\
         \x20 accvv expand FILE\n\
         \x20 accvv disasm NAME [--lang c|fortran] [--cross] [--hot]\n\
         \x20 accvv titan [--nodes N] [--sample K] [--seed S] [--fault-rate PCT]\n\
         \x20            [--retries R] [--jobs N]\n\
         \x20 accvv titan --sweep [--nodes N] [--jobs N] [--lose-node ID@AFTER]…\n\
         \x20            [--journal FILE | --resume FILE] [--out FILE] [--halt-after N]\n\
         \x20            [--quarantine-after K] [--track FILE]\n\
         \x20            [--trace-out FILE] [--metrics-out FILE]\n\
         \x20 accvv torture [--seed S] [--stride N] [--verbose]\n\
         \x20 accvv selftest [PREFIX]"
    );
}

/// Pull `--key value` out of an argument list.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Telemetry sinks requested on the command line. The recorder is enabled
/// only when at least one sink is — otherwise every instrumentation site in
/// the stack stays a guaranteed no-op.
struct Telemetry {
    recorder: obs::Recorder,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Parse `--trace-out FILE` / `--metrics-out FILE`.
fn telemetry_opts(args: &[String]) -> Telemetry {
    let trace_out = opt(args, "--trace-out");
    let metrics_out = opt(args, "--metrics-out");
    let recorder = if trace_out.is_some() || metrics_out.is_some() {
        obs::Recorder::enabled()
    } else {
        obs::Recorder::disabled()
    };
    Telemetry {
        recorder,
        trace_out,
        metrics_out,
    }
}

impl Telemetry {
    /// Flush the requested sinks. Runs after the campaign completes so
    /// sink I/O can never perturb report or journal bytes mid-run. The
    /// compile-cache counters (when a cache was attached) ride into the
    /// metrics exposition — the cache's own atomics are the single source
    /// of truth; the sink only renders them.
    fn finish(&self, cache: Option<&CacheStats>) -> Result<(), String> {
        if self.trace_out.is_none() && self.metrics_out.is_none() {
            return Ok(());
        }
        let events = self.recorder.snapshot();
        if let Some(p) = &self.trace_out {
            let jsonl = obs::trace::render_jsonl(&events);
            openacc_vv::validation::atomic_write(p, jsonl.as_bytes())
                .map_err(|e| format!("--trace-out {p}: {e}"))?;
            eprintln!(
                "accvv: trace written to {p} ({} event(s))",
                jsonl.lines().count()
            );
        }
        if let Some(p) = &self.metrics_out {
            let counters = cache.map(|s| obs::metrics::CacheCounters {
                frontend_hits: s.frontend_hits,
                frontend_misses: s.frontend_misses,
                exec_hits: s.exec_hits,
                exec_misses: s.exec_misses,
            });
            let text = obs::metrics::render_prometheus(&events, counters.as_ref());
            openacc_vv::validation::atomic_write(p, text.as_bytes())
                .map_err(|e| format!("--metrics-out {p}: {e}"))?;
            eprint!("{}", obs::metrics::summary_table(&events, counters.as_ref()));
            eprintln!("accvv: metrics written to {p}");
        }
        Ok(())
    }
}

fn parse_vendor(s: &str) -> Result<VendorId, String> {
    match s.to_ascii_lowercase().as_str() {
        "caps" => Ok(VendorId::Caps),
        "pgi" => Ok(VendorId::Pgi),
        "cray" => Ok(VendorId::Cray),
        "reference" | "ref" => Ok(VendorId::Reference),
        other => Err(format!(
            "unknown vendor `{other}` (caps|pgi|cray|reference)"
        )),
    }
}

/// Parse `--exec-mode vm|walk|par[:N]` (defaults to the bytecode VM when
/// absent; `par` auto-sizes the worker pool, `par:N` pins N threads).
fn parse_exec_mode(args: &[String]) -> Result<ExecMode, String> {
    match opt(args, "--exec-mode") {
        None => Ok(ExecMode::default()),
        Some(s) => ExecMode::from_cli(&s)
            .ok_or_else(|| format!("unknown exec mode `{s}` (vm|walk|par[:N])")),
    }
}

fn parse_lang(s: &str) -> Result<Language, String> {
    match s.to_ascii_lowercase().as_str() {
        "c" => Ok(Language::C),
        "f" | "fortran" => Ok(Language::Fortran),
        other => Err(format!("unknown language `{other}` (c|fortran)")),
    }
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let prefix = args.first().cloned().unwrap_or_default();
    let suite = openacc_vv::testsuite::full_suite();
    let mut shown = 0;
    for case in &suite {
        if !case.feature.as_str().starts_with(&prefix) {
            continue;
        }
        shown += 1;
        let langs: Vec<&str> = case
            .languages
            .iter()
            .map(|l| if *l == Language::C { "C" } else { "F" })
            .collect();
        let cross = case
            .cross
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "none".to_string());
        println!(
            "{:<36} [{}] cross={}",
            case.feature.as_str(),
            langs.join(","),
            cross
        );
    }
    println!("\n{shown} of {} tests shown", suite.len());
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && opt_key_of(args, a).is_none())
        .ok_or("show requires a test name")?;
    let lang = match opt(args, "--lang") {
        Some(s) => parse_lang(&s)?,
        None => Language::C,
    };
    let suite = openacc_vv::testsuite::full_suite();
    let case = suite
        .iter()
        .find(|c| c.name == *name || c.feature.as_str() == *name)
        .ok_or_else(|| format!("no test named `{name}` (try `accvv list`)"))?;
    if !case.supports(lang) {
        return Err(format!("`{name}` is not generated for {lang}"));
    }
    if flag(args, "--cross") {
        match case.cross_source_for(lang) {
            Some(s) => println!("{s}"),
            None => return Err(format!("`{name}` has no cross test")),
        }
    } else {
        println!("{}", case.source_for(lang));
    }
    Ok(())
}

/// Is `a` the value of some `--key` option (so `show` skips it)?
fn opt_key_of<'a>(args: &'a [String], value: &String) -> Option<&'a String> {
    args.iter()
        .enumerate()
        .find(|(i, _)| args.get(i + 1) == Some(value))
        .filter(|(_, k)| k.starts_with("--"))
        .map(|(_, k)| k)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let vendor = parse_vendor(&opt(args, "--vendor").ok_or("run requires --vendor")?)?;
    let compiler = match opt(args, "--version") {
        Some(v) => {
            let version = v.parse().map_err(|e| format!("{e}"))?;
            if vendor.version_index(version).is_none() {
                return Err(format!(
                    "{} never released {version}; releases: {}",
                    vendor.name(),
                    vendor
                        .versions()
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            VendorCompiler::new(vendor, version)
        }
        None => VendorCompiler::latest(vendor),
    };
    let mut config = SuiteConfig::new();
    if let Some(l) = opt(args, "--lang") {
        config = config.language(parse_lang(&l)?);
    }
    if let Some(features) = opt(args, "--features") {
        let prefixes: Vec<&str> = features.split(',').map(str::trim).collect();
        config = config.select_prefixes(&prefixes);
    }
    if let Some(m) = opt(args, "--repetitions") {
        config = config.with_repetitions(m.parse().map_err(|_| "bad --repetitions")?);
    }
    let exec_mode = parse_exec_mode(args)?;
    config = config.with_exec_mode(exec_mode);
    let format = match opt(args, "--format").as_deref() {
        None | Some("text") => ReportFormat::Text,
        Some("csv") => ReportFormat::Csv,
        Some("html") => ReportFormat::Html,
        Some(other) => return Err(format!("unknown format `{other}`")),
    };
    let jobs: usize = parse_opt_or(args, "--jobs", 1usize)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1 (a pool with no workers runs nothing)".to_string());
    }
    let tele = telemetry_opts(args);
    let mut policy = ExecutorPolicy::new()
        .with_jobs(jobs)
        .with_retries(parse_opt_or(args, "--retries", 0u32)?)
        .with_backoff_ms(parse_opt_or(args, "--backoff-ms", 0u64)?)
        .with_recorder(tele.recorder.clone())
        .with_exec_mode(exec_mode);
    if let Some(ms) = opt(args, "--case-deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --case-deadline-ms")?;
        if ms == 0 {
            return Err(
                "--case-deadline-ms 0 would time out every case before it starts (minimum 1)"
                    .to_string(),
            );
        }
        policy = policy.with_deadline_ms(ms);
    }
    // Ctrl-C / SIGTERM drains instead of killing: workers stop claiming new
    // cases, in-flight verdicts land in the journal, telemetry sinks flush,
    // and the exit carries a resume hint — the same path `accvv serve` uses.
    let cancel = openacc_vv::server::signal::install_default();
    policy = policy.with_cancel(Arc::clone(&cancel));
    let journal_path = opt(args, "--journal");
    let resume_path = opt(args, "--resume");
    if journal_path.is_some() && resume_path.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (--resume keeps appending to the \
             journal it replays)"
                .to_string(),
        );
    }
    if let Some(p) = &journal_path {
        let j = FileJournal::create(p).map_err(|e| format!("--journal {p}: {e}"))?;
        policy = policy.with_journal(Arc::new(j));
    }
    if let Some(p) = &resume_path {
        let (replay, j) = Replay::open_resume(p).map_err(|e| format!("--resume {p}: {e}"))?;
        if let Some((scope, _, _)) = &replay.meta {
            if *scope != compiler.label() {
                return Err(format!(
                    "--resume {p}: journal was recorded for `{scope}`, not `{}`",
                    compiler.label()
                ));
            }
        }
        eprintln!("accvv: {}", replay.summary());
        policy = policy
            .with_journal(Arc::new(j))
            .with_resume(Arc::new(replay));
    }
    if let Some(n) = opt(args, "--halt-after") {
        policy = policy.with_halt_after(n.parse().map_err(|_| "bad --halt-after")?);
    }
    // Compile once, run many: a process-wide compilation cache is on by
    // default (identical report bytes either way — `--no-cache` exists to
    // prove that and to time the cold path).
    let cache = (!flag(args, "--no-cache")).then(openacc_vv::compiler::CompileCache::shared);
    let mut campaign = Campaign::new(openacc_vv::testsuite::full_suite()).with_config(config);
    if let Some(c) = &cache {
        campaign = campaign.with_cache(Arc::clone(c));
    }
    if let Some(n) = policy.halt_after {
        let total_jobs = campaign.materialized_cases().len() * campaign.config.languages.len();
        if n > total_jobs {
            return Err(format!(
                "--halt-after {n} exceeds the {total_jobs} job(s) this run schedules; it would \
                 never trip"
            ));
        }
    }
    let (run, stats) = Executor::new(policy).run_suite_stats(&campaign, &compiler);
    let cache_stats = cache.as_ref().map(|c| c.stats());
    tele.finish(cache_stats.as_ref())?;
    if stats.cached > 0 {
        eprintln!(
            "accvv: resume skipped {} completed case(s); {} executed this run",
            stats.cached, stats.executed
        );
    }
    if stats.halted {
        let hint = journal_path
            .as_ref()
            .or(resume_path.as_ref())
            .map(|p| format!("; resume with `accvv run --resume {p}`"))
            .unwrap_or_default();
        return Err(format!(
            "run halted after {} executed job(s) (--halt-after){hint}",
            stats.executed
        ));
    }
    if stats.cancelled {
        let hint = journal_path
            .as_ref()
            .or(resume_path.as_ref())
            .map(|p| format!("; resume with `accvv run --resume {p}`"))
            .unwrap_or_else(|| {
                "; use --journal to make interrupted runs resumable".to_string()
            });
        return Err(format!(
            "interrupted by signal after {} executed job(s); journal and telemetry sinks \
             flushed{hint}",
            stats.executed
        ));
    }
    match opt(args, "--out") {
        Some(p) => {
            report::write_file(&run, format, &p).map_err(|e| format!("--out {p}: {e}"))?;
            eprintln!("accvv: report written to {p}");
        }
        None => print!("{}", report::render(&run, format)),
    }
    if flag(args, "--attribute") && compiler.vendor != VendorId::Reference {
        let catalog = BugCatalog::paper();
        let failures = openacc_vv::validation::analysis::attribute(
            &run,
            &catalog,
            compiler.vendor,
            compiler.version,
        );
        if !failures.is_empty() {
            println!();
            print!(
                "{}",
                openacc_vv::validation::analysis::render_attribution(&failures)
            );
        }
    }
    // Failure-taxonomy summary + hard exit status: any non-skipped case
    // that failed (flaky counts as a pass) makes the run exit nonzero so CI
    // pipelines can gate on `accvv run`.
    let mut hard_failures = 0usize;
    for &lang in &campaign.config.languages {
        let breakdown = run.failure_breakdown(lang);
        println!("taxonomy [{lang}]: {breakdown}");
        hard_failures += breakdown.total_failures();
    }
    // Cache counters go to stderr, never into the report itself — cached
    // and uncached report bytes must stay identical.
    if let Some(c) = &cache {
        eprintln!("accvv: compile cache: {}", c.stats());
    }
    if hard_failures > 0 {
        return Err(format!("{hard_failures} case(s) failed"));
    }
    Ok(())
}

/// `accvv serve` — the overload-safe campaign daemon. Submissions arrive
/// as HTTP/JSON, pass bounded admission (429 + Retry-After when the queue
/// is full), run under per-tenant fair scheduling with deadline
/// propagation and per-vendor circuit breakers, and land in the indexed
/// result store. SIGINT/SIGTERM drains gracefully and exits 0.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let store_dir = opt(args, "--store").unwrap_or_else(|| "accvv-store".to_string());
    let jobs: usize = parse_opt_or(args, "--jobs", 1usize)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1 (a pool with no workers runs nothing)".to_string());
    }
    let queue_cap: usize = parse_opt_or(args, "--queue-cap", 8usize)?;
    if queue_cap == 0 {
        return Err("--queue-cap must be at least 1 (a zero-slot queue sheds everything)".to_string());
    }
    let breaker_threshold: u32 = parse_opt_or(args, "--breaker-threshold", 5u32)?;
    if breaker_threshold == 0 {
        return Err("--breaker-threshold must be at least 1".to_string());
    }
    let tele = telemetry_opts(args);
    let mut config = openacc_vv::server::ServeConfig::new(&store_dir);
    if let Some(addr) = opt(args, "--addr") {
        config.addr = addr;
    }
    config.jobs = jobs;
    config.queue_cap = queue_cap;
    config.breaker_threshold = breaker_threshold;
    config.breaker_cooldown = std::time::Duration::from_millis(parse_opt_or(
        args,
        "--breaker-cooldown-ms",
        30_000u64,
    )?);
    config.retry_after_secs = parse_opt_or(args, "--retry-after-secs", 2u64)?;
    config.recorder = tele.recorder.clone();
    let server = openacc_vv::server::Server::bind(config).map_err(|e| format!("serve: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    let cache = server.cache();
    openacc_vv::server::signal::install(server.drain_token());
    eprintln!(
        "accvv: serving campaigns on http://{addr} (store: {store_dir}); \
         POST /v1/submit to queue one, SIGINT/SIGTERM to drain"
    );
    let summary = server.run().map_err(|e| format!("serve: {e}"))?;
    tele.finish(Some(&cache.stats()))?;
    eprintln!("accvv: drained cleanly: {summary}");
    Ok(())
}

/// Parse `--key value` as `T`, with a default when the flag is absent.
fn parse_opt_or<T: std::str::FromStr>(
    args: &[String],
    key: &str,
    default: T,
) -> Result<T, String> {
    match opt(args, key) {
        Some(v) => v.parse().map_err(|_| format!("bad {key} value `{v}`")),
        None => Ok(default),
    }
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let vendors: Vec<VendorId> = match opt(args, "--vendor") {
        Some(v) => vec![parse_vendor(&v)?],
        None => VendorId::COMMERCIAL.to_vec(),
    };
    let cache = (!flag(args, "--no-cache")).then(openacc_vv::compiler::CompileCache::shared);
    let tele = telemetry_opts(args);
    let config = SuiteConfig::new().with_exec_mode(parse_exec_mode(args)?);
    let mut campaign = Campaign::new(openacc_vv::testsuite::full_suite())
        .with_config(config)
        .with_recorder(tele.recorder.clone());
    if let Some(c) = &cache {
        campaign = campaign.with_cache(Arc::clone(c));
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for vendor in vendors {
        println!("=== {} ===", vendor.name());
        println!("{:>10} {:>8} {:>10}", "version", "C %", "Fortran %");
        let result = openacc_vv::validation::CampaignResult {
            runs: vendor
                .versions()
                .into_iter()
                .map(|v| campaign.run_one_parallel(&VendorCompiler::new(vendor, v), threads))
                .collect(),
        };
        for (version, run) in vendor.versions().iter().zip(&result.runs) {
            println!(
                "{:>10} {:>8.1} {:>10.1}",
                version.to_string(),
                run.pass_rate(Language::C),
                run.pass_rate(Language::Fortran)
            );
        }
        println!();
    }
    if let Some(c) = &cache {
        eprintln!("accvv: compile cache: {}", c.stats());
    }
    let cache_stats = cache.as_ref().map(|c| c.stats());
    tele.finish(cache_stats.as_ref())?;
    Ok(())
}

/// `accvv bench`: time the suite's hot paths, write `BENCH_suite.json`,
/// and optionally gate against a committed baseline.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    use acc_bench::perf::{self, median_in_json, run_bench};
    let iters: u32 = parse_opt_or(args, "--iters", 3u32)?;
    let use_cache = !flag(args, "--no-cache");
    let report = run_bench(iters, use_cache);
    println!(
        "accvv bench — {} iteration(s) per workload, cache {}",
        iters.max(1),
        if use_cache { "on" } else { "off" }
    );
    println!("{:<30} {:>12} {:>14}", "workload", "median ms", "cases/sec");
    for m in &report.measurements {
        println!(
            "{:<30} {:>12.2} {:>14.1}",
            m.name, m.median_ms, m.cases_per_sec
        );
    }
    if use_cache {
        println!("compile cache: {}", report.cache);
    }
    // Read the baseline BEFORE writing --out: with the default output path
    // `--check BENCH_suite.json` would otherwise compare the fresh report
    // against itself.
    let baseline_json = match opt(args, "--check") {
        Some(p) => Some((
            std::fs::read_to_string(&p).map_err(|e| format!("--check {p}: {e}"))?,
            p,
        )),
        None => None,
    };
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_suite.json".to_string());
    let json = report.to_json();
    openacc_vv::validation::atomic_write(&out, json.as_bytes())
        .map_err(|e| format!("--out {out}: {e}"))?;
    eprintln!("accvv: bench report written to {out}");
    // Regression gate: compare each guarded workload against the baseline.
    // Minima, not medians: load interference only ever adds time, so the
    // minimum is the stable estimator of true cost and a real regression
    // raises it just the same (medians stay in the report for eyeballing).
    // A guarded workload missing from the baseline is a hard error with a
    // regeneration hint — silently skipping it would let a regression ship
    // behind a stale baseline.
    if let Some((baseline_json, baseline_path)) = baseline_json {
        let tolerance_pct: f64 = parse_opt_or(args, "--tolerance-pct", 25.0f64)?;
        for &name in perf::GUARDED {
            let baseline = perf::min_in_json(&baseline_json, name)
                .or_else(|| median_in_json(&baseline_json, name))
                .ok_or_else(|| {
                    format!(
                        "--check {baseline_path}: baseline has no `{name}` measurement but this \
                         run produced one; regenerate the baseline with \
                         `accvv bench --out {baseline_path}`"
                    )
                })?;
            let current = report
                .measurement(name)
                .map(|m| m.min_ms)
                .ok_or_else(|| format!("bench did not measure guarded workload `{name}`"))?;
            let limit = baseline * (1.0 + tolerance_pct / 100.0);
            println!(
                "regression check: {name} min {current:.2}ms vs baseline min {baseline:.2}ms \
                 (limit {limit:.2}ms = +{tolerance_pct}%)"
            );
            if current > limit {
                return Err(format!(
                    "performance regression: {name} took {current:.2}ms, more than \
                     {tolerance_pct}% over the {baseline:.2}ms baseline"
                ));
            }
        }
        // Telemetry-overhead guard: the cost of *disabled* telemetry on the
        // full suite, gated on this run's own paired estimate (measured
        // no-op call cost × recorded event volume ÷ full-suite wall time —
        // see `BenchReport::disabled_overhead_pct`). A cross-run wall-clock
        // comparison cannot resolve a 2% threshold on shared hardware; the
        // min-based regression gate above still bounds gross cross-run
        // drift of the same workload.
        let overhead_pct: f64 = parse_opt_or(args, "--overhead-pct", 2.0f64)?;
        println!(
            "telemetry overhead guard: disabled instrumentation costs ~{:.3}% of \
             {} (limit {overhead_pct}%)",
            report.disabled_overhead_pct,
            perf::FULL_SUITE
        );
        if report.disabled_overhead_pct > overhead_pct {
            return Err(format!(
                "telemetry overhead: disabled instrumentation is estimated at {:.3}% of \
                 the {} wall time, over the {overhead_pct}% limit",
                report.disabled_overhead_pct,
                perf::FULL_SUITE
            ));
        }
    }
    Ok(())
}

/// `accvv history`: fold a server result store into a time-bucketed trend
/// table, optionally write a drift baseline, and optionally gate against a
/// committed one (nonzero exit on regression).
fn cmd_history(args: &[String]) -> Result<(), String> {
    use openacc_vv::harness::{check_drift, history, DriftTolerance, HistoryRequest, ResultStore};
    let store_dir = opt(args, "--store").unwrap_or_else(|| "accvv-store".to_string());
    let bucket: u64 = parse_opt_or(args, "--bucket", 3600u64)?;
    if bucket == 0 {
        return Err("--bucket must be a positive number of seconds".to_string());
    }
    let since: u64 = parse_opt_or(args, "--since", 0u64)?;
    let until: u64 = parse_opt_or(args, "--until", u64::MAX)?;
    if since > until {
        return Err("--since is after --until: the window is empty".to_string());
    }
    let by = match opt(args, "--by") {
        None => obs::GroupBy::Profile,
        Some(raw) => obs::GroupBy::parse(&raw)
            .ok_or_else(|| format!("--by must be profile|feature|tenant|lang, got `{raw}`"))?,
    };
    let req = HistoryRequest {
        bucket,
        since,
        until,
        by,
        tenant: opt(args, "--tenant").unwrap_or_default(),
        scope: opt(args, "--scope").unwrap_or_default(),
    };
    let store_path = std::path::Path::new(&store_dir).join("results.j1");
    let store =
        ResultStore::open(&store_path).map_err(|e| format!("{}: {e}", store_path.display()))?;
    let rows = history(&store, &req);
    print!(
        "{}",
        openacc_vv::harness::history::render_table(&rows, by, flag(args, "--latency"))
    );
    // Read the baseline BEFORE writing --out (same rationale as bench:
    // `--check BENCH_history.json --out BENCH_history.json` must compare
    // against the committed file, not the one we are about to write).
    let baseline = match opt(args, "--check") {
        Some(p) => Some((
            std::fs::read_to_string(&p).map_err(|e| format!("--check {p}: {e}"))?,
            p,
        )),
        None => None,
    };
    if let Some(out) = opt(args, "--out") {
        let json = openacc_vv::harness::history::baseline_json(&rows, by);
        openacc_vv::validation::atomic_write(&out, json.as_bytes())
            .map_err(|e| format!("--out {out}: {e}"))?;
        eprintln!("accvv: history baseline written to {out}");
    }
    if let Some((baseline_json, baseline_path)) = baseline {
        let tol = DriftTolerance {
            pass_points: parse_opt_or(args, "--pass-tolerance", 0.5f64)?,
            latency_pct: parse_opt_or(args, "--latency-tolerance-pct", 50.0f64)?,
        };
        let lines = check_drift(&rows, &baseline_json, &tol)
            .map_err(|e| format!("--check {baseline_path}: {e}"))?;
        for line in lines {
            println!("{line}");
        }
    }
    Ok(())
}

fn cmd_matrix(args: &[String]) -> Result<(), String> {
    // The §VI "large table": pass/fail per feature per release.
    let vendor = parse_vendor(&opt(args, "--vendor").ok_or("matrix requires --vendor")?)?;
    let lang = match opt(args, "--lang") {
        Some(l) => parse_lang(&l)?,
        None => Language::C,
    };
    let campaign = Campaign::new(openacc_vv::testsuite::full_suite());
    let result = campaign.run_vendor_line(vendor);
    let refs: Vec<&openacc_vv::validation::SuiteRun> = result.runs.iter().collect();
    print!("{}", report::feature_matrix(&refs, lang));
    Ok(())
}

fn cmd_bugs(args: &[String]) -> Result<(), String> {
    let vendor = parse_vendor(&opt(args, "--vendor").ok_or("bugs requires --vendor")?)?;
    let version = opt(args, "--version")
        .ok_or("bugs requires --version")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let langs = match opt(args, "--lang") {
        Some(l) => vec![parse_lang(&l)?],
        None => vec![Language::C, Language::Fortran],
    };
    let catalog = BugCatalog::paper();
    for lang in langs {
        let active = catalog.active(vendor, version, lang);
        println!(
            "{} {} ({lang}): {} active bugs",
            vendor.name(),
            version,
            active.len()
        );
        for bug in active {
            println!(
                "  {:<14} {:<34} {}",
                bug.id,
                bug.feature.as_str(),
                bug.description
            );
        }
        println!();
    }
    Ok(())
}

fn cmd_expand(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expand requires a template file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cases = parse_templates(&text).map_err(|e| e.to_string())?;
    for case in &cases {
        println!("### {} (feature {})", case.name, case.feature);
        for lang in case.languages.clone() {
            println!("--- functional ({lang}) ---\n{}", case.source_for(lang));
            if let Some(x) = case.cross_source_for(lang) {
                println!("--- cross ({lang}) ---\n{x}");
            }
        }
        let problems = openacc_vv::validation::harness::validate_case(case);
        if problems.is_empty() {
            println!("reference self-check: OK\n");
        } else {
            println!("reference self-check FAILED:");
            for p in problems {
                println!("  {p}");
            }
        }
    }
    Ok(())
}

/// `accvv disasm NAME`: lower a corpus test to bytecode and print the
/// stable disassembly (the artifact the VM executes; useful for inspecting
/// what the register allocator and escape hatches produced). With `--hot`,
/// additionally run the program under the VM's opcode-pair profiler and
/// print the histogram driving superinstruction selection, plus raw vs
/// fused instruction counts so `vm_instructions` stays comparable across
/// PRs.
fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && opt_key_of(args, a).is_none())
        .ok_or("disasm requires a test name")?;
    let lang = match opt(args, "--lang") {
        Some(s) => parse_lang(&s)?,
        None => Language::C,
    };
    let suite = openacc_vv::testsuite::full_suite();
    let case = suite
        .iter()
        .find(|c| c.name == *name || c.feature.as_str() == *name)
        .ok_or_else(|| format!("no test named `{name}` (try `accvv list`)"))?;
    if !case.supports(lang) {
        return Err(format!("`{name}` is not generated for {lang}"));
    }
    let source = if flag(args, "--cross") {
        case.cross_source_for(lang)
            .ok_or_else(|| format!("`{name}` has no cross test"))?
    } else {
        case.source_for(lang)
    };
    let exe = VendorCompiler::reference()
        .compile_shared(&source, lang)
        .map_err(|e| format!("`{name}` does not compile: {e}"))?;
    print!("{}", exe.disassemble());
    if flag(args, "--hot") {
        // Profile the *unfused* image: the histogram must show the raw
        // pairs that fusion candidates are selected from, not the stream
        // with those pairs already collapsed.
        let raw = exe.unfused();
        let knobs = openacc_vv::compiler::RunKnobs::default();
        let (_, raw_prof) = raw.run_profiled(&case.env, knobs);
        let (_, fused_prof) = exe.run_profiled(&case.env, knobs);
        println!();
        println!("hot opcode pairs (unfused image):");
        for (prev, next, count) in raw_prof.top_pairs(12) {
            println!("  {count:>10}  {prev} -> {next}");
        }
        println!();
        println!(
            "instructions: raw={} fused-image={} (dispatches {} , saved {})",
            raw_prof.instructions,
            fused_prof.instructions,
            fused_prof.instructions - fused_prof.fused_saved,
            fused_prof.fused_saved,
        );
        if raw_prof.instructions != fused_prof.instructions {
            return Err(format!(
                "fused image retired {} instructions but the unfused image retired {} — \
                 fusion broke instruction accounting",
                fused_prof.instructions, raw_prof.instructions
            ));
        }
    }
    Ok(())
}

/// `accvv trace export|check`: convert a deterministic JSONL trace (from
/// `--trace-out`) into a Chrome trace-event file loadable in Perfetto /
/// `chrome://tracing`, or validate an exported file's span nesting.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("export") => {
            let input = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("trace export requires a JSONL trace file (from --trace-out)")?;
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
            let events = obs::trace::parse_jsonl(&text).map_err(|e| format!("{input}: {e}"))?;
            let doc = obs::chrome::render(&events);
            // Self-check before writing: an export that Perfetto would
            // reject (unbalanced spans) is a bug worth failing loudly on.
            let spans = obs::chrome::validate(&doc)?;
            let out = opt(args, "--out").unwrap_or_else(|| "trace.json".to_string());
            openacc_vv::validation::atomic_write(&out, doc.as_bytes())
                .map_err(|e| format!("--out {out}: {e}"))?;
            println!(
                "accvv: Chrome trace written to {out} ({} event(s), {spans} span(s))",
                events.len()
            );
            Ok(())
        }
        Some("check") => {
            let input = args
                .get(1)
                .ok_or("trace check requires a Chrome trace file")?;
            let doc = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
            let spans = obs::chrome::validate(&doc).map_err(|e| format!("{input}: {e}"))?;
            println!("accvv: {input} OK ({spans} properly nested span(s))");
            Ok(())
        }
        _ => Err("trace requires a subcommand: export TRACE.jsonl [--out FILE] | check FILE"
            .to_string()),
    }
}

/// Self-check the corpus against the reference implementation: every
/// functional test must pass and every cross test must discriminate (the
/// suite-quality gate a maintainer runs before shipping new templates).
fn cmd_selftest(args: &[String]) -> Result<(), String> {
    let prefix = args.first().cloned().unwrap_or_default();
    let suite = openacc_vv::testsuite::full_suite();
    let mut checked = 0;
    let mut bad = 0;
    for case in &suite {
        if !case.feature.as_str().starts_with(&prefix) {
            continue;
        }
        checked += 1;
        let problems = openacc_vv::validation::harness::validate_case(case);
        if problems.is_empty() {
            println!("OK    {}", case.name);
        } else {
            bad += 1;
            for p in problems {
                println!("BAD   {p}");
            }
        }
    }
    println!(
        "
{checked} tests self-checked, {bad} unhealthy"
    );
    if bad > 0 {
        return Err(format!("{bad} corpus tests failed the self-check"));
    }
    Ok(())
}

/// All values of a repeatable `--key value` option, in order.
fn opt_all(args: &[String], key: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == key)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

/// The fast four-feature subset the Titan harness runs per node.
fn titan_suite() -> Vec<TestCase> {
    let keep = ["loop", "data.copy", "parallel.async", "update.host"];
    openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| keep.contains(&c.feature.as_str()))
        .collect()
}

fn cmd_titan(args: &[String]) -> Result<(), String> {
    if flag(args, "--sweep")
        || opt(args, "--journal").is_some()
        || opt(args, "--resume").is_some()
        || !opt_all(args, "--lose-node").is_empty()
    {
        return cmd_titan_sweep(args);
    }
    let nodes: u32 = opt(args, "--nodes")
        .map(|s| s.parse().unwrap_or(16))
        .unwrap_or(16);
    let sample: usize = opt(args, "--sample")
        .map(|s| s.parse().unwrap_or(8))
        .unwrap_or(8);
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);
    let fault_rate: u8 = parse_opt_or(args, "--fault-rate", 0u8)?;
    if fault_rate > 100 {
        return Err(format!(
            "--fault-rate {fault_rate} is not a percentage (expected 0–100)"
        ));
    }
    let retries: u32 = parse_opt_or(args, "--retries", if fault_rate > 0 { 4 } else { 0 })?;
    let jobs: usize = parse_opt_or(args, "--jobs", 1usize)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1 (a pool with no workers runs nothing)".to_string());
    }
    // One persistently-broken node, plus — when a fault rate is given — one
    // node with a seeded transient memcpy fault the retry policy should
    // classify as flaky rather than broken.
    let mut faults = vec![(nodes / 3, NodeFault::StaleRuntime)];
    if fault_rate > 0 && nodes > 1 {
        faults.push((
            nodes - 1,
            NodeFault::FlakyMemcpy {
                rate_pct: fault_rate,
                seed,
            },
        ));
    }
    let cluster = SimulatedCluster::titan(nodes, &faults);
    let policy = ExecutorPolicy::new()
        .with_retries(retries)
        .with_jobs(jobs)
        .with_exec_mode(parse_exec_mode(args)?);
    let report = HarnessRun::new(titan_suite(), sample)
        .with_policy(policy)
        .execute(&cluster, seed);
    println!("{}", report.matrix());
    let suspects = report.suspect_nodes(99.0);
    if suspects.is_empty() {
        println!("no suspect nodes");
    } else {
        println!("suspect nodes: {suspects:?}");
    }
    let flaky = report.flaky_nodes();
    if !flaky.is_empty() {
        println!("flaky nodes (transient faults suspected): {flaky:?}");
    }
    Ok(())
}

/// `accvv titan --sweep`: a durable cluster-wide sweep with journaling,
/// crash-safe resume, scheduled node losses and repeat-offender quarantine.
fn cmd_titan_sweep(args: &[String]) -> Result<(), String> {
    use openacc_vv::harness::{ClusterSweep, LossPlan};
    let jobs: usize = parse_opt_or(args, "--jobs", 1usize)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1 (a pool with no workers runs nothing)".to_string());
    }
    let losses = opt_all(args, "--lose-node")
        .iter()
        .map(|s| LossPlan::parse(s))
        .collect::<Result<Vec<_>, _>>()?;
    let journal_path = opt(args, "--journal");
    let resume_path = opt(args, "--resume");
    if journal_path.is_some() && resume_path.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (--resume keeps appending to the \
             journal it replays)"
                .to_string(),
        );
    }
    let resumed = match &resume_path {
        Some(p) => {
            let (replay, j) = Replay::open_resume(p).map_err(|e| format!("--resume {p}: {e}"))?;
            eprintln!("accvv: {}", replay.summary());
            Some((replay, j))
        }
        None => None,
    };
    // An explicit --nodes wins; otherwise a resumed journal dictates the
    // cluster shape it was recorded against (the scope check would reject a
    // mismatch anyway).
    let nodes: u32 = match opt(args, "--nodes") {
        Some(s) => s.parse().map_err(|_| format!("bad --nodes `{s}`"))?,
        None => resumed
            .as_ref()
            .and_then(|(r, _)| r.meta.as_ref())
            .and_then(|(scope, _, _)| ClusterSweep::nodes_in_scope(scope))
            .unwrap_or(4),
    };
    if nodes == 0 {
        return Err("--nodes must be at least 1".to_string());
    }
    // A loss plan naming a node outside the cluster would silently never
    // fire — surface the mistake instead of running a misconfigured sweep.
    for loss in &losses {
        if loss.node >= nodes {
            return Err(format!(
                "--lose-node {}@{} names node {} but the cluster has nodes 0–{} \
                 (use --nodes to grow it)",
                loss.node,
                loss.after_units,
                loss.node,
                nodes - 1
            ));
        }
    }
    let tele = telemetry_opts(args);
    let mut policy = ExecutorPolicy::new()
        .with_jobs(jobs)
        .with_retries(parse_opt_or(args, "--retries", 0u32)?)
        .with_recorder(tele.recorder.clone())
        .with_exec_mode(parse_exec_mode(args)?);
    if let Some(p) = &journal_path {
        let j = FileJournal::create(p).map_err(|e| format!("--journal {p}: {e}"))?;
        policy = policy.with_journal(Arc::new(j));
    }
    if let Some((replay, j)) = resumed {
        policy = policy
            .with_journal(Arc::new(j))
            .with_resume(Arc::new(replay));
    }
    if let Some(n) = opt(args, "--halt-after") {
        policy = policy.with_halt_after(n.parse().map_err(|_| "bad --halt-after")?);
    }
    let cluster = SimulatedCluster::titan(nodes, &[]);
    let sweep = ClusterSweep::new(titan_suite())
        .with_policy(policy)
        .with_losses(losses)
        .with_quarantine_after(parse_opt_or(args, "--quarantine-after", 2u32)?);
    let out = sweep.run(&cluster)?;
    tele.finish(None)?;
    let rendered = out.render();
    match opt(args, "--out") {
        Some(p) => {
            openacc_vv::validation::atomic_write(&p, rendered.as_bytes())
                .map_err(|e| format!("--out {p}: {e}"))?;
            eprintln!("accvv: report written to {p}");
        }
        None => print!("{rendered}"),
    }
    // Functionality tracking: fold this sweep's pass rate into the durable
    // time series and surface any drift against the previous observation.
    if let Some(track) = opt(args, "--track") {
        let mut tracker = match openacc_vv::harness::FunctionalityTracker::load(&track) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                openacc_vv::harness::FunctionalityTracker::new()
            }
            Err(e) => return Err(format!("--track {track}: {e}")),
        };
        let runs_so_far = tracker.history(&out.scope).map(|h| h.len()).unwrap_or(0);
        tracker.record(&out.scope, format!("run{}", runs_so_far + 1), out.pass_rate());
        for drift in tracker.latest_drifts() {
            println!("{drift}");
        }
        tracker
            .save(&track)
            .map_err(|e| format!("--track {track}: {e}"))?;
    }
    if out.halted {
        let hint = journal_path
            .as_ref()
            .or(resume_path.as_ref())
            .map(|p| format!("; resume with `accvv titan --resume {p}`"))
            .unwrap_or_default();
        return Err(format!(
            "sweep halted after {} executed unit(s){hint}",
            out.executed
        ));
    }
    Ok(())
}

/// `accvv torture`: run the reference durability workload on the fault
/// filesystem, crash after every recorded I/O operation, and prove that
/// recovery holds every invariant (no acked verdict lost, no torn frame
/// surfaced, resumed state identical to the reference run).
fn cmd_torture(args: &[String]) -> Result<(), String> {
    use openacc_vv::harness::{run_torture, TortureConfig};
    let config = TortureConfig {
        seed: parse_opt_or(args, "--seed", 0xACCu64)?,
        stride: parse_opt_or(args, "--stride", 1u64)?,
        verbose: flag(args, "--verbose"),
    };
    let outcome = run_torture(&config).map_err(|e| format!("torture harness: {e}"))?;
    println!(
        "torture: reference run performs {} filesystem op(s); crashed at {} point(s) (stride {})",
        outcome.total_ops,
        outcome.crash_points,
        config.stride.max(1)
    );
    if outcome.violations.is_empty() {
        println!("torture: every recovery invariant held at every crash point");
        return Ok(());
    }
    for v in &outcome.violations {
        eprintln!("torture: VIOLATION {v}");
    }
    Err(format!(
        "{} recovery-invariant violation(s); reproduce deterministically with --seed {}",
        outcome.violations.len(),
        config.seed
    ))
}
