//! Dispatch of the fourteen OpenACC 1.0 runtime routines.

use acc_ast::ScalarType;
use acc_device::queue::AsyncTag;
use acc_device::Value;
use acc_spec::{DeviceType, RuntimeRoutine};
use std::fmt;

use crate::world::World;

/// Errors from runtime routines — these model runtime crashes (wrong
/// argument count, freeing a bad pointer, …).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineError(pub String);

impl fmt::Display for RoutineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RoutineError {}

/// Payloads of async activities whose host-visible effects became due as a
/// consequence of a `wait`-family routine. The machine applies them.
pub type DuePayloads = Vec<u64>;

/// Execute routine `r` with `args` against `world`.
///
/// * `on_device` — whether the call site executes inside a compute region
///   (`acc_on_device` is the only routine whose result depends on it).
/// * `malloc_elem` — the pointee type the machine inferred for an
///   `acc_malloc` call from its declaration context.
///
/// Returns the routine's value plus any async payloads that completed as a
/// result (for `acc_async_wait` / `acc_async_wait_all`).
pub fn dispatch(
    r: RuntimeRoutine,
    args: &[Value],
    world: &mut World,
    on_device: bool,
    malloc_elem: ScalarType,
) -> Result<(Value, DuePayloads), RoutineError> {
    if args.len() != r.arity() {
        return Err(RoutineError(format!(
            "{} expects {} argument(s), got {}",
            r.symbol(),
            r.arity(),
            args.len()
        )));
    }
    let int_arg = |i: usize| -> Result<i64, RoutineError> {
        args[i]
            .as_int()
            .map_err(|e| RoutineError(format!("{}: {}", r.symbol(), e)))
    };
    let device_type_arg = |i: usize| -> Result<DeviceType, RoutineError> {
        let v = int_arg(i)?;
        decode_device_type(v)
            .ok_or_else(|| RoutineError(format!("{}: bad device type {v}", r.symbol())))
    };
    let ok = |v: Value| Ok((v, Vec::new()));
    match r {
        RuntimeRoutine::GetNumDevices => {
            let t = device_type_arg(0)?;
            let n = match t {
                DeviceType::None => 0,
                DeviceType::Host => 1,
                _ => world.rt.num_devices as i64,
            };
            ok(Value::Int(n))
        }
        RuntimeRoutine::SetDeviceType => {
            let t = device_type_arg(0)?;
            world.rt.set_type(t);
            ok(Value::Int(0))
        }
        RuntimeRoutine::GetDeviceType => ok(Value::Int(world.rt.current_type.encoding())),
        RuntimeRoutine::SetDeviceNum => {
            let n = int_arg(0)?;
            let _t = device_type_arg(1)?;
            if n < 0 || n as u32 >= world.rt.num_devices {
                return Err(RoutineError(format!("acc_set_device_num: no device {n}")));
            }
            world.rt.current_num = n as u32;
            ok(Value::Int(0))
        }
        RuntimeRoutine::GetDeviceNum => {
            let _t = device_type_arg(0)?;
            ok(Value::Int(world.rt.current_num as i64))
        }
        RuntimeRoutine::AsyncTest => {
            let tag = AsyncTag::Numbered(int_arg(0)?);
            let done = world.queues.tag_done(tag, world.clock.now());
            // Activities complete by now have their host-visible effects due:
            // observing completion materializes them (equivalent to the real
            // runtime, where effects land at completion time).
            let due = if done {
                world.queues.drain_complete(tag, world.clock.now())
            } else {
                Vec::new()
            };
            Ok((Value::Int(done as i64), due))
        }
        RuntimeRoutine::AsyncTestAll => {
            let done = world.queues.all_done(world.clock.now());
            let due = if done {
                world.queues.drain_all_complete(world.clock.now())
            } else {
                Vec::new()
            };
            Ok((Value::Int(done as i64), due))
        }
        RuntimeRoutine::AsyncWait => {
            let tag = AsyncTag::Numbered(int_arg(0)?);
            if let Some(t) = world.queues.tag_completion(tag) {
                world.clock.advance_to(t);
            }
            let due = world.queues.drain_complete(tag, world.clock.now());
            Ok((Value::Int(0), due))
        }
        RuntimeRoutine::AsyncWaitAll => {
            if let Some(t) = world.queues.all_completion() {
                world.clock.advance_to(t);
            }
            let due = world.queues.drain_all_complete(world.clock.now());
            Ok((Value::Int(0), due))
        }
        RuntimeRoutine::Init => {
            let _t = device_type_arg(0)?;
            world.rt.initialized = true;
            ok(Value::Int(0))
        }
        RuntimeRoutine::Shutdown => {
            let _t = device_type_arg(0)?;
            world.rt.initialized = false;
            ok(Value::Int(0))
        }
        RuntimeRoutine::OnDevice => {
            let t = device_type_arg(0)?;
            let answer = match t {
                DeviceType::Host => !on_device,
                DeviceType::None => false,
                // not_host / default / any accelerator type: true iff we are
                // in a compute region targeting that kind of device.
                _ => on_device,
            };
            ok(Value::Int(answer as i64))
        }
        RuntimeRoutine::Malloc => {
            let bytes = int_arg(0)?;
            if bytes < 0 {
                return Err(RoutineError(format!("acc_malloc: negative size {bytes}")));
            }
            let elems = (bytes as usize).div_ceil(malloc_elem.size_bytes()).max(1);
            let id = world.mem.alloc(malloc_elem, vec![elems]);
            world.metrics.allocations += 1;
            ok(Value::DevPtr(id))
        }
        RuntimeRoutine::Free => match args[0] {
            Value::DevPtr(id) => {
                world
                    .mem
                    .free(id)
                    .map_err(|e| RoutineError(e.to_string()))?;
                ok(Value::Int(0))
            }
            Value::Int(0) => ok(Value::Int(0)), // free(NULL) is a no-op
            other => Err(RoutineError(format!(
                "acc_free of non-device pointer {other}"
            ))),
        },
    }
}

/// Decode an integer to a device type via the canonical encodings.
fn decode_device_type(v: i64) -> Option<DeviceType> {
    [
        DeviceType::None,
        DeviceType::Default,
        DeviceType::Host,
        DeviceType::NotHost,
        DeviceType::Cuda,
        DeviceType::Opencl,
        DeviceType::Nvidia,
        DeviceType::Radeon,
        DeviceType::XeonPhi,
        DeviceType::PgiOpencl,
        DeviceType::NvidiaOpencl,
    ]
    .into_iter()
    .find(|d| d.encoding() == v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(r: RuntimeRoutine, args: &[Value], w: &mut World) -> Value {
        dispatch(r, args, w, false, ScalarType::Float).unwrap().0
    }

    #[test]
    fn device_type_round_trip_is_implementation_defined() {
        let mut w = World::default_gpu();
        call(
            RuntimeRoutine::SetDeviceType,
            &[Value::Int(DeviceType::NotHost.encoding())],
            &mut w,
        );
        let got = call(RuntimeRoutine::GetDeviceType, &[], &mut w);
        // The paper's §V-C: you do NOT get `acc_device_not_host` back; you
        // get the implementation's concrete type.
        assert_eq!(got, Value::Int(DeviceType::Nvidia.encoding()));
        assert_ne!(got, Value::Int(DeviceType::NotHost.encoding()));
    }

    #[test]
    fn num_devices() {
        let mut w = World::default_gpu();
        assert_eq!(
            call(
                RuntimeRoutine::GetNumDevices,
                &[Value::Int(DeviceType::NotHost.encoding())],
                &mut w
            ),
            Value::Int(1)
        );
        assert_eq!(
            call(
                RuntimeRoutine::GetNumDevices,
                &[Value::Int(DeviceType::None.encoding())],
                &mut w
            ),
            Value::Int(0)
        );
    }

    #[test]
    fn async_test_and_wait() {
        let mut w = World::default_gpu();
        w.clock.advance(5);
        w.queues.enqueue(AsyncTag::Numbered(7), 100, 42);
        let not_done = call(RuntimeRoutine::AsyncTest, &[Value::Int(7)], &mut w);
        assert_eq!(not_done, Value::Int(0));
        let (_, due) = dispatch(
            RuntimeRoutine::AsyncWait,
            &[Value::Int(7)],
            &mut w,
            false,
            ScalarType::Int,
        )
        .unwrap();
        assert_eq!(due, vec![42]);
        assert_eq!(w.clock.now(), 100);
        let done = call(RuntimeRoutine::AsyncTest, &[Value::Int(7)], &mut w);
        assert_eq!(done, Value::Int(1));
    }

    #[test]
    fn wait_all_drains_everything() {
        let mut w = World::default_gpu();
        w.queues.enqueue(AsyncTag::Numbered(1), 10, 1);
        w.queues.enqueue(AsyncTag::Numbered(2), 20, 2);
        let (_, due) = dispatch(
            RuntimeRoutine::AsyncWaitAll,
            &[],
            &mut w,
            false,
            ScalarType::Int,
        )
        .unwrap();
        assert_eq!(due, vec![1, 2]);
        assert_eq!(
            call(RuntimeRoutine::AsyncTestAll, &[], &mut w),
            Value::Int(1)
        );
    }

    #[test]
    fn malloc_and_free() {
        let mut w = World::default_gpu();
        let p = call(RuntimeRoutine::Malloc, &[Value::Int(40)], &mut w);
        let id = match p {
            Value::DevPtr(id) => id,
            other => panic!("{other}"),
        };
        assert_eq!(w.mem.get(id).unwrap().len(), 10); // 40 bytes / 4-byte float
        call(RuntimeRoutine::Free, &[p], &mut w);
        assert_eq!(w.mem.live_buffers(), 0);
        // Double free is a runtime error.
        assert!(dispatch(RuntimeRoutine::Free, &[p], &mut w, false, ScalarType::Float).is_err());
    }

    #[test]
    fn free_null_is_noop() {
        let mut w = World::default_gpu();
        assert!(dispatch(
            RuntimeRoutine::Free,
            &[Value::Int(0)],
            &mut w,
            false,
            ScalarType::Float
        )
        .is_ok());
    }

    #[test]
    fn on_device_semantics() {
        let mut w = World::default_gpu();
        let host_q = Value::Int(DeviceType::Host.encoding());
        let nothost_q = Value::Int(DeviceType::NotHost.encoding());
        // From host code:
        assert_eq!(
            dispatch(
                RuntimeRoutine::OnDevice,
                &[host_q],
                &mut w,
                false,
                ScalarType::Int
            )
            .unwrap()
            .0,
            Value::Int(1)
        );
        assert_eq!(
            dispatch(
                RuntimeRoutine::OnDevice,
                &[nothost_q],
                &mut w,
                false,
                ScalarType::Int
            )
            .unwrap()
            .0,
            Value::Int(0)
        );
        // From device code:
        assert_eq!(
            dispatch(
                RuntimeRoutine::OnDevice,
                &[nothost_q],
                &mut w,
                true,
                ScalarType::Int
            )
            .unwrap()
            .0,
            Value::Int(1)
        );
    }

    #[test]
    fn init_shutdown_toggle() {
        let mut w = World::default_gpu();
        let t = Value::Int(DeviceType::Default.encoding());
        call(RuntimeRoutine::Init, &[t], &mut w);
        assert!(w.rt.initialized);
        call(RuntimeRoutine::Shutdown, &[t], &mut w);
        assert!(!w.rt.initialized);
    }

    #[test]
    fn arity_checked() {
        let mut w = World::default_gpu();
        assert!(dispatch(
            RuntimeRoutine::AsyncTest,
            &[],
            &mut w,
            false,
            ScalarType::Int
        )
        .is_err());
    }

    #[test]
    fn set_device_num_bounds() {
        let mut w = World::default_gpu();
        let t = DeviceType::NotHost.encoding();
        assert!(dispatch(
            RuntimeRoutine::SetDeviceNum,
            &[Value::Int(5), Value::Int(t)],
            &mut w,
            false,
            ScalarType::Int
        )
        .is_err());
        assert!(dispatch(
            RuntimeRoutine::SetDeviceNum,
            &[Value::Int(0), Value::Int(t)],
            &mut w,
            false,
            ScalarType::Int
        )
        .is_ok());
    }
}
