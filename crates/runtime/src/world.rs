//! The complete device-side state of one program execution.

use acc_device::{AsyncQueues, DeviceMemory, Metrics, PresentTable, VirtualClock};
use acc_spec::envvar::EnvConfig;
use acc_spec::DeviceType;

use crate::state::RuntimeState;

/// Everything the runtime and the execution machine share: device memory,
/// the present table, async queues, the virtual clock, metrics, and the
/// runtime-library state.
#[derive(Debug)]
pub struct World {
    /// Device memory / allocator.
    pub mem: DeviceMemory,
    /// Host-symbol → device mapping.
    pub present: PresentTable,
    /// Async activity queues.
    pub queues: AsyncQueues,
    /// Virtual clock.
    pub clock: VirtualClock,
    /// Execution counters.
    pub metrics: Metrics,
    /// Runtime-library state.
    pub rt: RuntimeState,
}

impl World {
    /// Fresh world with the given implementation-defined concrete device
    /// type, honoring ACC_* environment variables.
    pub fn new(concrete_device: DeviceType, env: &EnvConfig) -> Self {
        World {
            mem: DeviceMemory::new(),
            present: PresentTable::new(),
            queues: AsyncQueues::new(),
            clock: VirtualClock::new(),
            metrics: Metrics::new(),
            rt: RuntimeState::new(concrete_device, env),
        }
    }

    /// Default world: an NVIDIA-class accelerator, empty environment.
    pub fn default_gpu() -> Self {
        World::new(DeviceType::Nvidia, &EnvConfig::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_world_is_empty() {
        let w = World::default_gpu();
        assert_eq!(w.mem.live_buffers(), 0);
        assert!(w.present.is_empty());
        assert_eq!(w.clock.now(), 0);
        assert_eq!(w.metrics.kernels_launched, 0);
        assert!(!w.rt.on_host());
    }
}
