//! # acc-runtime — the OpenACC 1.0 runtime library over the simulated device
//!
//! Implements the fourteen runtime routines of the 1.0 specification (§3)
//! and the `ACC_DEVICE_TYPE` / `ACC_DEVICE_NUM` environment variables (§4)
//! against the `acc-device` substrate. The simulated vendor compilers route
//! generated `acc_*` calls through [`dispatch`]; examples can use the same
//! API directly as a library.
//!
//! The crate also defines [`World`]: the complete mutable device-side state
//! of one program execution (memory, present table, async queues, virtual
//! clock, metrics, runtime state). The execution machine in `acc-compiler`
//! owns a `World` per run.

#![warn(missing_docs)]

pub mod routines;
pub mod state;
pub mod world;

pub use routines::{dispatch, RoutineError};
pub use state::RuntimeState;
pub use world::World;
