//! Runtime-library state: selected device type/number, initialization.

use acc_spec::envvar::EnvConfig;
use acc_spec::DeviceType;

/// The runtime's device-selection state.
///
/// `concrete_device` is the implementation-defined device type the runtime
/// resolves `acc_device_not_host` / `acc_device_default` to — the paper's
/// §V-C observation: "the real device type returned is implementation-
/// defined" (CAPS resolves to `acc_device_cuda`, PGI to
/// `acc_device_nvidia`, …).
#[derive(Debug, Clone)]
pub struct RuntimeState {
    /// The implementation's concrete accelerator type.
    pub concrete_device: DeviceType,
    /// Currently selected device type.
    pub current_type: DeviceType,
    /// Currently selected device number.
    pub current_num: u32,
    /// Number of attached accelerator devices.
    pub num_devices: u32,
    /// Whether `acc_init` has been called (and not shut down).
    pub initialized: bool,
}

impl RuntimeState {
    /// Fresh state with the given implementation-defined concrete device
    /// type, honoring `ACC_DEVICE_TYPE` / `ACC_DEVICE_NUM` from the
    /// environment.
    pub fn new(concrete_device: DeviceType, env: &EnvConfig) -> Self {
        let current_type = match env.device_type {
            Some(t) => resolve(t, concrete_device),
            None => concrete_device,
        };
        RuntimeState {
            concrete_device,
            current_type,
            current_num: env.device_num.unwrap_or(0),
            num_devices: 1,
            initialized: false,
        }
    }

    /// Select a device type (the `acc_set_device_type` semantics): abstract
    /// types resolve to the implementation's concrete type.
    pub fn set_type(&mut self, t: DeviceType) {
        self.current_type = resolve(t, self.concrete_device);
    }

    /// Is execution currently targeting the host (no accelerator)?
    pub fn on_host(&self) -> bool {
        matches!(self.current_type, DeviceType::Host | DeviceType::None)
    }
}

/// Resolve an abstract requested type to the concrete one.
fn resolve(requested: DeviceType, concrete: DeviceType) -> DeviceType {
    match requested {
        DeviceType::NotHost | DeviceType::Default => concrete,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_host_resolves_to_concrete() {
        let mut s = RuntimeState::new(DeviceType::Nvidia, &EnvConfig::empty());
        s.set_type(DeviceType::NotHost);
        assert_eq!(s.current_type, DeviceType::Nvidia);
        assert!(s.current_type.satisfies_not_host());
    }

    #[test]
    fn explicit_host_selection() {
        let mut s = RuntimeState::new(DeviceType::Cuda, &EnvConfig::empty());
        s.set_type(DeviceType::Host);
        assert!(s.on_host());
        s.set_type(DeviceType::Default);
        assert_eq!(s.current_type, DeviceType::Cuda);
        assert!(!s.on_host());
    }

    #[test]
    fn env_overrides_initial_selection() {
        let env = EnvConfig::from_pairs([("ACC_DEVICE_TYPE", "HOST"), ("ACC_DEVICE_NUM", "3")]);
        let s = RuntimeState::new(DeviceType::Nvidia, &env);
        assert_eq!(s.current_type, DeviceType::Host);
        assert_eq!(s.current_num, 3);
    }

    #[test]
    fn env_not_host_resolves() {
        let env = EnvConfig::from_pairs([("ACC_DEVICE_TYPE", "NOT_HOST")]);
        let s = RuntimeState::new(DeviceType::Cuda, &env);
        assert_eq!(s.current_type, DeviceType::Cuda);
    }
}
