//! Machine-readable performance measurements behind `accvv bench`.
//!
//! Each measurement times a representative workload (template expansion,
//! a full reference campaign, the three-vendor Fig. 8 sweep, the device
//! interpreter) over a configurable number of iterations and reports the
//! median wall time plus a cases-per-second throughput figure. The report
//! serialises to a small hand-rolled JSON document (`BENCH_suite.json`)
//! that doubles as the CI regression baseline: `accvv bench --check
//! BASELINE --tolerance-pct P` fails when the full-suite wall time
//! regresses by more than `P` percent.

use acc_compiler::exec::{ExecMode, RunKnobs};
use acc_compiler::{CacheStats, CompileCache, VendorCompiler, VendorId};
use acc_validation::Campaign;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The measurement CI gates on: the three-vendor, all-versions Fig. 8
/// campaign — the suite's end-to-end hot path.
pub const FULL_SUITE: &str = "campaign_fig8_three_vendor";

/// The single-kernel interpreter workload (512-element device loop): the
/// bytecode VM's hot path, gated alongside [`FULL_SUITE`] so an engine
/// regression can't hide inside campaign noise.
pub const DEVICE_KERNEL: &str = "device_kernel_512";

/// The same 512-element kernel under the parallel gang engine
/// (`--exec-mode par`, auto-sized pool): gated so the parallel dispatch
/// path — plan lookup, launch, ordered commit — can't silently regress
/// relative to [`DEVICE_KERNEL`].
pub const DEVICE_KERNEL_PAR: &str = "device_kernel_512_parallel";

/// Workloads the `--check` regression gate compares against the baseline.
/// Every guarded workload must exist in the baseline; a missing entry is a
/// hard error with a regeneration hint (a silent skip would let a
/// regression ship behind a stale baseline).
pub const GUARDED: &[&str] = &[FULL_SUITE, DEVICE_KERNEL, DEVICE_KERNEL_PAR];

/// The reference campaign run with an *enabled* recorder: what live tracing
/// costs end to end. Reported (so the enabled overhead stays visible in
/// `BENCH_suite.json`) but not gated — the guarantee the suite makes is
/// about the disabled path.
pub const TRACED_CAMPAIGN: &str = "campaign_traced_reference";

/// One named workload's timing.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (stable across runs; keys the baseline comparison).
    pub name: String,
    /// Median wall time across the run's iterations, in milliseconds.
    pub median_ms: f64,
    /// Minimum wall time across the run's iterations, in milliseconds.
    /// Scheduler/load interference is one-sided (it only ever adds time),
    /// so the minimum is the low-noise estimator of a workload's true
    /// cost — tight-threshold gates (the telemetry overhead guard)
    /// compare minima, while the coarse ±25% regression gate keeps using
    /// the median.
    pub min_ms: f64,
    /// Work units per second at the median (case results, rendered
    /// sources, or kernel runs depending on the workload).
    pub cases_per_sec: f64,
}

/// A full bench run: every measurement plus the compilation-cache counters
/// accumulated across all of them.
#[derive(Debug)]
pub struct BenchReport {
    /// Whether the compilation cache was attached (`accvv bench` default;
    /// `--no-cache` turns it off to measure the cold path).
    pub cache_enabled: bool,
    /// Iterations per measurement (median taken over these).
    pub iters: u32,
    /// The measurements, in execution order.
    pub measurements: Vec<Measurement>,
    /// Estimated cost of *disabled* telemetry on the full-suite workload,
    /// as a percentage of its wall time. Paired, in-run estimate — the
    /// measured no-op cost of one disabled instrumentation call, times the
    /// event volume a traced run actually records (scaled to the
    /// full-suite case count), over the full-suite minimum wall time. All
    /// three factors come from the same process, so machine-speed drift
    /// cancels — unlike any cross-run wall-clock comparison, which cannot
    /// resolve a 2% threshold on shared hardware.
    pub disabled_overhead_pct: f64,
    /// Cache counters summed over the whole run (all zeros when disabled).
    pub cache: CacheStats,
}

impl BenchReport {
    /// Look up a measurement by name.
    pub fn measurement(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.name == name)
    }

    /// Serialise as the `BENCH_suite.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"accvv-bench-v1\",");
        let _ = writeln!(s, "  \"cache_enabled\": {},", self.cache_enabled);
        let _ = writeln!(s, "  \"iters\": {},", self.iters);
        let _ = writeln!(s, "  \"measurements\": [");
        for (i, m) in self.measurements.iter().enumerate() {
            let comma = if i + 1 < self.measurements.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"cases_per_sec\": {:.1}}}{comma}",
                m.name, m.median_ms, m.min_ms, m.cases_per_sec
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(
            s,
            "  \"disabled_overhead_pct\": {:.4},",
            self.disabled_overhead_pct
        );
        let _ = writeln!(s, "  \"cache\": {{");
        let _ = writeln!(s, "    \"frontend_hits\": {},", self.cache.frontend_hits);
        let _ = writeln!(s, "    \"frontend_misses\": {},", self.cache.frontend_misses);
        let _ = writeln!(s, "    \"exec_hits\": {},", self.cache.exec_hits);
        let _ = writeln!(s, "    \"exec_misses\": {},", self.cache.exec_misses);
        let _ = writeln!(s, "    \"hit_rate\": {:.4}", self.cache.hit_rate());
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

/// Extract a measurement's `median_ms` from a serialised report without a
/// JSON parser: scan for the measurement object by name. Tolerates only the
/// exact layout [`BenchReport::to_json`] emits — which is all the baseline
/// file can contain.
pub fn median_in_json(json: &str, name: &str) -> Option<f64> {
    field_in_json(json, name, "median_ms")
}

/// Extract a measurement's `min_ms` (see [`Measurement::min_ms`]). `None`
/// for baselines written before the field existed.
pub fn min_in_json(json: &str, name: &str) -> Option<f64> {
    field_in_json(json, name, "min_ms")
}

fn field_in_json(json: &str, name: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{name}\""))?;
    let rest = &json[at..];
    // Stay within this measurement object.
    let obj = &rest[..rest.find('}').unwrap_or(rest.len())];
    let key = format!("\"{field}\": ");
    let m = obj.find(&key)?;
    let rest = &obj[m + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One workload's raw timing: the median wall time plus the totals the
/// throughput figure derives from.
struct Timing {
    /// Median per-iteration wall time, milliseconds.
    median_ms: f64,
    /// Minimum per-iteration wall time, milliseconds.
    min_ms: f64,
    /// Work units summed over ALL iterations.
    total_units: usize,
    /// Wall time summed over ALL iterations, seconds.
    total_secs: f64,
}

/// Time `iters` runs of `body`. The median is per-iteration; the unit and
/// elapsed totals span every iteration so the derived throughput is total
/// units over total elapsed time — dividing one iteration's unit count by
/// the median time would overstate throughput whenever the run count and
/// per-run cost drift apart.
fn time_median(iters: u32, mut body: impl FnMut() -> usize) -> Timing {
    let mut times_ms: Vec<f64> = Vec::with_capacity(iters as usize);
    let mut total_units = 0usize;
    let mut total_secs = 0.0f64;
    for _ in 0..iters {
        let t0 = Instant::now();
        let units = std::hint::black_box(body());
        let dt = t0.elapsed().as_secs_f64();
        times_ms.push(dt * 1e3);
        total_units += units;
        total_secs += dt;
    }
    times_ms.sort_by(f64::total_cmp);
    Timing {
        median_ms: times_ms[times_ms.len() / 2],
        min_ms: times_ms[0],
        total_units,
        total_secs,
    }
}

fn push(measurements: &mut Vec<Measurement>, name: &str, t: Timing) {
    let cases_per_sec = if t.total_secs > 0.0 {
        t.total_units as f64 / t.total_secs
    } else {
        0.0
    };
    measurements.push(Measurement {
        name: name.to_string(),
        median_ms: t.median_ms,
        min_ms: t.min_ms,
        cases_per_sec,
    });
}

/// Run the bench suite. `iters` timed repetitions per workload (median
/// reported); `use_cache` attaches one shared [`CompileCache`] to every
/// campaign, mirroring what `accvv run`/`campaign` do by default.
pub fn run_bench(iters: u32, use_cache: bool) -> BenchReport {
    let iters = iters.max(1);
    let cache = use_cache.then(CompileCache::shared);
    let with_cache = |c: Campaign| match &cache {
        Some(cache) => c.with_cache(Arc::clone(cache)),
        None => c,
    };
    let suite = acc_testsuite::full_suite();
    let mut measurements = Vec::new();

    // 1. Template expansion: render every functional + cross source in
    //    both languages (the suite's pure generation cost).
    let timing = time_median(iters, || {
        let mut sources = 0usize;
        for case in &suite {
            for lang in case.languages.clone() {
                std::hint::black_box(case.source_for(lang).len());
                sources += 1;
                if let Some(x) = case.cross_source_for(lang) {
                    std::hint::black_box(x.len());
                    sources += 1;
                }
            }
        }
        sources
    });
    push(&mut measurements, "generate_sources", timing);

    // 2. Full suite against the clean reference implementation.
    let reference = VendorCompiler::reference();
    let campaign = with_cache(Campaign::new(suite.clone()));
    let timing = time_median(iters, || campaign.run_one(&reference).results.len());
    push(&mut measurements, "campaign_reference_full", timing);

    // 2b. The same campaign with live span collection, so the cost of
    //     *enabled* tracing is a visible line item next to the untraced
    //     number above. A fresh recorder per iteration keeps the event
    //     buffer from growing across iterations.
    let timing = time_median(iters, || {
        let traced = with_cache(
            Campaign::new(suite.clone()).with_recorder(acc_obs::Recorder::enabled()),
        );
        traced.run_one(&reference).results.len()
    });
    push(&mut measurements, TRACED_CAMPAIGN, timing);

    // 2c. Inputs for the disabled-overhead estimate (untimed): how many
    //     events one traced reference campaign records, per case result —
    //     i.e. how many instrumentation sites actually fire per case.
    let recorder = acc_obs::Recorder::enabled();
    let traced = with_cache(Campaign::new(suite.clone()).with_recorder(recorder.clone()));
    let reference_units = traced.run_one(&reference).results.len().max(1);
    let events_per_reference_run = recorder.snapshot().len();

    // 2d. The disabled instrumentation path in isolation: with no scope
    //     installed, every call below takes the no-scope fast path (one
    //     thread-local check) — exactly what each span/instant site in the
    //     stack costs while telemetry is off.
    let noop_calls = 2_000_000usize;
    let timing = time_median(iters, || {
        for _ in 0..noop_calls {
            acc_obs::instant("bench", "noop", vec![]);
        }
        noop_calls
    });
    let disabled_ns_per_call = timing.min_ms * 1e6 / noop_calls as f64;
    push(&mut measurements, "obs_disabled_call_2m", timing);

    // 3. The Fig. 8 acceptance metric: all released versions of all three
    //    commercial vendors, serially.
    let campaign = with_cache(Campaign::new(suite.clone()));
    let timing = time_median(iters, || {
        let mut results = 0usize;
        for vendor in [VendorId::Caps, VendorId::Pgi, VendorId::Cray] {
            for run in campaign.run_vendor_line(vendor).runs {
                results += run.results.len();
            }
        }
        results
    });
    let full_suite_units = timing.total_units / iters as usize;
    let full_suite_min_ms = timing.min_ms;
    push(&mut measurements, FULL_SUITE, timing);

    // 4. Device interpreter throughput: one compiled kernel run repeatedly
    //    (compilation outside the timed region — this isolates `exec.rs`).
    let src = "int main(void) {\n    int error = 0;\n    int A[512];\n    for (i = 0; i < 512; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(8) copy(A[0:512])\n    {\n        #pragma acc loop\n        for (i = 0; i < 512; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    for (i = 0; i < 512; i++)\n    {\n        if (A[i] != 1)\n        {\n            error++;\n        }\n    }\n    return error == 0;\n}\n";
    let exe = reference
        .compile(src, acc_spec::Language::C)
        .expect("bench kernel compiles");
    let timing = time_median(iters, || {
        let runs = 20usize;
        for _ in 0..runs {
            std::hint::black_box(exe.run().outcome.passed());
        }
        runs
    });
    push(&mut measurements, DEVICE_KERNEL, timing);

    // 5. Bytecode lowering in isolation: re-lower the already-resolved 512
    //    kernel. This is the cost a compile-cache miss adds over the old
    //    tree-walking pipeline (a hit skips it entirely).
    let timing = time_median(iters, || {
        let lowerings = 50usize;
        for _ in 0..lowerings {
            std::hint::black_box(exe.lower_again());
        }
        lowerings
    });
    push(&mut measurements, "vm_compile_only", timing);

    // 6. The VM hot loop, pinned explicitly (independent of the session
    //    default engine): same kernel, same 20-run batch as
    //    `device_kernel_512`, so the two stay directly comparable.
    let env = acc_spec::envvar::EnvConfig::empty();
    let vm_knobs = || RunKnobs {
        exec_mode: ExecMode::Vm,
        ..RunKnobs::default()
    };
    let timing = time_median(iters, || {
        let runs = 20usize;
        for _ in 0..runs {
            std::hint::black_box(exe.run_with_knobs(&env, vm_knobs()).outcome.passed());
        }
        runs
    });
    push(&mut measurements, "vm_execute_512", timing);

    // 7. The parallel gang engine on the same kernel and batch size: the
    //    plan-driven element-kernel dispatch (worker pool auto-sized; on a
    //    single-core host the launch runs inline, so this measures the
    //    plan + commit overhead against `vm_execute_512`).
    let par_knobs = || RunKnobs {
        exec_mode: ExecMode::Par { threads: 0 },
        ..RunKnobs::default()
    };
    let timing = time_median(iters, || {
        let runs = 20usize;
        for _ in 0..runs {
            std::hint::black_box(exe.run_with_knobs(&env, par_knobs()).outcome.passed());
        }
        runs
    });
    push(&mut measurements, DEVICE_KERNEL_PAR, timing);

    // Disabled-overhead estimate (see `BenchReport::disabled_overhead_pct`):
    // scale the traced reference run's event volume to the full-suite case
    // count, price each event at the measured no-op call cost, and take
    // that as a fraction of the full-suite minimum wall time.
    let estimated_events =
        events_per_reference_run as f64 * (full_suite_units as f64 / reference_units as f64);
    let disabled_overhead_pct = if full_suite_min_ms > 0.0 {
        estimated_events * disabled_ns_per_call / (full_suite_min_ms * 1e6) * 100.0
    } else {
        0.0
    };

    BenchReport {
        cache_enabled: use_cache,
        iters,
        measurements,
        disabled_overhead_pct,
        cache: cache.map(|c| c.stats()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_the_gated_median() {
        let report = BenchReport {
            cache_enabled: true,
            iters: 3,
            disabled_overhead_pct: 0.1234,
            measurements: vec![
                Measurement {
                    name: "generate_sources".into(),
                    median_ms: 12.5,
                    min_ms: 11.0,
                    cases_per_sec: 100.0,
                },
                Measurement {
                    name: FULL_SUITE.into(),
                    median_ms: 456.789,
                    min_ms: 450.5,
                    cases_per_sec: 4321.0,
                },
            ],
            cache: CacheStats::default(),
        };
        let json = report.to_json();
        assert_eq!(median_in_json(&json, FULL_SUITE), Some(456.789));
        assert_eq!(median_in_json(&json, "generate_sources"), Some(12.5));
        assert_eq!(median_in_json(&json, "missing"), None);
        assert_eq!(min_in_json(&json, FULL_SUITE), Some(450.5));
        // Pre-min_ms baselines simply don't have the field.
        let legacy = json.replace(", \"min_ms\": 450.5", "").replace(", \"min_ms\": 11.0", "");
        assert_eq!(min_in_json(&legacy, FULL_SUITE), None);
        assert_eq!(median_in_json(&legacy, FULL_SUITE), Some(456.789));
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut times = [5.0, 1.0, 3.0];
        times.sort_by(f64::total_cmp);
        assert_eq!(times[times.len() / 2], 3.0);
    }
}
