//! # acc-bench — benchmark & figure/table regeneration harnesses
//!
//! One bench target per evaluation artifact of the paper:
//!
//! | Target | Artifact |
//! |---|---|
//! | `fig8_caps` / `fig8_pgi` / `fig8_cray` | Fig. 8(a)/(b)/(c) pass-rate series |
//! | `table1_bugs` | Table I bug counts |
//! | `certainty_stats` | §III statistical certainty model |
//! | `fig13_titan` | §VII / Fig. 13 production-harness matrix |
//! | `perf_suite` | suite execution throughput (Criterion) |
//! | `perf_device` | device-engine throughput, deterministic vs parallel (Criterion) |
//! | `perf_template` | template expansion & front-end throughput (Criterion) |
//!
//! Run them all with `cargo bench --workspace`, or one with
//! `cargo bench -p acc-bench --bench fig8_caps`.

#![warn(missing_docs)]

pub mod perf;

use acc_compiler::{VendorCompiler, VendorId};
use acc_spec::Language;
use acc_validation::{Campaign, SuiteRun};

/// Print one vendor's Fig. 8 series (and return the rows for assertions).
pub fn fig8_series(vendor: VendorId) -> Vec<(String, f64, f64)> {
    let suite = acc_testsuite::full_suite();
    let campaign = Campaign::new(suite);
    let result = campaign.run_vendor_line(vendor);
    let mut rows = Vec::new();
    for (version, run) in vendor.versions().iter().zip(&result.runs) {
        rows.push((
            version.to_string(),
            run.pass_rate(Language::C),
            run.pass_rate(Language::Fortran),
        ));
    }
    rows
}

/// Render a Fig. 8 series as the paper-style table plus an ASCII bar plot.
pub fn render_fig8(vendor: VendorId, rows: &[(String, f64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 8({}) — {} test pass rates per released version",
        match vendor {
            VendorId::Caps => "a",
            VendorId::Pgi => "b",
            VendorId::Cray => "c",
            VendorId::Reference => "-",
        },
        vendor.name()
    );
    let _ = writeln!(s, "{:>10} {:>8} {:>10}", "version", "C %", "Fortran %");
    for (v, c, f) in rows {
        let _ = writeln!(s, "{v:>10} {c:>8.1} {f:>10.1}");
    }
    let _ = writeln!(s);
    for (label, idx) in [("C Test", 1usize), ("Fortran Test", 2)] {
        let _ = writeln!(s, "  {label}:");
        for row in rows {
            let rate = if idx == 1 { row.1 } else { row.2 };
            let bars = "#".repeat((rate / 2.5).round() as usize);
            let _ = writeln!(s, "    {:>8} |{bars} {rate:.1}%", row.0);
        }
    }
    s
}

/// Run the full suite once against a compiler (helper for perf benches).
pub fn run_full_suite(compiler: &VendorCompiler) -> SuiteRun {
    let suite = acc_testsuite::full_suite();
    Campaign::new(suite).run_one(compiler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_render_has_all_versions() {
        // Use a cheap subset by rendering fabricated rows (the real series
        // is exercised by the bench targets).
        let rows = vec![
            ("1.0".to_string(), 50.0, 60.0),
            ("2.0".to_string(), 100.0, 100.0),
        ];
        let out = render_fig8(VendorId::Caps, &rows);
        assert!(out.contains("Fig. 8(a)"));
        assert!(out.contains("1.0"));
        assert!(out.contains("100.0"));
        assert!(out.contains("C Test"));
        assert!(out.contains("Fortran Test"));
    }
}
