//! Regenerates Fig. 8(b): PGI pass rates across releases 12.6 … 13.8.
//!
//! Paper shape: gradual improvement through 12.x, a dip at 13.2 (the
//! multi-target reorganization), recovery from 13.4, and a persistent
//! plateau below 100% caused by the asynchronous cluster (§V-B).

use acc_bench::{fig8_series, render_fig8};
use acc_compiler::VendorId;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let rows = fig8_series(VendorId::Pgi);
    let elapsed = t0.elapsed();
    println!("{}", render_fig8(VendorId::Pgi, &rows));

    let c: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let f: Vec<f64> = rows.iter().map(|r| r.2).collect();
    assert!(c[3] > c[0], "12.x line improves");
    assert!(c[4] < c[3], "13.2 dips below 12.10 (reorganization)");
    assert!(c[5] > c[4], "13.4 recovers");
    assert!(
        c[7] < 100.0 && f[7] < 100.0,
        "the async cluster persists to 13.8"
    );
    assert!(f.iter().all(|r| *r < 90.0), "Fortran lags C throughout");
    println!("shape assertions hold; campaign wall time {elapsed:.2?}");
}
