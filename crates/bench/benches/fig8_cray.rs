//! Regenerates Fig. 8(c): Cray pass rates across releases 8.1.2 … 8.2.0.
//!
//! Paper shape: "the bar plots mostly show no variation" — flat lines, with
//! one small Fortran improvement at 8.1.7 (Table I: 6 → 5 bugs).

use acc_bench::{fig8_series, render_fig8};
use acc_compiler::VendorId;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let rows = fig8_series(VendorId::Cray);
    let elapsed = t0.elapsed();
    println!("{}", render_fig8(VendorId::Cray, &rows));

    let c: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let f: Vec<f64> = rows.iter().map(|r| r.2).collect();
    assert!(
        c.iter().all(|r| (r - c[0]).abs() < 1e-9),
        "C series is flat"
    );
    assert!(f[5] > f[4], "one Fortran fix lands at 8.1.7");
    assert!(
        f[0] > c[0],
        "Fortran outpaces C (the C-only deviceptr/malloc bug cluster)"
    );
    println!("shape assertions hold; campaign wall time {elapsed:.2?}");
}
