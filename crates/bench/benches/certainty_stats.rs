//! Regenerates the §III statistical certainty analysis: for repeated cross
//! runs, `p = nf/M`, `pa = (1-p)^M`, `pc = 1 - pa`; a feature is validated
//! only at `pc = 100%`.
//!
//! Prints the closed-form table and then a Monte-Carlo simulation of an
//! *intermittently* wrong implementation, showing how repetition count M
//! drives the probability of catching it.

use acc_validation::Certainty;
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    println!("closed-form certainty (the paper's formulas):\n");
    println!(
        "{:>4} {:>4} {:>8} {:>8} {:>8}  validated",
        "M", "nf", "p", "pa", "pc"
    );
    for (m, nf) in [
        (3u32, 3u32),
        (3, 2),
        (3, 0),
        (5, 5),
        (5, 4),
        (10, 9),
        (10, 10),
    ] {
        let c = Certainty::new(m, nf);
        println!(
            "{m:>4} {nf:>4} {:>8.3} {:>8.4} {:>8.4}  {}",
            c.p(),
            c.pa(),
            c.pc(),
            c.validated()
        );
        // Invariants.
        assert!((c.pc() - (1.0 - (1.0 - c.p()).powi(m as i32))).abs() < 1e-12);
        assert_eq!(c.validated(), nf == m);
    }

    println!("\nMonte-Carlo: an implementation whose bug only fires with probability q");
    println!("(per run). Probability that M cross repetitions catch it at 100% certainty:\n");
    println!(
        "{:>6} {:>4} {:>12} {:>12}",
        "q", "M", "caught(sim)", "caught(th)"
    );
    let mut rng = StdRng::seed_from_u64(2014);
    const TRIALS: u32 = 20_000;
    for q in [0.9f64, 0.5, 0.2] {
        for m in [1u32, 3, 5, 10] {
            let mut caught = 0u32;
            for _ in 0..TRIALS {
                let nf = (0..m).filter(|_| rng.gen::<f64>() < q).count() as u32;
                if Certainty::new(m, nf).validated() {
                    caught += 1;
                }
            }
            let sim = caught as f64 / TRIALS as f64;
            let theory = q.powi(m as i32);
            println!("{q:>6.2} {m:>4} {sim:>12.4} {theory:>12.4}");
            assert!((sim - theory).abs() < 0.02, "simulation must track q^M");
        }
    }
    println!("\nrepetition count M trades run time for confidence exactly as §III models.");
}
