//! Criterion: suite execution throughput — the cost of one full validation
//! campaign run against a compiler release (the operation the Titan harness
//! schedules repeatedly).

use acc_compiler::{VendorCompiler, VendorId};
use acc_spec::Language;
use acc_validation::{Campaign, SuiteConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let suite = acc_testsuite::full_suite();
    let mut g = c.benchmark_group("suite");
    g.sample_size(10);

    // Generation only: render all 200+ programs in both languages.
    g.bench_function("generate_all_sources", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for case in &suite {
                for lang in case.languages.clone() {
                    bytes += case.source_for(lang).len();
                    if let Some(x) = case.cross_source_for(lang) {
                        bytes += x.len();
                    }
                }
            }
            black_box(bytes)
        })
    });

    // Full campaign against the clean reference implementation.
    let reference = VendorCompiler::reference();
    g.bench_function("campaign_reference_full", |b| {
        let campaign = Campaign::new(suite.clone());
        b.iter(|| black_box(campaign.run_one(&reference)).results.len())
    });

    // The crossbeam-parallel campaign executor (same results, fanned out).
    g.bench_function("campaign_reference_parallel_t4", |b| {
        let campaign = Campaign::new(suite.clone());
        b.iter(|| {
            black_box(campaign.run_one_parallel(&reference, 4))
                .results
                .len()
        })
    });

    // A buggy release (compile errors shortcut many executions).
    let caps_beta = VendorCompiler::new(VendorId::Caps, "3.0.7".parse().unwrap());
    g.bench_function("campaign_caps_3_0_7_full", |b| {
        let campaign = Campaign::new(suite.clone());
        b.iter(|| black_box(campaign.run_one(&caps_beta)).results.len())
    });

    // One area, one language — the harness probe-sized workload.
    g.bench_function("campaign_reference_data_area_c", |b| {
        let campaign = Campaign::new(suite.clone()).with_config(
            SuiteConfig::new()
                .language(Language::C)
                .select_prefixes(&["data"]),
        );
        b.iter(|| black_box(campaign.run_one(&reference)).results.len())
    });
    g.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
