//! Criterion: template-infrastructure throughput — template parsing, test
//! expansion to all four generated programs, and raw front-end speed.

use acc_spec::Language;
use acc_validation::template::{parse_templates, render_template};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_templates(c: &mut Criterion) {
    let template = acc_testsuite::templates::FIG2_LOOP;
    let case = parse_templates(template).unwrap().remove(0);

    let mut g = c.benchmark_group("template");
    g.bench_function("parse_template", |b| {
        b.iter(|| black_box(parse_templates(template).unwrap().len()))
    });
    g.bench_function("expand_four_programs", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for lang in [Language::C, Language::Fortran] {
                n += case.source_for(lang).len();
                n += case.cross_source_for(lang).unwrap().len();
            }
            black_box(n)
        })
    });
    g.bench_function("render_template", |b| {
        b.iter(|| black_box(render_template(&case).len()))
    });

    let c_src = case.source_for(Language::C);
    let f_src = case.source_for(Language::Fortran);
    g.bench_function("frontend_parse_c", |b| {
        b.iter(|| {
            black_box(
                acc_frontend::parse(&c_src, Language::C)
                    .unwrap()
                    .functions
                    .len(),
            )
        })
    });
    g.bench_function("frontend_parse_fortran", |b| {
        b.iter(|| {
            black_box(
                acc_frontend::parse(&f_src, Language::Fortran)
                    .unwrap()
                    .functions
                    .len(),
            )
        })
    });
    g.bench_function("full_corpus_construction", |b| {
        b.iter(|| black_box(acc_testsuite::full_suite().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_templates);
criterion_main!(benches);
