//! Criterion: device-engine throughput, and the DESIGN.md §4 ablation —
//! deterministic sequential interpretation (what conformance requires)
//! versus the genuinely parallel crossbeam backend (what a production
//! runtime would use for race-free partitioned kernels).

use acc_device::parallel::{par_map_f64, par_sum_f64, saxpy, seq_map_f64, Partition};
use acc_device::ArrayData;
use acc_spec::Language;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_saxpy");
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let x = ArrayData::F64((0..n).map(|i| i as f64).collect());
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            let mut y = vec![1.0f64; n];
            b.iter(|| {
                seq_map_f64(&mut y, |i, v| *v += 2.0 * i as f64);
                black_box(y[n / 2])
            })
        });
        for &threads in &[2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("par_block_t{threads}"), n),
                &n,
                |b, _| {
                    let mut y = vec![1.0f64; n];
                    b.iter(|| {
                        par_map_f64(&mut y, threads, Partition::Block, |i, v| {
                            *v += 2.0 * i as f64
                        });
                        black_box(y[n / 2])
                    })
                },
            );
        }
        g.bench_with_input(BenchmarkId::new("saxpy_arraydata_t4", n), &n, |b, _| {
            let mut y = ArrayData::F64(vec![1.0; n]);
            b.iter(|| {
                saxpy(2.0, &x, &mut y, 4);
                black_box(y.len())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("device_reduction");
    for &n in &[1usize << 14, 1 << 18] {
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("seq_sum", n), &n, |b, _| {
            b.iter(|| black_box(data.iter().sum::<f64>()))
        });
        for &threads in &[4usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("par_sum_t{threads}"), n),
                &n,
                |b, _| b.iter(|| black_box(par_sum_f64(&data, threads))),
            );
        }
    }
    g.finish();

    // The conformance machine interpreting a kernel (AST-level), for scale.
    let mut g = c.benchmark_group("machine_kernel");
    g.sample_size(20);
    let src = "int main(void) {\n    int error = 0;\n    int A[512];\n    for (i = 0; i < 512; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(8) copy(A[0:512])\n    {\n        #pragma acc loop\n        for (i = 0; i < 512; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    for (i = 0; i < 512; i++)\n    {\n        if (A[i] != 1)\n        {\n            error++;\n        }\n    }\n    return error == 0;\n}\n";
    let reference = acc_compiler::VendorCompiler::reference();
    let exe = reference.compile(src, Language::C).unwrap();
    g.bench_function("interpret_512_elem_kernel", |b| {
        b.iter(|| black_box(exe.run().outcome.passed()))
    });
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
