//! Regenerates the Fig. 13 scenario: the validation suite deployed on the
//! Titan programming environment — random node sampling, the OpenACC→CUDA
//! and OpenACC→OpenCL software stacks, and fault discovery.

use acc_harness::{FunctionalityTracker, HarnessRun, NodeFault, SimulatedCluster};
use acc_spec::Language as _Lang;
use acc_validation::TestCase;

fn probe_suite() -> Vec<TestCase> {
    let keep = [
        "loop",
        "data.copy",
        "parallel.async",
        "update.host",
        "parallel.reduction",
    ];
    acc_testsuite::full_suite()
        .into_iter()
        .filter(|c| keep.contains(&c.feature.as_str()))
        .collect()
}

fn main() {
    let _ = std::any::type_name::<_Lang>();
    let faults = [(5u32, NodeFault::GpuHang), (17, NodeFault::StaleRuntime)];
    let cluster = SimulatedCluster::titan(24, &faults);
    println!(
        "Fig. 13 — validating the `{}` programming environment ({} nodes, {} healthy)\n",
        cluster.name,
        cluster.nodes.len(),
        cluster.healthy_count()
    );
    let run = HarnessRun::new(probe_suite(), 10);
    let mut tracker = FunctionalityTracker::new();
    let mut discovered = std::collections::BTreeSet::new();
    for (label, seed) in [
        ("run-1", 11u64),
        ("run-2", 12),
        ("run-3", 13),
        ("run-4", 14),
    ] {
        let report = run.execute(&cluster, seed);
        println!("== {label}: nodes {:?}", report.sampled);
        println!("{}", report.matrix());
        for n in report.suspect_nodes(99.0) {
            discovered.insert(n);
        }
        for r in &report.results {
            tracker.record(format!("nid{:05} {}", r.node, r.stack), label, r.pass_rate);
        }
    }
    println!("faulty nodes discovered across runs: {discovered:?}");
    assert!(
        discovered.iter().all(|n| [5, 17].contains(n)),
        "no healthy node may be flagged"
    );
    println!("every flagged node is genuinely faulty; drift log:\n");
    for d in tracker.latest_drifts() {
        println!("{d}");
    }
}
