//! Regenerates Table I: bugs identified in different compilers, per released
//! version and language.
//!
//! Two views are printed:
//! 1. the catalog counts, which must equal the paper's Table I verbatim;
//! 2. the *discovered* footprint — how many feature tests each release
//!    fails — which is what the suite can actually observe.

use acc_compiler::{BugCatalog, VendorId};
use acc_spec::Language;
use acc_validation::Campaign;

/// Table I of the paper, verbatim.
const TABLE_I: &[(VendorId, Language, [usize; 8])] = &[
    (VendorId::Caps, Language::C, [36, 24, 20, 1, 1, 1, 0, 0]),
    (
        VendorId::Caps,
        Language::Fortran,
        [32, 70, 15, 1, 1, 0, 0, 0],
    ),
    (VendorId::Pgi, Language::C, [8, 8, 7, 6, 6, 5, 5, 5]),
    (
        VendorId::Pgi,
        Language::Fortran,
        [14, 14, 14, 14, 14, 13, 13, 13],
    ),
    (
        VendorId::Cray,
        Language::C,
        [16, 16, 16, 16, 16, 16, 16, 16],
    ),
    (VendorId::Cray, Language::Fortran, [6, 6, 6, 6, 6, 5, 5, 5]),
];

fn main() {
    let catalog = BugCatalog::paper();
    println!("TABLE I — BUGS IDENTIFIED IN DIFFERENT COMPILERS (F: FORTRAN)\n");
    for vendor in VendorId::COMMERCIAL {
        println!("Compiler: {}", vendor.name());
        print!("{:>10}", "Version");
        for v in vendor.versions() {
            print!("{:>8}", v.to_string());
        }
        println!();
        for lang in [Language::C, Language::Fortran] {
            print!("{:>10}", lang.letter());
            for v in vendor.versions() {
                print!("{:>8}", catalog.count(vendor, v, lang));
            }
            println!();
        }
        println!();
    }

    // Verify against the paper.
    for (vendor, lang, expected) in TABLE_I {
        for (i, v) in vendor.versions().iter().enumerate() {
            assert_eq!(
                catalog.count(*vendor, *v, *lang),
                expected[i],
                "{vendor} {v} {lang}"
            );
        }
    }
    println!("catalog counts match the paper's Table I exactly.\n");

    // Observable footprint: failing feature tests per release.
    println!("DISCOVERED FOOTPRINT — failing feature tests per release\n");
    let suite = acc_testsuite::full_suite();
    let campaign = Campaign::new(suite);
    for vendor in VendorId::COMMERCIAL {
        let result = campaign.run_vendor_line(vendor);
        print!("{:>10}", vendor.name());
        for (v, run) in vendor.versions().iter().zip(&result.runs) {
            let failing = run.failing_features(Language::C).len()
                + run.failing_features(Language::Fortran).len();
            print!("{:>11}", format!("{v}:{failing}"));
        }
        println!();
    }
}
