//! Regenerates Fig. 8(a): CAPS pass rates across releases 3.0.7 … 3.3.4.
//!
//! The percentages are *measured* by running the full suite against each
//! release; the shape — a steep rise out of the 3.0.x betas, the 3.0.8
//! Fortran front-end collapse, the 3.1.0 declare dip, ≈100% by 3.3.x — must
//! match the paper (see EXPERIMENTS.md).

use acc_bench::{fig8_series, render_fig8};
use acc_compiler::VendorId;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let rows = fig8_series(VendorId::Caps);
    let elapsed = t0.elapsed();
    println!("{}", render_fig8(VendorId::Caps, &rows));

    // Shape assertions (who wins, where the inflection points are).
    let c: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let f: Vec<f64> = rows.iter().map(|r| r.2).collect();
    assert!(c[0] < 70.0, "3.0.7 is a beta: low C pass rate");
    assert!(f[1] < f[0], "3.0.8 Fortran front-end regression");
    assert!(c[3] > 95.0, "3.2.3 is near-clean");
    assert!(c[7] == 100.0 && f[7] == 100.0, "3.3.4 is clean");
    assert!(
        c.windows(2).filter(|w| w[1] < w[0]).count() == 0,
        "C quality is monotone"
    );
    println!("shape assertions hold; campaign wall time {elapsed:.2?}");
}
