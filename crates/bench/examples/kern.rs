//! Micro-benchmark: the 512-element kernel under both engines.
use acc_compiler::exec::{ExecMode, RunKnobs};
use acc_compiler::VendorCompiler;
use acc_spec::envvar::EnvConfig;
use std::time::Instant;

fn main() {
    let src = "int main(void) {\n    int error = 0;\n    int A[512];\n    for (i = 0; i < 512; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(8) copy(A[0:512])\n    {\n        #pragma acc loop\n        for (i = 0; i < 512; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    for (i = 0; i < 512; i++)\n    {\n        if (A[i] != 1)\n        {\n            error++;\n        }\n    }\n    return error == 0;\n}\n";
    let exe = VendorCompiler::reference()
        .compile(src, acc_spec::Language::C)
        .unwrap();
    let env = EnvConfig::empty();
    for mode in [ExecMode::Walk, ExecMode::Vm] {
        let knobs = RunKnobs {
            exec_mode: mode,
            ..RunKnobs::default()
        };
        for _ in 0..50 {
            std::hint::black_box(exe.run_with_knobs(&env, knobs));
        }
        let n = 2000;
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(exe.run_with_knobs(&env, knobs));
        }
        let dt = t0.elapsed().as_secs_f64();
        println!("{:?}: {:.1} us/run", mode, dt / n as f64 * 1e6);
    }
}
