//! Micro-benchmark: the serial Fig. 8 campaign under both engines.
use acc_compiler::exec::ExecMode;
use acc_compiler::{CompileCache, VendorId};
use acc_validation::{Campaign, SuiteConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    for mode in [ExecMode::Walk, ExecMode::Vm] {
        let cache = CompileCache::shared();
        let campaign = Campaign::new(acc_testsuite::full_suite())
            .with_config(SuiteConfig::new().with_exec_mode(mode))
            .with_cache(Arc::clone(&cache));
        // warm the cache so the timed run matches the bench's steady state
        for vendor in [VendorId::Caps, VendorId::Pgi, VendorId::Cray] {
            std::hint::black_box(campaign.run_vendor_line(vendor).runs.len());
        }
        let t0 = Instant::now();
        let mut results = 0usize;
        for vendor in [VendorId::Caps, VendorId::Pgi, VendorId::Cray] {
            for run in campaign.run_vendor_line(vendor).runs {
                results += run.results.len();
            }
        }
        println!(
            "{:?}: {:.1} ms ({} results)",
            mode,
            t0.elapsed().as_secs_f64() * 1e3,
            results
        );
    }
}
