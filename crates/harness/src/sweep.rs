//! Cluster-wide validation sweeps with graceful node-loss degradation.
//!
//! A sweep schedules every (case, language) unit of a suite round-robin
//! across the cluster's live nodes and runs them in unit order, so the row
//! list is deterministic regardless of which nodes survive. The sweep
//! journals every unit (with node attribution) through the same durable
//! journal the single-compiler executor uses, and reacts to mid-run node
//! loss: the dead node's queued units are drained onto the survivors, the
//! event is journaled, and nodes that keep dying across a journal's
//! lifetime are quarantined — excluded from scheduling — on the next
//! resume.

use crate::cluster::{LossPlan, SimulatedCluster};
use acc_obs as obs;
use acc_spec::Language;
use acc_validation::executor::ATTEMPT_STRIDE;
use acc_validation::journal::JournalRecord;
use acc_validation::{
    run_case_with, Campaign, CasePolicy, CaseResult, Executor, ExecutorPolicy, JobMeta,
    SuiteConfig, TestCase,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// A sweep configuration: the suite, the executor policy (whose journal /
/// resume / halt knobs the sweep drives itself), the scheduled losses, and
/// the quarantine threshold.
#[derive(Debug)]
pub struct ClusterSweep {
    /// Test cases to run on every unit's node.
    pub suite: Vec<TestCase>,
    /// Suite configuration (language and feature selection).
    pub config: SuiteConfig,
    /// Executor policy. `journal`, `resume` and `halt_after` are interpreted
    /// by the sweep itself (per-unit execution runs serial with the
    /// remaining knobs: retries, backoff, deadlines, step limit).
    pub policy: ExecutorPolicy,
    /// Scheduled node losses.
    pub losses: Vec<LossPlan>,
    /// Total journal-lifetime deaths at which a node is quarantined on
    /// resume.
    pub quarantine_after: u32,
}

impl ClusterSweep {
    /// A sweep over `suite` with default config, policy, and a quarantine
    /// threshold of 2 deaths.
    pub fn new(suite: Vec<TestCase>) -> Self {
        ClusterSweep {
            suite,
            config: SuiteConfig::default(),
            policy: ExecutorPolicy::default(),
            losses: Vec::new(),
            quarantine_after: 2,
        }
    }

    /// Replace the executor policy.
    pub fn with_policy(mut self, policy: ExecutorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Schedule node losses.
    pub fn with_losses(mut self, losses: Vec<LossPlan>) -> Self {
        self.losses = losses;
        self
    }

    /// Set the quarantine threshold (journal-lifetime deaths).
    pub fn with_quarantine_after(mut self, deaths: u32) -> Self {
        self.quarantine_after = deaths.max(1);
        self
    }

    /// The sweep's scope label — written to the journal meta record and
    /// checked on resume so a journal can't resume against a different
    /// cluster shape.
    pub fn scope(cluster: &SimulatedCluster) -> String {
        format!("{} sweep ({} nodes)", cluster.name, cluster.nodes.len())
    }

    /// Recover the node count recorded in a sweep journal's meta scope, so
    /// `--resume` can rebuild the same cluster shape without the operator
    /// re-passing `--nodes` (a mismatch would be rejected by the scope
    /// check anyway — this just removes the footgun).
    pub fn nodes_in_scope(scope: &str) -> Option<u32> {
        scope
            .rsplit_once('(')?
            .1
            .strip_suffix(" nodes)")?
            .parse()
            .ok()
    }

    /// Run the sweep. Fails when quarantine leaves no schedulable node or a
    /// resumed journal belongs to a different scope.
    pub fn run(&self, cluster: &SimulatedCluster) -> Result<SweepOutcome, String> {
        let scope = Self::scope(cluster);
        let journal = self.policy.journal.clone();
        let resume = self.policy.resume.clone();
        if let Some(r) = &resume {
            if let Some((recorded, _, _)) = &r.meta {
                if *recorded != scope {
                    return Err(format!(
                        "journal was recorded for `{recorded}`, not `{scope}`"
                    ));
                }
            }
        }

        // Quarantine: nodes whose journal-lifetime death count crossed the
        // threshold are excluded before scheduling; newly crossed nodes get
        // a quarantine record so the exclusion itself is durable.
        let mut quarantined_prior: Vec<u32> = Vec::new();
        let mut newly_quarantined: Vec<u32> = Vec::new();
        if let Some(r) = &resume {
            quarantined_prior = r.quarantined.iter().copied().collect();
            for (&node, &deaths) in &r.node_deaths {
                if deaths >= self.quarantine_after && !r.quarantined.contains(&node) {
                    newly_quarantined.push(node);
                    if let Some(j) = &journal {
                        j.append(&JournalRecord::NodeQuarantined { node, deaths });
                    }
                }
            }
        }
        let excluded: Vec<u32> = {
            let mut v = quarantined_prior.clone();
            v.extend(&newly_quarantined);
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut alive: Vec<u32> = cluster
            .nodes
            .iter()
            .map(|n| n.id)
            .filter(|id| !excluded.contains(id))
            .collect();
        alive.sort_unstable();
        if alive.is_empty() {
            return Err("every node is quarantined; nothing can be scheduled".to_string());
        }

        // Build the unit list (case-major, language-minor — same order as
        // the single-compiler executor) and assign units round-robin over
        // the alive nodes in id order.
        let cases: Vec<TestCase> = Campaign::new(self.suite.clone())
            .with_config(self.config.clone())
            .materialized_cases();
        let mut units: Vec<(usize, Language)> = Vec::new();
        let mut metas: Vec<JobMeta> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            for &lang in &self.config.languages {
                units.push((i, lang));
                metas.push(JobMeta {
                    name: case.name.clone(),
                    feature: case.feature.clone(),
                    language: lang,
                });
            }
        }
        let n = units.len();
        let mut owner: Vec<u32> = (0..n).map(|i| alive[i % alive.len()]).collect();
        // Sweep-level telemetry run. The sweep's own marks live in its pre
        // and post scopes; per-unit execution is delegated to the inner
        // executor, which allocates its own run ordinals sequentially (the
        // sweep is serial, so ordinals stay deterministic).
        let trun = self.policy.recorder.begin_run();
        {
            let _g = obs::scope(&self.policy.recorder, trun, obs::PART_PRE, 0, 0);
            obs::mark(
                obs::Phase::Begin,
                "sweep",
                &scope,
                vec![
                    obs::i("total_units", n as i64),
                    obs::i("alive_nodes", alive.len() as i64),
                ],
            );
            for &node in &newly_quarantined {
                obs::instant("node", "quarantined", vec![obs::i("node", node as i64)]);
            }
        }
        if let Some(j) = &journal {
            let languages: Vec<String> =
                self.config.languages.iter().map(|l| l.to_string()).collect();
            j.append(&JournalRecord::Meta {
                scope: scope.clone(),
                total_jobs: n,
                languages: languages.join("+"),
            });
        }

        // Per-unit inner executor: the sweep owns journaling, resume and
        // halting, so those knobs are stripped; retries/deadlines/step
        // budget still apply to every attempt.
        let inner = {
            let mut p = self.policy.clone();
            p.journal = None;
            p.resume = None;
            p.halt_after = None;
            p.jobs = 1;
            Executor::new(p)
        };

        let mut rows: Vec<SweepRow> = Vec::new();
        let mut losses_hit: Vec<NodeLoss> = Vec::new();
        let mut completed_by: BTreeMap<u32, usize> = BTreeMap::new();
        let mut done = 0usize;
        let mut executed = 0usize;
        let mut cached = 0usize;
        let mut halted = false;
        let mut lost: Vec<u32> = Vec::new();
        for i in 0..n {
            // Sweep-level events for this unit (loss handling, resume
            // replay, node assignment) collect under the unit's job scope;
            // the guard is dropped before the inner executor runs so its
            // own scopes can own the thread.
            let tguard = obs::scope(&self.policy.recorder, trun, obs::PART_JOB, i as u32, 0);
            // Fire any loss plan whose threshold the completed-unit count
            // has reached (cached units count, so a resumed sweep replays
            // the loss at the same point — deaths accumulate in the journal
            // until quarantine).
            for plan in &self.losses {
                if done >= plan.after_units
                    && alive.contains(&plan.node)
                    && !lost.contains(&plan.node)
                {
                    alive.retain(|&id| id != plan.node);
                    lost.push(plan.node);
                    if alive.is_empty() {
                        break;
                    }
                    // Drain the dead node's queue round-robin onto survivors.
                    let pending: Vec<usize> =
                        (i..n).filter(|&u| owner[u] == plan.node).collect();
                    for (k, &u) in pending.iter().enumerate() {
                        owner[u] = alive[k % alive.len()];
                    }
                    let loss = NodeLoss {
                        node: plan.node,
                        completed: completed_by.get(&plan.node).copied().unwrap_or(0),
                        reassigned: pending.len(),
                    };
                    if let Some(j) = &journal {
                        j.append(&JournalRecord::NodeLost {
                            node: loss.node,
                            completed: loss.completed,
                            reassigned: loss.reassigned,
                        });
                    }
                    obs::instant(
                        "node",
                        "lost",
                        vec![
                            obs::i("node", loss.node as i64),
                            obs::i("completed", loss.completed as i64),
                            obs::i("reassigned", loss.reassigned as i64),
                        ],
                    );
                    losses_hit.push(loss);
                }
            }
            if alive.is_empty() {
                halted = true;
                break;
            }
            let meta = &metas[i];
            // Resume: a unit already completed in the journal keeps its
            // recorded row and node attribution without re-running.
            if let Some(c) = resume
                .as_ref()
                .and_then(|r| r.completed.get(&(meta.name.clone(), meta.language)))
            {
                let node = c.node.unwrap_or(owner[i]);
                if obs::active() {
                    obs::instant(
                        "case",
                        &meta.name,
                        vec![
                            obs::s("lang", meta.language.to_string()),
                            obs::s("source", "cached_resume"),
                            obs::s("status", c.result.status.label()),
                            obs::i("node", node as i64),
                        ],
                    );
                }
                rows.push(SweepRow {
                    unit: i,
                    node,
                    result: c.result.clone(),
                });
                *completed_by.entry(node).or_insert(0) += 1;
                cached += 1;
                done += 1;
                continue;
            }
            if self.policy.halt_after.is_some_and(|h| executed >= h) {
                halted = true;
                break;
            }
            let node_id = owner[i];
            let node = cluster
                .nodes
                .iter()
                .find(|nd| nd.id == node_id)
                .expect("owner is a cluster node");
            let compiler = node.stacks[0].compiler(node.fault);
            obs::instant("unit", "assign", vec![obs::i("node", node_id as i64)]);
            // The inner executor installs its own per-job scopes on this
            // thread; release the sweep's unit scope first.
            drop(tguard);
            if let Some(j) = &journal {
                j.append(&JournalRecord::AttemptStart {
                    name: meta.name.clone(),
                    language: meta.language,
                    attempt: 0,
                });
            }
            let started = Instant::now();
            let (ci, lang) = units[i];
            let unit_meta = [meta.clone()];
            let result = inner
                .run_jobs_with(&unit_meta, |_, attempt| {
                    let cp = CasePolicy {
                        step_limit: self.policy.step_limit,
                        run_index_base: attempt as u64 * ATTEMPT_STRIDE,
                        exec_mode: self.policy.exec_mode,
                        memo: true,
                    };
                    run_case_with(&cases[ci], &compiler, lang, &cp)
                })
                .remove(0);
            if let Some(j) = &journal {
                j.append(&JournalRecord::CaseDone {
                    result: result.clone(),
                    node: Some(node_id),
                    duration_ms: started.elapsed().as_millis() as u64,
                });
            }
            rows.push(SweepRow {
                unit: i,
                node: node_id,
                result,
            });
            *completed_by.entry(node_id).or_insert(0) += 1;
            executed += 1;
            done += 1;
        }
        rows.sort_by_key(|r| r.unit);
        {
            let _g = obs::scope(&self.policy.recorder, trun, obs::PART_POST, 0, 0);
            obs::mark(
                obs::Phase::End,
                "sweep",
                &scope,
                vec![
                    obs::i("executed", executed as i64),
                    obs::i("cached", cached as i64),
                    obs::i("halted", halted as i64),
                ],
            );
        }
        Ok(SweepOutcome {
            scope,
            total_units: n,
            rows,
            losses: losses_hit,
            quarantined_prior,
            newly_quarantined,
            executed,
            cached,
            halted,
        })
    }
}

/// One unit's outcome: which node ran it and what the harness concluded.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Unit index in schedule order.
    pub unit: usize,
    /// Executing node.
    pub node: u32,
    /// The harness verdict.
    pub result: CaseResult,
}

/// A node loss the sweep absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLoss {
    /// The node that died.
    pub node: u32,
    /// Units it had completed.
    pub completed: usize,
    /// Queued units drained onto survivors.
    pub reassigned: usize,
}

/// The full outcome of a (possibly resumed, possibly halted) sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Scope label (also the journal meta scope).
    pub scope: String,
    /// Total units scheduled.
    pub total_units: usize,
    /// Completed unit rows, in unit order.
    pub rows: Vec<SweepRow>,
    /// Node losses absorbed this run.
    pub losses: Vec<NodeLoss>,
    /// Nodes quarantined by earlier runs of this journal.
    pub quarantined_prior: Vec<u32>,
    /// Nodes newly quarantined at the start of this run.
    pub newly_quarantined: Vec<u32>,
    /// Units executed this run.
    pub executed: usize,
    /// Units replayed from the journal.
    pub cached: usize,
    /// Whether the sweep stopped early (halt drill, or every node died).
    pub halted: bool,
}

impl SweepOutcome {
    /// Pass rate over completed, counted units, percent.
    pub fn pass_rate(&self) -> f64 {
        let counted: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.result.status.counted())
            .collect();
        if counted.is_empty() {
            return 100.0;
        }
        counted.iter().filter(|r| r.result.passed()).count() as f64 / counted.len() as f64 * 100.0
    }

    /// Render the operator-facing sweep report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Cluster sweep — {}", self.scope);
        let _ = writeln!(
            s,
            "{} of {} unit(s) complete ({} executed, {} resumed from journal), pass rate {:.1}%",
            self.rows.len(),
            self.total_units,
            self.executed,
            self.cached,
            self.pass_rate()
        );
        for q in &self.quarantined_prior {
            let _ = writeln!(s, "quarantined (prior run): nid{q:05}");
        }
        for q in &self.newly_quarantined {
            let _ = writeln!(s, "QUARANTINED: nid{q:05} (repeat offender — excluded)");
        }
        for l in &self.losses {
            let _ = writeln!(
                s,
                "NODE LOST: nid{:05} after {} unit(s); {} queued unit(s) drained to survivors",
                l.node, l.completed, l.reassigned
            );
        }
        if self.halted {
            let _ = writeln!(s, "SWEEP HALTED EARLY — journal holds the partial state");
        }
        for r in &self.rows {
            let _ = writeln!(
                s,
                "nid{:05} {:<36} ({}) {}",
                r.node,
                r.result.feature.as_str(),
                r.result.language,
                r.result.status
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::{MemoryJournal, Replay};
    use std::sync::Arc;

    fn mini_suite() -> Vec<TestCase> {
        acc_testsuite::full_suite()
            .into_iter()
            .filter(|c| {
                matches!(
                    c.feature.as_str(),
                    "loop" | "parallel.async" | "update.host"
                )
            })
            .collect()
    }

    #[test]
    fn node_count_round_trips_through_the_scope_label() {
        let cluster = SimulatedCluster::titan(7, &[]);
        let scope = ClusterSweep::scope(&cluster);
        assert_eq!(ClusterSweep::nodes_in_scope(&scope), Some(7));
        assert_eq!(ClusterSweep::nodes_in_scope("not a sweep scope"), None);
        assert_eq!(ClusterSweep::nodes_in_scope("x sweep (many nodes)"), None);
    }

    #[test]
    fn healthy_sweep_distributes_round_robin() {
        let cluster = SimulatedCluster::titan(3, &[]);
        let out = ClusterSweep::new(mini_suite())
            .run(&cluster)
            .expect("sweep runs");
        assert_eq!(out.rows.len(), out.total_units);
        assert!(!out.halted);
        assert_eq!(out.pass_rate(), 100.0);
        // Units go to nodes 0,1,2,0,1,2,…
        for r in &out.rows {
            assert_eq!(r.node as usize, r.unit % 3, "unit {}", r.unit);
        }
    }

    #[test]
    fn node_loss_drains_queue_onto_survivors() {
        let cluster = SimulatedCluster::titan(3, &[]);
        let journal = Arc::new(MemoryJournal::default());
        let sweep = ClusterSweep::new(mini_suite())
            .with_policy(ExecutorPolicy::new().with_journal(journal.clone()))
            .with_losses(vec![LossPlan {
                node: 1,
                after_units: 2,
            }]);
        let out = sweep.run(&cluster).expect("sweep runs");
        assert_eq!(out.rows.len(), out.total_units, "no unit was dropped");
        assert_eq!(out.losses.len(), 1);
        assert_eq!(out.losses[0].node, 1);
        assert!(out.losses[0].reassigned > 0);
        // Node 1 ran nothing after the loss point.
        for r in out.rows.iter().filter(|r| r.unit >= 2) {
            assert_ne!(r.node, 1, "unit {} ran on the dead node", r.unit);
        }
        // The loss is durable: the journal replays with one death recorded.
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.node_deaths.get(&1), Some(&1));
        // Row content matches a loss-free sweep (scheduling degrades, the
        // verdicts don't).
        let clean = ClusterSweep::new(mini_suite())
            .run(&cluster)
            .expect("clean sweep");
        for (a, b) in out.rows.iter().zip(&clean.rows) {
            assert_eq!(a.result.status, b.result.status, "unit {}", a.unit);
        }
    }

    #[test]
    fn halted_sweep_resumes_to_same_rows() {
        let cluster = SimulatedCluster::titan(2, &[]);
        let journal = Arc::new(MemoryJournal::default());
        let halted = ClusterSweep::new(mini_suite())
            .with_policy(
                ExecutorPolicy::new()
                    .with_journal(journal.clone())
                    .with_halt_after(3),
            )
            .run(&cluster)
            .expect("halted sweep");
        assert!(halted.halted);
        assert_eq!(halted.executed, 3);
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.completed_count(), 3);
        let resumed = ClusterSweep::new(mini_suite())
            .with_policy(ExecutorPolicy::new().with_resume(Arc::new(replay)))
            .run(&cluster)
            .expect("resumed sweep");
        assert!(!resumed.halted);
        assert_eq!(resumed.cached, 3);
        let clean = ClusterSweep::new(mini_suite()).run(&cluster).expect("clean");
        assert_eq!(resumed.rows.len(), clean.rows.len());
        for (a, b) in resumed.rows.iter().zip(&clean.rows) {
            assert_eq!(a.node, b.node, "unit {}", a.unit);
            assert_eq!(a.result, b.result, "unit {}", a.unit);
        }
    }

    #[test]
    fn repeat_deaths_quarantine_the_node() {
        let cluster = SimulatedCluster::titan(3, &[]);
        let journal = Arc::new(MemoryJournal::default());
        let lose_1 = vec![LossPlan {
            node: 1,
            after_units: 1,
        }];
        // Run 1: node 1 dies, sweep halts partway (so a resume has work).
        ClusterSweep::new(mini_suite())
            .with_policy(
                ExecutorPolicy::new()
                    .with_journal(journal.clone())
                    .with_halt_after(2),
            )
            .with_losses(lose_1.clone())
            .run(&cluster)
            .expect("run 1");
        // Run 2 (resume): node 1 dies again → 2 journal-lifetime deaths.
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.node_deaths.get(&1), Some(&1));
        ClusterSweep::new(mini_suite())
            .with_policy(
                ExecutorPolicy::new()
                    .with_journal(journal.clone())
                    .with_resume(Arc::new(replay))
                    .with_halt_after(2),
            )
            .with_losses(lose_1.clone())
            .run(&cluster)
            .expect("run 2");
        // Run 3 (resume): two deaths on record → quarantined at startup.
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.node_deaths.get(&1), Some(&2));
        let out = ClusterSweep::new(mini_suite())
            .with_policy(
                ExecutorPolicy::new()
                    .with_journal(journal.clone())
                    .with_resume(Arc::new(replay)),
            )
            .with_losses(lose_1)
            .run(&cluster)
            .expect("run 3");
        assert_eq!(out.newly_quarantined, vec![1]);
        assert!(out.losses.is_empty(), "a quarantined node cannot die again");
        assert!(!out.halted);
        assert_eq!(out.rows.len(), out.total_units);
        for r in &out.rows {
            assert_ne!(r.node, 1, "unit {} scheduled on quarantined node", r.unit);
        }
        // And the quarantine itself is durable.
        let replay = Replay::from_text(&journal.text());
        assert!(replay.quarantined.contains(&1));
        let render = out.render();
        assert!(render.contains("QUARANTINED: nid00001"), "{render}");
    }

    #[test]
    fn resume_scope_mismatch_is_rejected() {
        let journal = Arc::new(MemoryJournal::default());
        let two = SimulatedCluster::titan(2, &[]);
        ClusterSweep::new(mini_suite())
            .with_policy(
                ExecutorPolicy::new()
                    .with_journal(journal.clone())
                    .with_halt_after(1),
            )
            .run(&two)
            .expect("run");
        let replay = Replay::from_text(&journal.text());
        let three = SimulatedCluster::titan(3, &[]);
        let err = ClusterSweep::new(mini_suite())
            .with_policy(ExecutorPolicy::new().with_resume(Arc::new(replay)))
            .run(&three)
            .expect_err("scope mismatch must be rejected");
        assert!(err.contains("recorded for"), "{err}");
    }

    #[test]
    fn losing_every_node_halts_instead_of_panicking() {
        let cluster = SimulatedCluster::titan(2, &[]);
        let out = ClusterSweep::new(mini_suite())
            .with_losses(vec![
                LossPlan {
                    node: 0,
                    after_units: 1,
                },
                LossPlan {
                    node: 1,
                    after_units: 1,
                },
            ])
            .run(&cluster)
            .expect("sweep runs");
        assert!(out.halted);
        assert!(out.rows.len() < out.total_units);
    }
}
