//! Harness runs: sample random nodes, validate every stack.

use crate::cluster::{Node, SimulatedCluster, SoftwareStack};
use acc_spec::Language;
use acc_validation::{Campaign, Executor, ExecutorPolicy, SuiteConfig, TestCase};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;

/// Result of validating one stack on one node.
#[derive(Debug)]
pub struct StackResult {
    /// The node id.
    pub node: u32,
    /// Stack label.
    pub stack: String,
    /// Whether the node carries a fault (known to the simulation, *not* to
    /// the harness — the harness's job is to discover it).
    pub node_faulty: bool,
    /// Pass rate over both languages, percent.
    pub pass_rate: f64,
    /// Failing feature ids.
    pub failures: Vec<String>,
    /// Features whose verdict flipped across retry attempts — the signature
    /// of a transient node fault rather than a compiler bug.
    pub flaky: Vec<String>,
}

/// One scheduled harness run over the cluster.
#[derive(Debug)]
pub struct HarnessRun {
    /// The suite used for node validation (often a fast subset).
    pub suite: Vec<TestCase>,
    /// Suite configuration.
    pub config: SuiteConfig,
    /// How many random nodes each run samples.
    pub nodes_per_run: usize,
    /// Executor policy for each stack validation (retries turn transient
    /// node faults into `Flaky` classifications instead of hard failures).
    pub policy: ExecutorPolicy,
}

/// The full report of a harness run.
#[derive(Debug)]
pub struct HarnessReport {
    /// Sampled node ids, in draw order.
    pub sampled: Vec<u32>,
    /// Per-stack results.
    pub results: Vec<StackResult>,
}

impl HarnessRun {
    /// A run configuration over the given suite.
    pub fn new(suite: Vec<TestCase>, nodes_per_run: usize) -> Self {
        HarnessRun {
            suite,
            config: SuiteConfig::default(),
            nodes_per_run,
            policy: ExecutorPolicy::default(),
        }
    }

    /// Replace the executor policy.
    pub fn with_policy(mut self, policy: ExecutorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Execute: draw `nodes_per_run` distinct random nodes (seeded — harness
    /// runs are reproducible) and validate every stack on each.
    pub fn execute(&self, cluster: &SimulatedCluster, seed: u64) -> HarnessReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..cluster.nodes.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(self.nodes_per_run.min(cluster.nodes.len()));
        let mut results = Vec::new();
        let mut sampled = Vec::new();
        for idx in ids {
            let node = &cluster.nodes[idx];
            sampled.push(node.id);
            for stack in &node.stacks {
                results.push(self.validate_stack(node, stack));
            }
        }
        HarnessReport { sampled, results }
    }

    fn validate_stack(&self, node: &Node, stack: &SoftwareStack) -> StackResult {
        let compiler = stack.compiler(node.fault);
        let campaign = Campaign::new(self.suite.clone()).with_config(self.config.clone());
        let run = Executor::new(self.policy.clone()).run_suite(&campaign, &compiler);
        let mut counted = 0usize;
        let mut passed = 0usize;
        let mut failures = Vec::new();
        let mut flaky = Vec::new();
        for lang in [Language::C, Language::Fortran] {
            for r in run.counted(lang) {
                counted += 1;
                if matches!(r.status, acc_validation::TestStatus::Flaky) {
                    flaky.push(format!("{} ({lang})", r.feature));
                }
                if r.passed() {
                    passed += 1;
                } else {
                    failures.push(format!("{} ({lang})", r.feature));
                }
            }
        }
        let pass_rate = if counted == 0 {
            100.0
        } else {
            passed as f64 / counted as f64 * 100.0
        };
        StackResult {
            node: node.id,
            stack: stack.label(),
            node_faulty: node.fault.is_some(),
            pass_rate,
            failures,
            flaky,
        }
    }
}

impl HarnessReport {
    /// Nodes whose pass rate fell below `threshold` on any stack — the list
    /// an operator would drain.
    pub fn suspect_nodes(&self, threshold: f64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .results
            .iter()
            .filter(|r| r.pass_rate < threshold)
            .map(|r| r.node)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Nodes with any flaky result — hard failures point at the compiler,
    /// flakes point at the node's hardware/interconnect, so operators triage
    /// them separately.
    pub fn flaky_nodes(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .results
            .iter()
            .filter(|r| !r.flaky.is_empty())
            .map(|r| r.node)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Render the Fig. 13-style node × stack matrix.
    pub fn matrix(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{:<8} {:<28} {:>9}  failures", "node", "stack", "pass%");
        for r in &self.results {
            let mut notes = if r.failures.is_empty() {
                "-".to_string()
            } else {
                r.failures.join(", ")
            };
            if !r.flaky.is_empty() {
                notes.push_str(&format!("  [flaky: {}]", r.flaky.join(", ")));
            }
            let _ = writeln!(
                s,
                "nid{:05} {:<28} {:>8.1}%  {}",
                r.node, r.stack, r.pass_rate, notes
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeFault;

    /// A fast three-test subset for harness unit tests.
    fn mini_suite() -> Vec<TestCase> {
        acc_testsuite::full_suite()
            .into_iter()
            .filter(|c| {
                matches!(
                    c.feature.as_str(),
                    "loop" | "parallel.async" | "update.host"
                )
            })
            .collect()
    }

    #[test]
    fn sampling_is_seeded_and_distinct() {
        let cluster = SimulatedCluster::titan(32, &[]);
        let run = HarnessRun::new(mini_suite(), 4);
        let a = run.execute(&cluster, 42);
        let b = run.execute(&cluster, 42);
        assert_eq!(a.sampled, b.sampled, "same seed, same draw");
        let c = run.execute(&cluster, 43);
        assert_ne!(a.sampled, c.sampled, "different seed, different draw");
        let mut uniq = a.sampled.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn healthy_titan_passes_everywhere() {
        let cluster = SimulatedCluster::titan(4, &[]);
        let run = HarnessRun::new(mini_suite(), 4);
        let report = run.execute(&cluster, 7);
        assert_eq!(report.results.len(), 8); // 4 nodes × 2 stacks
                                             // Cray's latest release passes these three features.
        for r in &report.results {
            assert_eq!(r.pass_rate, 100.0, "{}: {:?}", r.stack, r.failures);
        }
        assert!(report.suspect_nodes(99.0).is_empty());
    }

    #[test]
    fn faulty_node_is_discovered() {
        let faults = [(2u32, NodeFault::StaleRuntime)];
        let cluster = SimulatedCluster::titan(4, &faults);
        let run = HarnessRun::new(mini_suite(), 4);
        let report = run.execute(&cluster, 7);
        let suspects = report.suspect_nodes(99.0);
        assert_eq!(suspects, vec![2]);
        // The matrix names the failing features on the bad node.
        let matrix = report.matrix();
        assert!(matrix.contains("nid00002"), "{matrix}");
        assert!(matrix.contains("parallel.async"), "{matrix}");
    }

    /// Find a fault seed whose transient memcpy failures actually flip a
    /// verdict under retry (the draws are deterministic per seed, so this
    /// scan is itself deterministic — it just saves hard-coding a magic
    /// seed that would silently rot if the draw function ever changed).
    fn flaky_seed(cluster_of: impl Fn(NodeFault) -> SimulatedCluster) -> Option<(u64, Vec<u32>)> {
        for seed in 0..32u64 {
            let cluster = cluster_of(NodeFault::FlakyMemcpy { rate_pct: 35, seed });
            let run = HarnessRun::new(mini_suite(), 2)
                .with_policy(ExecutorPolicy::new().with_retries(4));
            let report = run.execute(&cluster, 7);
            let flaky = report.flaky_nodes();
            if !flaky.is_empty() {
                return Some((seed, flaky));
            }
        }
        None
    }

    #[test]
    fn transient_memcpy_fault_classifies_flaky_and_is_deterministic() {
        let mk = |fault| SimulatedCluster::titan(2, &[(1u32, fault)]);
        let (seed, flaky) = flaky_seed(mk).expect("some seed in 0..32 produces a flake");
        assert_eq!(flaky, vec![1], "only the faulty node flakes");
        // Same seed → byte-identical matrix, including under a parallel pool.
        let fault = NodeFault::FlakyMemcpy { rate_pct: 35, seed };
        let run1 = HarnessRun::new(mini_suite(), 2)
            .with_policy(ExecutorPolicy::new().with_retries(4));
        let run2 = HarnessRun::new(mini_suite(), 2)
            .with_policy(ExecutorPolicy::new().with_retries(4).with_jobs(4));
        let a = run1.execute(&mk(fault), 7);
        let b = run2.execute(&mk(fault), 7);
        assert_eq!(a.matrix(), b.matrix(), "fault draws are schedule-independent");
        assert!(a.matrix().contains("[flaky:"), "{}", a.matrix());
        // The healthy node never flakes.
        for r in a.results.iter().filter(|r| r.node == 0) {
            assert!(r.flaky.is_empty(), "{}: {:?}", r.stack, r.flaky);
        }
    }

    #[test]
    fn persistent_transient_fault_without_retries_is_a_hard_failure() {
        // With retries disabled the executor cannot observe a verdict flip,
        // so whatever the fault hits stays a hard failure — flake
        // classification is strictly a retry-policy feature.
        let mk = |fault| SimulatedCluster::titan(2, &[(1u32, fault)]);
        let (seed, _) = flaky_seed(mk).expect("some seed in 0..32 produces a flake");
        let fault = NodeFault::FlakyMemcpy { rate_pct: 35, seed };
        let cluster = SimulatedCluster::titan(2, &[(1u32, fault)]);
        let run = HarnessRun::new(mini_suite(), 2); // default policy: no retries
        let report = run.execute(&cluster, 7);
        assert!(report.flaky_nodes().is_empty());
    }

    #[test]
    fn cuda_and_opencl_stacks_both_validated() {
        let cluster = SimulatedCluster::titan(1, &[]);
        let run = HarnessRun::new(mini_suite(), 1);
        let report = run.execute(&cluster, 1);
        let stacks: Vec<&str> = report.results.iter().map(|r| r.stack.as_str()).collect();
        assert!(stacks.iter().any(|s| s.contains("CUDA")));
        assert!(stacks.iter().any(|s| s.contains("OpenCL")));
    }
}
