//! Harness runs: sample random nodes, validate every stack.

use crate::cluster::{Node, SimulatedCluster, SoftwareStack};
use acc_spec::Language;
use acc_validation::{Campaign, SuiteConfig, TestCase};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;

/// Result of validating one stack on one node.
#[derive(Debug)]
pub struct StackResult {
    /// The node id.
    pub node: u32,
    /// Stack label.
    pub stack: String,
    /// Whether the node carries a fault (known to the simulation, *not* to
    /// the harness — the harness's job is to discover it).
    pub node_faulty: bool,
    /// Pass rate over both languages, percent.
    pub pass_rate: f64,
    /// Failing feature ids.
    pub failures: Vec<String>,
}

/// One scheduled harness run over the cluster.
#[derive(Debug)]
pub struct HarnessRun {
    /// The suite used for node validation (often a fast subset).
    pub suite: Vec<TestCase>,
    /// Suite configuration.
    pub config: SuiteConfig,
    /// How many random nodes each run samples.
    pub nodes_per_run: usize,
}

/// The full report of a harness run.
#[derive(Debug)]
pub struct HarnessReport {
    /// Sampled node ids, in draw order.
    pub sampled: Vec<u32>,
    /// Per-stack results.
    pub results: Vec<StackResult>,
}

impl HarnessRun {
    /// A run configuration over the given suite.
    pub fn new(suite: Vec<TestCase>, nodes_per_run: usize) -> Self {
        HarnessRun {
            suite,
            config: SuiteConfig::default(),
            nodes_per_run,
        }
    }

    /// Execute: draw `nodes_per_run` distinct random nodes (seeded — harness
    /// runs are reproducible) and validate every stack on each.
    pub fn execute(&self, cluster: &SimulatedCluster, seed: u64) -> HarnessReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..cluster.nodes.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(self.nodes_per_run.min(cluster.nodes.len()));
        let mut results = Vec::new();
        let mut sampled = Vec::new();
        for idx in ids {
            let node = &cluster.nodes[idx];
            sampled.push(node.id);
            for stack in &node.stacks {
                results.push(self.validate_stack(node, stack));
            }
        }
        HarnessReport { sampled, results }
    }

    fn validate_stack(&self, node: &Node, stack: &SoftwareStack) -> StackResult {
        let compiler = stack.compiler(node.fault);
        let campaign = Campaign::new(self.suite.clone());
        let run = campaign.run_one(&compiler);
        let mut counted = 0usize;
        let mut passed = 0usize;
        let mut failures = Vec::new();
        for lang in [Language::C, Language::Fortran] {
            for r in run.counted(lang) {
                counted += 1;
                if r.passed() {
                    passed += 1;
                } else {
                    failures.push(format!("{} ({lang})", r.feature));
                }
            }
        }
        let pass_rate = if counted == 0 {
            100.0
        } else {
            passed as f64 / counted as f64 * 100.0
        };
        StackResult {
            node: node.id,
            stack: stack.label(),
            node_faulty: node.fault.is_some(),
            pass_rate,
            failures,
        }
    }
}

impl HarnessReport {
    /// Nodes whose pass rate fell below `threshold` on any stack — the list
    /// an operator would drain.
    pub fn suspect_nodes(&self, threshold: f64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .results
            .iter()
            .filter(|r| r.pass_rate < threshold)
            .map(|r| r.node)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Render the Fig. 13-style node × stack matrix.
    pub fn matrix(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{:<8} {:<28} {:>9}  failures", "node", "stack", "pass%");
        for r in &self.results {
            let _ = writeln!(
                s,
                "nid{:05} {:<28} {:>8.1}%  {}",
                r.node,
                r.stack,
                r.pass_rate,
                if r.failures.is_empty() {
                    "-".to_string()
                } else {
                    r.failures.join(", ")
                }
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeFault;

    /// A fast three-test subset for harness unit tests.
    fn mini_suite() -> Vec<TestCase> {
        acc_testsuite::full_suite()
            .into_iter()
            .filter(|c| {
                matches!(
                    c.feature.as_str(),
                    "loop" | "parallel.async" | "update.host"
                )
            })
            .collect()
    }

    #[test]
    fn sampling_is_seeded_and_distinct() {
        let cluster = SimulatedCluster::titan(32, &[]);
        let run = HarnessRun::new(mini_suite(), 4);
        let a = run.execute(&cluster, 42);
        let b = run.execute(&cluster, 42);
        assert_eq!(a.sampled, b.sampled, "same seed, same draw");
        let c = run.execute(&cluster, 43);
        assert_ne!(a.sampled, c.sampled, "different seed, different draw");
        let mut uniq = a.sampled.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn healthy_titan_passes_everywhere() {
        let cluster = SimulatedCluster::titan(4, &[]);
        let run = HarnessRun::new(mini_suite(), 4);
        let report = run.execute(&cluster, 7);
        assert_eq!(report.results.len(), 8); // 4 nodes × 2 stacks
                                             // Cray's latest release passes these three features.
        for r in &report.results {
            assert_eq!(r.pass_rate, 100.0, "{}: {:?}", r.stack, r.failures);
        }
        assert!(report.suspect_nodes(99.0).is_empty());
    }

    #[test]
    fn faulty_node_is_discovered() {
        let faults = [(2u32, NodeFault::StaleRuntime)];
        let cluster = SimulatedCluster::titan(4, &faults);
        let run = HarnessRun::new(mini_suite(), 4);
        let report = run.execute(&cluster, 7);
        let suspects = report.suspect_nodes(99.0);
        assert_eq!(suspects, vec![2]);
        // The matrix names the failing features on the bad node.
        let matrix = report.matrix();
        assert!(matrix.contains("nid00002"), "{matrix}");
        assert!(matrix.contains("parallel.async"), "{matrix}");
    }

    #[test]
    fn cuda_and_opencl_stacks_both_validated() {
        let cluster = SimulatedCluster::titan(1, &[]);
        let run = HarnessRun::new(mini_suite(), 1);
        let report = run.execute(&cluster, 1);
        let stacks: Vec<&str> = report.results.iter().map(|r| r.stack.as_str()).collect();
        assert!(stacks.iter().any(|s| s.contains("CUDA")));
        assert!(stacks.iter().any(|s| s.contains("OpenCL")));
    }
}
