//! The simulated cluster: nodes, software stacks, faults.

use acc_compiler::{VendorCompiler, VendorId};
use acc_device::{Defect, TranslationTarget};
use acc_spec::version::CompilerVersion;
use acc_spec::{ClauseKind, DirectiveKind};
use std::fmt;

/// A fault present on a node — the kind of environment breakage the Titan
/// harness exists to catch before users do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The GPU driver wedges: kernels never complete (every compute test
    /// times out).
    GpuHang,
    /// A stale runtime library on the node: asynchronous operations are
    /// broken.
    StaleRuntime,
    /// A corrupted module environment: update directives are dropped.
    BrokenModules,
    /// A marginal PCIe link / ECC-flagged memory: host↔device transfers fail
    /// intermittently at `rate_pct` percent, driven by the seeded
    /// transient-fault RNG (deterministic per seed).
    FlakyMemcpy {
        /// Percentage of transfers that fail (0–100).
        rate_pct: u8,
        /// Fault-RNG seed.
        seed: u64,
    },
    /// An overloaded interconnect: `wait` operations intermittently stall
    /// past the watchdog at `rate_pct` percent, same seeded RNG.
    AsyncStall {
        /// Percentage of waits that stall (0–100).
        rate_pct: u8,
        /// Fault-RNG seed.
        seed: u64,
    },
}

impl NodeFault {
    /// The defect the fault injects into every compile on the node.
    pub fn defect(self) -> Defect {
        match self {
            // A hang on any data clause of parallel regions approximates a
            // wedged driver without stalling the whole suite (timeouts are
            // budgeted per test).
            NodeFault::GpuHang => Defect::HangOnClause(DirectiveKind::Parallel, ClauseKind::Copy),
            NodeFault::StaleRuntime => Defect::AsyncFamilyBroken,
            NodeFault::BrokenModules => Defect::UpdateNoop,
            NodeFault::FlakyMemcpy { rate_pct, seed } => {
                Defect::TransientMemcpyFault { rate_pct, seed }
            }
            NodeFault::AsyncStall { rate_pct, seed } => {
                Defect::IntermittentAsyncStall { rate_pct, seed }
            }
        }
    }

    /// Does the fault fire intermittently (retries can flip the verdict)?
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            NodeFault::FlakyMemcpy { .. } | NodeFault::AsyncStall { .. }
        )
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            NodeFault::GpuHang => "gpu-hang",
            NodeFault::StaleRuntime => "stale-runtime",
            NodeFault::BrokenModules => "broken-modules",
            NodeFault::FlakyMemcpy { .. } => "flaky-memcpy",
            NodeFault::AsyncStall { .. } => "async-stall",
        }
    }
}

/// A scheduled node loss for sweep drills: node `node` goes offline once the
/// sweep has completed `after_units` units (cached units from a resumed
/// journal count, so a resumed sweep replays the same loss at the same
/// point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossPlan {
    /// Node that dies.
    pub node: u32,
    /// Completed-unit count at which it dies.
    pub after_units: usize,
}

impl LossPlan {
    /// Parse the CLI form `ID@AFTER` (e.g. `3@10`: node 3 dies after 10
    /// completed units).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (node, after) = s
            .split_once('@')
            .ok_or_else(|| format!("bad --lose-node `{s}` (expected ID@AFTER, e.g. 3@10)"))?;
        Ok(LossPlan {
            node: node
                .parse()
                .map_err(|_| format!("bad node id in --lose-node `{s}`"))?,
            after_units: after
                .parse()
                .map_err(|_| format!("bad unit count in --lose-node `{s}`"))?,
        })
    }
}

/// A software stack installed on a node: a vendor compiler release plus the
/// translation path it targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareStack {
    /// Compiler product line.
    pub vendor: VendorId,
    /// Release.
    pub version: CompilerVersion,
    /// OpenACC → CUDA or OpenACC → OpenCL.
    pub target: TranslationTarget,
}

impl SoftwareStack {
    /// Construct a stack.
    pub fn new(vendor: VendorId, version: CompilerVersion, target: TranslationTarget) -> Self {
        SoftwareStack {
            vendor,
            version,
            target,
        }
    }

    /// The compiler for this stack on a node with an optional fault.
    pub fn compiler(&self, fault: Option<NodeFault>) -> VendorCompiler {
        let mut c = VendorCompiler::new(self.vendor, self.version).with_target(self.target);
        if let Some(f) = fault {
            c = c.with_extra_defect(f.defect());
        }
        c
    }

    /// Display label ("Cray 8.2.0 → OpenCL").
    pub fn label(&self) -> String {
        format!(
            "{} {} → {}",
            self.vendor.name(),
            self.version,
            self.target.label()
        )
    }
}

impl fmt::Display for SoftwareStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One compute node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node identifier (Titan-style `nid`).
    pub id: u32,
    /// Installed stacks.
    pub stacks: Vec<SoftwareStack>,
    /// Fault, if the node is unhealthy.
    pub fault: Option<NodeFault>,
}

impl Node {
    /// Is the node healthy?
    pub fn healthy(&self) -> bool {
        self.fault.is_none()
    }
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct SimulatedCluster {
    /// Machine name ("titan-sim").
    pub name: String,
    /// All nodes.
    pub nodes: Vec<Node>,
}

impl SimulatedCluster {
    /// A Titan-like machine: `n` nodes, each with the Cray compiler over
    /// both CUDA and OpenCL translation paths. `faults` maps node ids to
    /// injected faults.
    pub fn titan(n: u32, faults: &[(u32, NodeFault)]) -> Self {
        let cray = VendorId::Cray.latest();
        let stacks = vec![
            SoftwareStack::new(VendorId::Cray, cray, TranslationTarget::Cuda),
            SoftwareStack::new(VendorId::Cray, cray, TranslationTarget::Opencl),
        ];
        let nodes = (0..n)
            .map(|id| Node {
                id,
                stacks: stacks.clone(),
                fault: faults.iter().find(|(f, _)| *f == id).map(|(_, f)| *f),
            })
            .collect();
        SimulatedCluster {
            name: "titan-sim".to_string(),
            nodes,
        }
    }

    /// Number of healthy nodes.
    pub fn healthy_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.healthy()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_layout() {
        let c = SimulatedCluster::titan(16, &[(3, NodeFault::GpuHang)]);
        assert_eq!(c.nodes.len(), 16);
        assert_eq!(c.healthy_count(), 15);
        assert_eq!(c.nodes[0].stacks.len(), 2);
        assert!(c.nodes[0].healthy());
        assert!(!c.nodes[3].healthy());
        assert_eq!(c.nodes[0].stacks[1].label(), "Cray 8.2.0 → OpenCL");
    }

    #[test]
    fn faulty_stack_compiler_carries_defect() {
        let c = SimulatedCluster::titan(2, &[(1, NodeFault::StaleRuntime)]);
        let stack = &c.nodes[1].stacks[0];
        let compiler = stack.compiler(c.nodes[1].fault);
        assert!(compiler
            .profile(acc_spec::Language::C)
            .has(&Defect::AsyncFamilyBroken));
        let healthy = stack.compiler(None);
        assert!(!healthy
            .profile(acc_spec::Language::C)
            .has(&Defect::AsyncFamilyBroken));
    }

    #[test]
    fn fault_labels() {
        assert_eq!(NodeFault::GpuHang.label(), "gpu-hang");
        assert_eq!(NodeFault::BrokenModules.label(), "broken-modules");
        assert_eq!(
            NodeFault::FlakyMemcpy {
                rate_pct: 25,
                seed: 7
            }
            .label(),
            "flaky-memcpy"
        );
        assert_eq!(
            NodeFault::AsyncStall {
                rate_pct: 10,
                seed: 7
            }
            .label(),
            "async-stall"
        );
    }

    #[test]
    fn transient_faults_map_to_transient_defects() {
        let f = NodeFault::FlakyMemcpy {
            rate_pct: 25,
            seed: 99,
        };
        assert!(f.is_transient());
        assert!(f.defect().is_transient());
        assert_eq!(
            f.defect(),
            Defect::TransientMemcpyFault {
                rate_pct: 25,
                seed: 99
            }
        );
        let s = NodeFault::AsyncStall {
            rate_pct: 10,
            seed: 99,
        };
        assert!(s.is_transient());
        assert_eq!(
            s.defect(),
            Defect::IntermittentAsyncStall {
                rate_pct: 10,
                seed: 99
            }
        );
        assert!(!NodeFault::GpuHang.is_transient());
        assert!(!NodeFault::GpuHang.defect().is_transient());
    }
}
