//! Historical pass-rate/latency series over the result store.
//!
//! This is the Fig. 13 tracker generalized: the paper plots testsuite
//! pass rates across compiler releases; this module folds the store's
//! epoch-stamped submissions into time-bucketed series (per vendor
//! profile, feature, tenant, or language), renders trend tables, and
//! gates on drift against a committed baseline.
//!
//! Determinism contract, inherited from [`acc_obs::series`] and
//! [`acc_obs::hist`]:
//!
//! * the series depends only on the store's *contents* — identical across
//!   `--jobs` worker counts, store compaction, and server restarts;
//! * buckets align to the absolute epoch, so different query windows
//!   agree about shared buckets;
//! * epoch-0 submissions (rows from before epochs existed) land in the
//!   window's first bucket instead of being dropped;
//! * latency histograms obey the merge law, so quantiles are identical
//!   however the per-worker histograms were combined.
//!
//! The default trend table deliberately excludes latency: wall-clock is
//! machine-dependent, and the table must be byte-identical for the same
//! store however it was produced. Latency columns are opt-in
//! ([`render_table`]'s `latency` flag), and the drift gate only compares
//! latency when the baseline recorded it.

use crate::store::ResultStore;
use acc_obs::json::{self, Json};
use acc_obs::series::{GroupBy, SeriesAgg, SeriesCounts, SeriesRow};
use acc_validation::TestStatus;
use std::fmt::Write as _;

/// Parameters of a history query.
#[derive(Debug, Clone)]
pub struct HistoryRequest {
    /// Bucket width, seconds (clamped to ≥ 1).
    pub bucket: u64,
    /// Window start epoch (inclusive).
    pub since: u64,
    /// Window end epoch (inclusive).
    pub until: u64,
    /// Grouping dimension.
    pub by: GroupBy,
    /// Tenant exact-match filter ("" = all tenants).
    pub tenant: String,
    /// Scope (compiler label) prefix filter.
    pub scope: String,
}

impl Default for HistoryRequest {
    fn default() -> Self {
        HistoryRequest {
            bucket: 3600,
            since: 0,
            until: u64::MAX,
            by: GroupBy::Profile,
            tenant: String::new(),
            scope: String::new(),
        }
    }
}

/// One-hot [`SeriesCounts`] for a verdict. Pass semantics match the
/// reports: `PASS`/`PASS*` are passes, `FLAKY` is tracked separately but
/// counts toward the pass rate, skips are excluded from rates.
pub fn classify(status: &TestStatus) -> SeriesCounts {
    let mut c = SeriesCounts::default();
    match status {
        TestStatus::Pass | TestStatus::PassInconclusive => c.pass = 1,
        TestStatus::Flaky => c.flaky = 1,
        TestStatus::Skipped(_) => c.skip = 1,
        _ => c.fail = 1,
    }
    c
}

/// Fold the store into a bucketed series. Submissions outside the epoch
/// window are excluded (bounds inclusive, matching
/// [`crate::store::QueryFilter`]); epoch-0 submissions are *always*
/// included and land in the window's first bucket. Latency histograms are
/// attached for submission-level groupings (profile, tenant) — per-case
/// dimensions (feature, language) get counts only, because latency is
/// recorded per submission and splitting it per case would double-count.
pub fn history(store: &ResultStore, req: &HistoryRequest) -> Vec<SeriesRow> {
    let mut agg = SeriesAgg::new(req.since, req.bucket);
    for sub in store.list() {
        if !req.tenant.is_empty() && sub.tenant != req.tenant {
            continue;
        }
        if !sub.scope.starts_with(&req.scope) {
            continue;
        }
        if sub.epoch != 0 && (sub.epoch < req.since || sub.epoch > req.until) {
            continue;
        }
        for case in &sub.cases {
            let key = match req.by {
                GroupBy::Profile => sub.scope.clone(),
                GroupBy::Tenant => sub.tenant.clone(),
                GroupBy::Feature => case.feature.as_str().to_string(),
                GroupBy::Language => case.language.to_string(),
            };
            agg.add(sub.epoch, &key, &classify(&case.status));
        }
        if matches!(req.by, GroupBy::Profile | GroupBy::Tenant) {
            if let Some(hist) = &sub.latency {
                let key = match req.by {
                    GroupBy::Profile => sub.scope.as_str(),
                    _ => sub.tenant.as_str(),
                };
                agg.add_latency(sub.epoch, key, hist);
            }
        }
    }
    agg.rows()
}

/// Render the series as a fixed-width trend table. Without `latency` the
/// output contains no wall-clock-derived data and is byte-identical for
/// the same store contents; with it, p50/p90/p99 columns (microseconds)
/// are appended for cells that recorded latency.
pub fn render_table(rows: &[SeriesRow], by: GroupBy, latency: bool) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<12} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "bucket", by.as_str(), "pass", "flaky", "fail", "skip", "rate%"
    );
    if latency {
        let _ = write!(out, " {:>9} {:>9} {:>9}", "p50us", "p90us", "p99us");
    }
    out.push('\n');
    for row in rows {
        let c = &row.counts;
        let _ = write!(
            out,
            "{:<12} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8.2}",
            row.bucket,
            row.key,
            c.pass,
            c.flaky,
            c.fail,
            c.skip,
            c.pass_rate()
        );
        if latency {
            if row.latency.is_empty() {
                let _ = write!(out, " {:>9} {:>9} {:>9}", "-", "-", "-");
            } else {
                let _ = write!(
                    out,
                    " {:>9} {:>9} {:>9}",
                    row.latency.quantile_us(0.5),
                    row.latency.quantile_us(0.9),
                    row.latency.quantile_us(0.99)
                );
            }
        }
        out.push('\n');
    }
    if rows.is_empty() {
        out.push_str("(no records in window)\n");
    }
    out
}

/// Serialize the *latest bucket* of a series as a drift baseline:
/// `{"by":…,"rows":[{"key":…,"pass_rate":…,"counted":…[,"p50_us":…,"p99_us":…]},…]}`.
/// Latency quantiles are included only for cells that recorded latency,
/// so a baseline captured on one machine can stay pass-rate-only and
/// remain portable.
pub fn baseline_json(rows: &[SeriesRow], by: GroupBy) -> String {
    let latest = rows.iter().map(|r| r.bucket).max();
    let mut out = String::from("{");
    let _ = write!(out, "\"by\":\"{}\",\"rows\":[", by.as_str());
    let mut first = true;
    for row in rows {
        if Some(row.bucket) != latest {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        out.push_str("\"key\":\"");
        json::escape_into(&mut out, &row.key);
        let _ = write!(
            out,
            "\",\"pass_rate\":{:.4},\"counted\":{}",
            row.counts.pass_rate(),
            row.counts.counted()
        );
        if !row.latency.is_empty() {
            let _ = write!(
                out,
                ",\"p50_us\":{},\"p99_us\":{}",
                row.latency.quantile_us(0.5),
                row.latency.quantile_us(0.99)
            );
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Tolerances for [`check_drift`].
#[derive(Debug, Clone, Copy)]
pub struct DriftTolerance {
    /// Allowed pass-rate drop, percentage points.
    pub pass_points: f64,
    /// Allowed latency-quantile increase, percent.
    pub latency_pct: f64,
}

impl Default for DriftTolerance {
    fn default() -> Self {
        DriftTolerance {
            pass_points: 0.5,
            latency_pct: 50.0,
        }
    }
}

/// Compare the latest bucket of `rows` against a committed baseline
/// (produced by [`baseline_json`]). Returns one human-readable line per
/// comparison on success; `Err` on any regression beyond tolerance, on a
/// malformed baseline, and on key mismatches in *either* direction — a
/// baseline key the latest bucket no longer covers, or a freshly covered
/// key the baseline has never seen, both with a regeneration hint.
/// Silently skipping either would let a regression ship behind a stale
/// baseline (same policy as `accvv bench --check`).
pub fn check_drift(
    rows: &[SeriesRow],
    baseline: &str,
    tol: &DriftTolerance,
) -> Result<Vec<String>, String> {
    let doc = json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let base_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing `rows` array")?;
    let latest = rows.iter().map(|r| r.bucket).max();
    let current: Vec<&SeriesRow> = rows
        .iter()
        .filter(|r| Some(r.bucket) == latest)
        .collect();
    let hint = "regenerate with `accvv history --out <baseline>`";
    let mut lines = Vec::new();
    let mut seen = Vec::new();
    for b in base_rows {
        let key = b
            .get("key")
            .and_then(Json::as_str)
            .ok_or("baseline: row missing `key`")?;
        let base_rate = match b.get("pass_rate") {
            Some(Json::Num(n)) => *n,
            _ => return Err(format!("baseline: row `{key}` missing `pass_rate`")),
        };
        seen.push(key.to_string());
        let cur = current
            .iter()
            .find(|r| r.key == key)
            .ok_or_else(|| {
                format!("baseline key `{key}` has no data in the latest bucket; {hint}")
            })?;
        let cur_rate = cur.counts.pass_rate();
        let floor = base_rate - tol.pass_points;
        lines.push(format!(
            "drift check: {key} pass rate {cur_rate:.2}% vs baseline {base_rate:.2}% \
             (floor {floor:.2}% = -{:.2}pt)",
            tol.pass_points
        ));
        if cur_rate < floor {
            return Err(format!(
                "pass-rate regression: {key} at {cur_rate:.2}%, more than {:.2} points \
                 below the {base_rate:.2}% baseline",
                tol.pass_points
            ));
        }
        for (field, q) in [("p50_us", 0.5), ("p99_us", 0.99)] {
            let Some(base_q) = b.get(field).and_then(Json::as_i64) else {
                continue; // pass-rate-only baseline: no latency gate
            };
            if cur.latency.is_empty() {
                return Err(format!(
                    "baseline has {field} for `{key}` but the latest bucket recorded \
                     no latency; {hint}"
                ));
            }
            let cur_q = cur.latency.quantile_us(q);
            let limit = base_q as f64 * (1.0 + tol.latency_pct / 100.0);
            lines.push(format!(
                "drift check: {key} {field} {cur_q}us vs baseline {base_q}us \
                 (limit {limit:.0}us = +{:.0}%)",
                tol.latency_pct
            ));
            if cur_q as f64 > limit {
                return Err(format!(
                    "latency regression: {key} {field} at {cur_q}us, more than {:.0}% \
                     over the {base_q}us baseline",
                    tol.latency_pct
                ));
            }
        }
    }
    for cur in &current {
        if !seen.contains(&cur.key) {
            return Err(format!(
                "latest bucket covers `{}` but the baseline does not; {hint}",
                cur.key
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_obs::hist::LatencyHist;
    use acc_spec::{FeatureId, Language};
    use acc_validation::vfs::{FaultFs, Vfs};
    use acc_validation::CaseResult;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn case(feature: &str, status: TestStatus) -> CaseResult {
        CaseResult {
            name: feature.to_string(),
            feature: FeatureId::new(feature.to_string()),
            language: Language::C,
            status,
            certainty: None,
            functional_source: String::new(),
            attempts: 1,
        }
    }

    fn seeded_store() -> (ResultStore, Arc<AtomicU64>) {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(11));
        let now = Arc::new(AtomicU64::new(1000));
        let clock = Arc::clone(&now);
        let store = ResultStore::open_via(fs, "h.j1")
            .unwrap()
            .with_clock(Arc::new(move || clock.load(Ordering::SeqCst)));
        (store, now)
    }

    #[test]
    fn history_buckets_by_profile_and_time() {
        let (store, now) = seeded_store();
        let a = store.begin("alice", "PGI 13.4", "text").unwrap();
        store
            .record_cases(
                a,
                &[case("loop", TestStatus::Pass), case("data.copy", TestStatus::WrongResult)],
            )
            .unwrap();
        now.store(5000, Ordering::SeqCst);
        let b = store.begin("alice", "PGI 13.4", "text").unwrap();
        store.record_cases(b, &[case("loop", TestStatus::Flaky)]).unwrap();
        let rows = history(
            &store,
            &HistoryRequest {
                bucket: 3600,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bucket, 0);
        assert_eq!((rows[0].counts.pass, rows[0].counts.fail), (1, 1));
        assert_eq!(rows[1].bucket, 3600);
        assert_eq!(rows[1].counts.flaky, 1);
        assert!((rows[1].counts.pass_rate() - 100.0).abs() < 1e-9, "flaky passes");
    }

    #[test]
    fn window_bounds_are_inclusive_and_epoch_zero_survives() {
        let (store, now) = seeded_store();
        for (epoch, feature) in [(1000u64, "a"), (2000, "b"), (3000, "c")] {
            now.store(epoch, Ordering::SeqCst);
            let id = store.begin("t", "ref", "text").unwrap();
            store.record_cases(id, &[case(feature, TestStatus::Pass)]).unwrap();
        }
        // Inclusive on both edges.
        let rows = history(
            &store,
            &HistoryRequest {
                bucket: 100,
                since: 1000,
                until: 2000,
                ..Default::default()
            },
        );
        let total: u64 = rows.iter().map(|r| r.counts.pass).sum();
        assert_eq!(total, 2, "since/until are inclusive");
        // An epoch-0 row (pre-epoch store format) joins the first bucket
        // of any window instead of being filtered out.
        let raw = store.submission(1).unwrap();
        assert_eq!(raw.epoch, 1000);
        let (store2, _) = {
            let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(12));
            let store2 = ResultStore::open_via(fs, "z.j1")
                .unwrap()
                .with_clock(Arc::new(|| 0));
            let id = store2.begin("t", "ref", "text").unwrap();
            store2.record_cases(id, &[case("old", TestStatus::Pass)]).unwrap();
            (store2, ())
        };
        let rows = history(
            &store2,
            &HistoryRequest {
                bucket: 100,
                since: 5050,
                until: 6000,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 1, "epoch-0 row not dropped");
        assert_eq!(rows[0].bucket, 5000, "first bucket of the window");
    }

    #[test]
    fn by_feature_matches_query_totals_and_skips_latency() {
        let (store, _) = seeded_store();
        let id = store.begin("t", "ref", "text").unwrap();
        store
            .record_cases(
                id,
                &[
                    case("loop", TestStatus::Pass),
                    case("loop", TestStatus::WrongResult),
                    case("data.copy", TestStatus::Skipped(None)),
                ],
            )
            .unwrap();
        let mut h = LatencyHist::new();
        h.record(100);
        store.record_latency(id, &h).unwrap();
        let rows = history(
            &store,
            &HistoryRequest {
                by: GroupBy::Feature,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 2);
        let loop_row = rows.iter().find(|r| r.key == "loop").unwrap();
        assert_eq!((loop_row.counts.pass, loop_row.counts.fail), (1, 1));
        assert!(rows.iter().all(|r| r.latency.is_empty()), "no per-case latency");
        // Agreement with the point-in-time query: same counted totals.
        let q = store.query(&crate::store::QueryFilter::default());
        let q_loop = q.iter().find(|r| r.feature == "loop").unwrap();
        assert_eq!(q_loop.total as u64, loop_row.counts.counted());
        // Profile grouping does carry the latency.
        let rows = history(&store, &HistoryRequest::default());
        assert_eq!(rows[0].latency.count(), 1);
    }

    #[test]
    fn table_is_deterministic_and_latency_is_opt_in() {
        let (store, _) = seeded_store();
        let id = store.begin("t", "ref", "text").unwrap();
        store.record_cases(id, &[case("loop", TestStatus::Pass)]).unwrap();
        let mut h = LatencyHist::new();
        h.record(1234);
        store.record_latency(id, &h).unwrap();
        let rows = history(&store, &HistoryRequest::default());
        let plain = render_table(&rows, GroupBy::Profile, false);
        assert_eq!(plain, render_table(&rows, GroupBy::Profile, false));
        assert!(!plain.contains("p50us"), "no wall-clock in default table");
        let with_lat = render_table(&rows, GroupBy::Profile, true);
        assert!(with_lat.contains("p50us"));
        assert!(render_table(&[], GroupBy::Profile, false).contains("no records"));
    }

    #[test]
    fn drift_gate_passes_within_tolerance_and_trips_beyond() {
        let (store, _) = seeded_store();
        let id = store.begin("t", "ref", "text").unwrap();
        store
            .record_cases(
                id,
                &[case("a", TestStatus::Pass), case("b", TestStatus::Pass)],
            )
            .unwrap();
        let rows = history(&store, &HistoryRequest::default());
        let baseline = baseline_json(&rows, GroupBy::Profile);
        assert!(baseline.contains("\"pass_rate\":100.0000"));
        // Same data vs its own baseline: clean.
        let lines = check_drift(&rows, &baseline, &DriftTolerance::default()).unwrap();
        assert_eq!(lines.len(), 1);
        // Inject a pass-rate regression into the store.
        let id2 = store.begin("t", "ref", "text").unwrap();
        store
            .record_cases(
                id2,
                &[case("a", TestStatus::WrongResult), case("b", TestStatus::WrongResult)],
            )
            .unwrap();
        let rows = history(&store, &HistoryRequest::default());
        let err = check_drift(&rows, &baseline, &DriftTolerance::default()).unwrap_err();
        assert!(err.contains("pass-rate regression"), "{err}");
    }

    #[test]
    fn drift_gate_compares_latency_when_baseline_has_it() {
        let (store, _) = seeded_store();
        let id = store.begin("t", "ref", "text").unwrap();
        store.record_cases(id, &[case("a", TestStatus::Pass)]).unwrap();
        let mut h = LatencyHist::new();
        h.record(1000);
        store.record_latency(id, &h).unwrap();
        let rows = history(&store, &HistoryRequest::default());
        let baseline = baseline_json(&rows, GroupBy::Profile);
        assert!(baseline.contains("p50_us"));
        let tol = DriftTolerance {
            pass_points: 0.5,
            latency_pct: 50.0,
        };
        let lines = check_drift(&rows, &baseline, &tol).unwrap();
        assert_eq!(lines.len(), 3, "rate + two quantiles");
        // A 10x latency regression in a later submission trips the gate.
        let id2 = store.begin("t", "ref", "text").unwrap();
        store.record_cases(id2, &[case("a", TestStatus::Pass)]).unwrap();
        let mut slow = LatencyHist::new();
        for _ in 0..50 {
            slow.record(10_000);
        }
        store.record_latency(id2, &slow).unwrap();
        let rows = history(&store, &HistoryRequest::default());
        let err = check_drift(&rows, &baseline, &tol).unwrap_err();
        assert!(err.contains("latency regression"), "{err}");
    }

    #[test]
    fn drift_gate_hard_errors_on_key_mismatch() {
        let (store, _) = seeded_store();
        let id = store.begin("t", "PGI 13.4", "text").unwrap();
        store.record_cases(id, &[case("a", TestStatus::Pass)]).unwrap();
        let rows = history(&store, &HistoryRequest::default());
        // Baseline knows a profile the latest bucket doesn't cover.
        let stale = r#"{"by":"profile","rows":[{"key":"CAPS 3.3.0","pass_rate":99.0,"counted":10}]}"#;
        let err = check_drift(&rows, stale, &DriftTolerance::default()).unwrap_err();
        assert!(err.contains("no data in the latest bucket"), "{err}");
        // Latest bucket covers a profile the baseline has never seen.
        let empty = r#"{"by":"profile","rows":[]}"#;
        let err = check_drift(&rows, empty, &DriftTolerance::default()).unwrap_err();
        assert!(err.contains("the baseline does not"), "{err}");
        // Malformed baseline is an error, not a silent pass.
        assert!(check_drift(&rows, "not json", &DriftTolerance::default()).is_err());
        assert!(check_drift(&rows, "{}", &DriftTolerance::default()).is_err());
    }
}
