//! Bounded multi-tenant admission queue with weighted round-robin fairness.
//!
//! The campaign server admits submissions from many tenants — interactive
//! users poking at one feature, bulk sweeps enqueueing a vendor × version
//! matrix. Two properties keep the service healthy under that mix:
//!
//! 1. **Bounded admission** — the queue has a hard capacity. A full queue
//!    rejects the push ([`PushError::Full`]) so the caller can shed load
//!    explicitly (HTTP 429 + Retry-After) instead of buffering without
//!    bound until memory or latency collapses.
//! 2. **Weighted round-robin across tenants** — each tenant has its own
//!    FIFO; the dispatcher rotates between tenants, letting a tenant pop
//!    up to `weight` items per visit. A bulk sweep that enqueued 500 items
//!    still waits its turn each cycle, so an interactive tenant's single
//!    submission pops within one rotation instead of behind the sweep.
//!
//! The queue is a plain `Mutex` + `Condvar`: pops block (with timeout) so
//! the dispatcher thread sleeps when idle, and [`FairScheduler::close`]
//! wakes every waiter for shutdown.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item was not enqueued. Carries the
    /// current depth so the caller can report it alongside the 429.
    Full(usize),
    /// The queue was closed (server draining); nothing is admitted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full(depth) => write!(f, "queue full at depth {depth}"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

struct TenantQueue<T> {
    items: VecDeque<T>,
    /// Items this tenant may still pop before the rotation moves on.
    credit: u32,
    /// Items per rotation visit (≥ 1).
    weight: u32,
}

struct SchedState<T> {
    /// Per-tenant FIFOs, keyed by tenant name. BTreeMap so iteration (and
    /// therefore tie-breaking) is deterministic.
    queues: BTreeMap<String, TenantQueue<T>>,
    /// Tenants with queued work, in rotation order (front = next to pop).
    rotation: VecDeque<String>,
    /// Total queued items across all tenants.
    len: usize,
    closed: bool,
}

/// A bounded, closable, weighted-round-robin multi-tenant queue.
pub struct FairScheduler<T> {
    state: Mutex<SchedState<T>>,
    available: Condvar,
    cap: usize,
}

impl<T> FairScheduler<T> {
    /// An empty queue admitting at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        FairScheduler {
            state: Mutex::new(SchedState {
                queues: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit one item for `tenant`, with the tenant's rotation weight
    /// (clamped to ≥ 1; the latest push's weight wins). Returns the queue
    /// depth after the push, or the shed/closed error.
    pub fn push(&self, tenant: &str, weight: u32, item: T) -> Result<usize, PushError> {
        let mut state = self.state.lock().expect("scheduler lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.len >= self.cap {
            return Err(PushError::Full(state.len));
        }
        let weight = weight.max(1);
        let q = state
            .queues
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                items: VecDeque::new(),
                credit: weight,
                weight,
            });
        q.weight = weight;
        let newly_active = q.items.is_empty();
        q.items.push_back(item);
        if newly_active {
            q.credit = weight;
        }
        if newly_active {
            state.rotation.push_back(tenant.to_string());
        }
        state.len += 1;
        let depth = state.len;
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Pop the next item under the rotation, blocking up to `timeout`.
    /// `None` on timeout or when the queue is closed and empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut state = self.state.lock().expect("scheduler lock");
        loop {
            if let Some(item) = Self::pop_locked(&mut state) {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let (next, wait) = self
                .available
                .wait_timeout(state, timeout)
                .expect("scheduler lock");
            state = next;
            if wait.timed_out() {
                return Self::pop_locked(&mut state);
            }
        }
    }

    /// Pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        Self::pop_locked(&mut self.state.lock().expect("scheduler lock"))
    }

    fn pop_locked(state: &mut SchedState<T>) -> Option<T> {
        let tenant = state.rotation.front()?.clone();
        let q = state
            .queues
            .get_mut(&tenant)
            .expect("rotation entry has a queue");
        let item = q.items.pop_front().expect("rotated tenant has items");
        state.len -= 1;
        q.credit = q.credit.saturating_sub(1);
        if q.items.is_empty() {
            // Tenant drained: leave the rotation; it re-enters (with fresh
            // credit) on its next push.
            state.rotation.pop_front();
        } else if q.credit == 0 {
            // Visit exhausted: refill and move to the back of the rotation.
            q.credit = q.weight;
            state.rotation.rotate_left(1);
        }
        Some(item)
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("scheduler lock").len
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: subsequent pushes fail with [`PushError::Closed`]
    /// and every blocked popper wakes (draining remaining items first).
    pub fn close(&self) {
        self.state.lock().expect("scheduler lock").closed = true;
        self.available.notify_all();
    }

    /// Has [`FairScheduler::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("scheduler lock").closed
    }

    /// Remove and return every queued item (rotation order), e.g. to mark
    /// never-started submissions as cancelled during a drain.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("scheduler lock");
        let mut out = Vec::with_capacity(state.len);
        while let Some(item) = Self::pop_locked(&mut state) {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_within_a_single_tenant() {
        let q = FairScheduler::new(16);
        for i in 0..5 {
            q.push("a", 1, i).unwrap();
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_interactive_item_pops_within_one_rotation_of_a_bulk_sweep() {
        let q = FairScheduler::new(64);
        for i in 0..20 {
            q.push("bulk", 1, format!("bulk{i}")).unwrap();
        }
        q.push("interactive", 1, "urgent".to_string()).unwrap();
        let popped: Vec<String> = std::iter::from_fn(|| q.try_pop()).collect();
        let pos = popped.iter().position(|s| s == "urgent").unwrap();
        assert!(
            pos <= 1,
            "interactive item must pop in the first rotation, popped at {pos}: {popped:?}"
        );
    }

    #[test]
    fn weights_control_items_per_visit() {
        let q = FairScheduler::new(64);
        for i in 0..6 {
            q.push("heavy", 3, format!("h{i}")).unwrap();
        }
        for i in 0..2 {
            q.push("light", 1, format!("l{i}")).unwrap();
        }
        let popped: Vec<String> = std::iter::from_fn(|| q.try_pop()).collect();
        // heavy pops 3 per visit, light 1: h0 h1 h2 l0 h3 h4 h5 l1.
        assert_eq!(
            popped,
            vec!["h0", "h1", "h2", "l0", "h3", "h4", "h5", "l1"]
        );
    }

    #[test]
    fn full_queue_sheds_with_depth() {
        let q = FairScheduler::new(3);
        for i in 0..3 {
            q.push("t", 1, i).unwrap();
        }
        assert_eq!(q.push("t", 1, 99), Err(PushError::Full(3)));
        assert_eq!(q.push("other", 1, 99), Err(PushError::Full(3)));
        // Popping one frees one slot.
        assert_eq!(q.try_pop(), Some(0));
        assert_eq!(q.push("t", 1, 99), Ok(3));
    }

    #[test]
    fn close_rejects_pushes_and_wakes_poppers() {
        let q = Arc::new(FairScheduler::<u32>::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "close must wake the popper promptly"
        );
        assert_eq!(q.push("t", 1, 1), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_remaining_items_before_returning_none() {
        let q = FairScheduler::new(4);
        q.push("t", 1, 7).unwrap();
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn drain_empties_everything() {
        let q = FairScheduler::new(16);
        q.push("a", 1, 1).unwrap();
        q.push("b", 1, 2).unwrap();
        q.push("a", 1, 3).unwrap();
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_timeout_returns_none_when_idle() {
        let q = FairScheduler::<u32>::new(4);
        let started = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(15)), None);
        assert!(started.elapsed() >= Duration::from_millis(10));
    }
}
