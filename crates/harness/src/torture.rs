//! Crash-torture harness: prove the durability layer, don't assume it.
//!
//! The journal, the result store, compaction, and every atomic sink write
//! all promise that a crash cannot lose acknowledged work or surface torn
//! data. This module turns each promise into a checked invariant:
//!
//! 1. **Reference run** — a fixed campaign workload (two served
//!    submissions with verdicts/reports/states, a rotated journal, a
//!    mid-campaign store compaction, telemetry/tracker sink writes) runs
//!    against a clean [`FaultFs`], recording the total number of
//!    filesystem operations it performs and which operations were
//!    *acknowledged* (returned `Ok` to the caller).
//! 2. **Crash matrix** — the same workload is replayed once per crash
//!    point: crash after operation 1, after operation 2, … after
//!    operation N. Each replay produces a durable disk image (synced
//!    bytes + a seeded surviving prefix of unsynced data and pending
//!    renames — the hostile-but-realistic view).
//! 3. **Recovery check** — the image is "rebooted" and the invariants
//!    asserted: the store reopens cleanly with only well-formed frames
//!    (no torn frame ever surfaces to a query); every acknowledged
//!    submission, verdict batch, report, state transition, and journaled
//!    case completion is still there; atomic sinks are all-or-nothing;
//!    and after resuming the interrupted campaign to completion, the
//!    final state — submissions, query rows, journal replay, sink bytes —
//!    is **identical** to the reference run's. Finally the recovered
//!    store is compacted and its query results must be byte-identical
//!    across the swap.
//!
//! Zero violations across every crash point is the acceptance bar; any
//! violation is reported with its crash point so `accvv torture --seed N`
//! reproduces it deterministically.

use acc_spec::{FeatureId, Language};
use acc_validation::journal::{self, FileJournal, JournalRecord, JournalSink, Replay};
use acc_validation::vfs::{self, atomic_write_via, FaultFs, Vfs};
use acc_validation::{CaseResult, TestStatus};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::store::{Clock, QueryFilter, QueryRow, ResultStore};
use crate::tracking::FunctionalityTracker;

/// Torture run parameters.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Seed for the fault filesystem's surviving-prefix decisions.
    pub seed: u64,
    /// Test every `stride`-th crash point (1 = every operation).
    pub stride: u64,
    /// Print per-crash-point progress to stderr.
    pub verbose: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 0xACC,
            stride: 1,
            verbose: false,
        }
    }
}

/// What a torture run covered and what it found.
#[derive(Debug)]
pub struct TortureOutcome {
    /// Filesystem operations the reference workload performs.
    pub total_ops: u64,
    /// Crash points actually replayed (`total_ops / stride`-ish).
    pub crash_points: u64,
    /// Recovery-invariant violations, each tagged with its crash point.
    /// Empty means the durability layer held everywhere.
    pub violations: Vec<String>,
}

const STORE: &str = "torture/results.j1";
const JOURNAL: &str = "torture/campaign.journal";
const TRACE: &str = "torture/trace.json";
const METRICS: &str = "torture/metrics.prom";
const TRACKER: &str = "torture/tracker.tsv";
const ROTATE_BYTES: u64 = 300;
const EPOCH: u64 = 1_700_000_000;

fn fixed_clock() -> Clock {
    Arc::new(|| EPOCH)
}

struct SubSpec {
    tenant: &'static str,
    scope: &'static str,
    format: &'static str,
}

const SUBS: [SubSpec; 2] = [
    SubSpec {
        tenant: "alice",
        scope: "PGI 13.4",
        format: "text",
    },
    SubSpec {
        tenant: "bob",
        scope: "CAPS 3.3.0",
        format: "text",
    },
];

fn case(name: String, feature: &str, status: TestStatus) -> CaseResult {
    CaseResult {
        name,
        feature: FeatureId::new(feature.to_string()),
        language: Language::C,
        status,
        certainty: None,
        functional_source: "int main(void) {\n\treturn 1;\n}\n".to_string(),
        attempts: 1,
    }
}

fn sub_cases(scope: &str) -> Vec<CaseResult> {
    vec![
        case(format!("{scope}/loop"), "loop", TestStatus::Pass),
        case(format!("{scope}/copy"), "data.copy", TestStatus::WrongResult),
        case(
            format!("{scope}/host"),
            "update.host",
            // Deliberately non-ASCII: the skip reason must survive every
            // crash point byte-for-byte.
            TestStatus::Skipped(Some("gerät überhitzt — 設備故障 💥".to_string())),
        ),
    ]
}

fn sub_report(scope: &str) -> String {
    format!("REPORT {scope}\npassed 1 of 2 counted\nskips: 1\n")
}

const JOURNAL_CASES: [&str; 3] = ["jl-alpha", "jl-beta", "jl-gamma"];

fn journal_case(name: &str) -> CaseResult {
    case(name.to_string(), "loop", TestStatus::Pass)
}

fn journal_meta() -> JournalRecord {
    JournalRecord::Meta {
        scope: "torture ref".to_string(),
        total_jobs: JOURNAL_CASES.len(),
        languages: "C".to_string(),
    }
}

fn trace_content() -> &'static str {
    "{\"traceEvents\":[{\"name\":\"torture\",\"ph\":\"X\",\"ts\":0,\"dur\":42}]}\n"
}

fn metrics_content() -> &'static str {
    "accvv_cases_total 6\naccvv_torture_runs_total 1\n"
}

fn tracker_v1() -> &'static str {
    "PGI 13.4\tE1\t50\n"
}

fn tracker_v2() -> &'static str {
    "PGI 13.4\tE1\t50\nPGI 13.4\tE2\t75\n"
}

/// Full versions each sink path may legitimately contain after a crash —
/// an atomic write leaves one of these or nothing, never a blend.
fn sink_versions() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (TRACE, vec![trace_content()]),
        (METRICS, vec![metrics_content()]),
        (TRACKER, vec![tracker_v1(), tracker_v2()]),
    ]
}

/// Everything the workload was *acknowledged* for before the crash. The
/// recovery invariants are phrased entirely in terms of this log: what was
/// acked must survive; what wasn't may or may not.
#[derive(Default)]
struct Acks {
    /// scope → acked submission id.
    subs: BTreeMap<&'static str, u64>,
    /// id → acked verdict count.
    cases: BTreeMap<u64, usize>,
    /// id → acked report text.
    reports: BTreeMap<u64, String>,
    /// id → last acked lifecycle state.
    states: BTreeMap<u64, &'static str>,
    /// Journaled case completions acked (fsynced) by the journal.
    journal_done: BTreeSet<&'static str>,
    /// sink path → last acked full contents.
    sinks: BTreeMap<&'static str, &'static str>,
    /// Violations observable during the run itself (compaction changed
    /// query results, for instance).
    inline: Vec<String>,
}

/// Append one record and surface the journal's retained error as a
/// result, so the workload knows whether the record was acknowledged.
fn jappend(journal: &FileJournal, record: &JournalRecord) -> io::Result<()> {
    journal.append(record);
    match journal.take_error() {
        None => Ok(()),
        Some(e) => Err(io::Error::other(e)),
    }
}

fn run_submission(store: &ResultStore, spec: &SubSpec, acks: &mut Acks) -> io::Result<()> {
    let id = store.begin(spec.tenant, spec.scope, spec.format)?;
    acks.subs.insert(spec.scope, id);
    acks.states.insert(id, "queued");
    store.set_state(id, "running", "")?;
    acks.states.insert(id, "running");
    let cases = sub_cases(spec.scope);
    store.record_cases(id, &cases)?;
    acks.cases.insert(id, cases.len());
    let report = sub_report(spec.scope);
    store.record_report(id, &report)?;
    acks.reports.insert(id, report);
    store.set_state(id, "done", "")?;
    acks.states.insert(id, "done");
    Ok(())
}

/// The reference workload: every durability surface, in a fixed order.
/// Stops at the first error (after a simulated crash, everything errors).
fn run_workload(vfs: &Arc<dyn Vfs>, acks: &mut Acks) -> io::Result<()> {
    vfs.create_dir_all(Path::new("torture"))?;
    let store = ResultStore::open_via(Arc::clone(vfs), STORE)?.with_clock(fixed_clock());
    let journal =
        FileJournal::create_via(Arc::clone(vfs), JOURNAL)?.with_rotation(ROTATE_BYTES);
    jappend(&journal, &journal_meta())?;

    // Submission A: full lifecycle.
    run_submission(&store, &SUBS[0], acks)?;

    // Journaled campaign with segment rotation.
    for name in JOURNAL_CASES {
        jappend(
            &journal,
            &JournalRecord::AttemptStart {
                name: name.to_string(),
                language: Language::C,
                attempt: 0,
            },
        )?;
        jappend(
            &journal,
            &JournalRecord::CaseDone {
                result: journal_case(name),
                node: None,
                duration_ms: 5,
            },
        )?;
        acks.journal_done.insert(name);
    }

    // Mid-campaign compaction: queries must not move.
    let before = store.query(&QueryFilter::default());
    store.compact()?;
    if store.query(&QueryFilter::default()) != before {
        acks.inline
            .push("compaction changed query results mid-run".to_string());
    }

    // Submission B lands in the new generation.
    run_submission(&store, &SUBS[1], acks)?;

    // Sinks: telemetry trace + metrics, tracker saved twice.
    atomic_write_via(vfs.as_ref(), TRACE, trace_content().as_bytes())?;
    acks.sinks.insert(TRACE, trace_content());
    atomic_write_via(vfs.as_ref(), METRICS, metrics_content().as_bytes())?;
    acks.sinks.insert(METRICS, metrics_content());
    let mut tracker = FunctionalityTracker::new();
    tracker.record("PGI 13.4", "E1", 50.0);
    tracker.save_via(vfs.as_ref(), TRACKER)?;
    acks.sinks.insert(TRACKER, tracker_v1());
    tracker.record("PGI 13.4", "E2", 75.0);
    tracker.save_via(vfs.as_ref(), TRACKER)?;
    acks.sinks.insert(TRACKER, tracker_v2());
    Ok(())
}

/// Bring an interrupted campaign to the reference end state: finish every
/// submission the recovered store is missing pieces of, re-journal every
/// case replay doesn't show complete, rewrite all sinks, then compact and
/// assert query equivalence across the swap.
fn resume(vfs: &Arc<dyn Vfs>, violations: &mut Vec<String>) -> io::Result<()> {
    vfs.create_dir_all(Path::new("torture"))?;
    let store = ResultStore::open_via(Arc::clone(vfs), STORE)?.with_clock(fixed_clock());
    for spec in &SUBS {
        let id = match store.list().into_iter().find(|s| s.scope == spec.scope) {
            Some(sub) => sub.id,
            None => store.begin(spec.tenant, spec.scope, spec.format)?,
        };
        let have = store.submission(id).expect("just resolved");
        let want = sub_cases(spec.scope);
        if have.cases.len() < want.len() {
            store.record_cases(id, &want[have.cases.len()..])?;
        }
        if have.report.is_none() {
            store.record_report(id, &sub_report(spec.scope))?;
        }
        if have.state != "done" {
            store.set_state(id, "done", "")?;
        }
    }

    let (replay, journal) = match Replay::open_resume_via(Arc::clone(vfs), JOURNAL) {
        Ok(pair) => pair,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let journal = FileJournal::create_via(Arc::clone(vfs), JOURNAL)?;
            (Replay::default(), journal)
        }
        Err(e) => return Err(e),
    };
    let journal = journal.with_rotation(ROTATE_BYTES);
    if replay.meta.is_none() {
        jappend(&journal, &journal_meta())?;
    }
    for name in JOURNAL_CASES {
        if replay
            .completed
            .contains_key(&(name.to_string(), Language::C))
        {
            continue;
        }
        jappend(
            &journal,
            &JournalRecord::AttemptStart {
                name: name.to_string(),
                language: Language::C,
                attempt: 0,
            },
        )?;
        jappend(
            &journal,
            &JournalRecord::CaseDone {
                result: journal_case(name),
                node: None,
                duration_ms: 5,
            },
        )?;
    }

    // Sinks are idempotent atomic writes: bring them all to final form.
    atomic_write_via(vfs.as_ref(), TRACE, trace_content().as_bytes())?;
    atomic_write_via(vfs.as_ref(), METRICS, metrics_content().as_bytes())?;
    let mut tracker = FunctionalityTracker::new();
    tracker.record("PGI 13.4", "E1", 50.0);
    tracker.record("PGI 13.4", "E2", 75.0);
    tracker.save_via(vfs.as_ref(), TRACKER)?;

    // The compaction-equivalence invariant, asserted on recovered state.
    let before = store.query(&QueryFilter::default());
    store.compact()?;
    if store.query(&QueryFilter::default()) != before {
        violations.push("post-recovery compaction changed query results".to_string());
    }
    Ok(())
}

/// The observable end state a run converges to; crash + recovery + resume
/// must land exactly here.
#[derive(Debug, PartialEq)]
struct FinalState {
    submissions: String,
    query: Vec<QueryRow>,
    journal_completed: Vec<(String, String)>,
    sinks: Vec<(&'static str, Option<Vec<u8>>)>,
}

fn snapshot(vfs: &Arc<dyn Vfs>) -> io::Result<FinalState> {
    let store = ResultStore::open_via(Arc::clone(vfs), STORE)?;
    let submissions = format!("{:?}", store.list());
    let query = store.query(&QueryFilter::default());
    let replay = Replay::load_via(vfs.as_ref(), JOURNAL)?;
    let mut journal_completed: Vec<(String, String)> = replay
        .completed
        .iter()
        .map(|((name, _), c)| (name.clone(), journal::encode_status(&c.result.status)))
        .collect();
    journal_completed.sort();
    let mut sinks = Vec::new();
    for (path, _) in sink_versions() {
        let bytes = vfs.read(Path::new(path)).ok();
        sinks.push((path, bytes));
    }
    Ok(FinalState {
        submissions,
        query,
        journal_completed,
        sinks,
    })
}

fn state_rank(state: &str) -> i32 {
    match state {
        "queued" => 0,
        "running" => 1,
        "done" => 2,
        _ => -1,
    }
}

/// Check every well-formed-frame invariant of the recovered store file:
/// after open (which compacts poisoned tails away), each line must be a
/// checksum-valid `J1` frame — a torn frame must never survive to be
/// queried.
fn check_frames(vfs: &dyn Vfs, path: &Path) -> Option<String> {
    let text = match vfs::read_to_string(vfs, path) {
        Ok(t) => t,
        Err(e) => return Some(format!("recovered store unreadable: {e}")),
    };
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let ok = line
            .strip_prefix(journal::MAGIC)
            .and_then(|r| r.strip_prefix(' '))
            .and_then(|r| r.split_once(' '))
            .and_then(|(crc, payload)| {
                u64::from_str_radix(crc, 16)
                    .ok()
                    .map(|crc| crc == journal::checksum(payload))
            })
            .unwrap_or(false);
        if !ok {
            return Some(format!("line {} of recovered store is not a valid frame", i + 1));
        }
    }
    None
}

/// Verify all recovery invariants for one crash image; returns violations.
fn verify_image(
    image: &acc_validation::DiskImage,
    seed: u64,
    acks: &Acks,
    reference: &FinalState,
) -> Vec<String> {
    let mut violations = Vec::new();
    let fs = FaultFs::from_image(image, seed);
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());

    // I1: the store reopens cleanly and surfaces only well-formed frames.
    {
        let store = match ResultStore::open_via(Arc::clone(&vfs), STORE) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("store failed to reopen: {e}"));
                return violations;
            }
        };
        if let Some(v) = check_frames(vfs.as_ref(), &store.current_data_path()) {
            violations.push(v);
        }

        // I2: acked store facts survived.
        for (scope, id) in &acks.subs {
            let Some(sub) = store.submission(*id) else {
                violations.push(format!("acked submission {id} ({scope}) lost"));
                continue;
            };
            if sub.scope != *scope {
                violations.push(format!("submission {id} scope {:?} != {scope:?}", sub.scope));
            }
            if sub.epoch != EPOCH {
                violations.push(format!("submission {id} epoch {} lost", sub.epoch));
            }
            let want = sub_cases(scope);
            let acked = acks.cases.get(id).copied().unwrap_or(0);
            if sub.cases.len() < acked {
                violations.push(format!(
                    "submission {id}: {acked} verdicts acked, {} recovered",
                    sub.cases.len()
                ));
            } else if sub.cases[..acked.min(sub.cases.len())] != want[..acked] {
                violations.push(format!("submission {id}: acked verdicts differ"));
            }
            if let Some(report) = acks.reports.get(id) {
                if sub.report.as_deref() != Some(report.as_str()) {
                    violations.push(format!("submission {id}: acked report lost or differs"));
                }
            }
            if let Some(state) = acks.states.get(id) {
                if state_rank(&sub.state) < state_rank(state) {
                    violations.push(format!(
                        "submission {id}: state regressed to {:?} after acked {state:?}",
                        sub.state
                    ));
                }
            }
        }
    }

    // I3: every fsync-acked journaled verdict replays.
    if !acks.journal_done.is_empty() {
        match Replay::load_via(vfs.as_ref(), JOURNAL) {
            Err(e) => violations.push(format!("journal with acked verdicts unreadable: {e}")),
            Ok(replay) => {
                for name in &acks.journal_done {
                    if !replay
                        .completed
                        .contains_key(&(name.to_string(), Language::C))
                    {
                        violations.push(format!("acked journal verdict {name} lost"));
                    }
                }
            }
        }
    }

    // I4: atomic sinks are all-or-nothing, and never roll back past an ack.
    for (path, versions) in sink_versions() {
        let content = fs.durable_contents(path);
        let acked = acks.sinks.get(path);
        match &content {
            None => {
                if acked.is_some() {
                    violations.push(format!("acked sink {path} missing"));
                }
            }
            Some(bytes) => {
                let found = versions.iter().position(|v| v.as_bytes() == bytes.as_slice());
                match found {
                    None => violations.push(format!(
                        "sink {path} holds a torn write ({} bytes)",
                        bytes.len()
                    )),
                    Some(idx) => {
                        if let Some(acked) = acked {
                            let acked_idx = versions
                                .iter()
                                .position(|v| v == acked)
                                .expect("acked version is a known version");
                            if idx < acked_idx {
                                violations
                                    .push(format!("sink {path} rolled back past an acked write"));
                            }
                        }
                    }
                }
            }
        }
    }

    // I5: resuming converges to the reference end state exactly.
    if let Err(e) = resume(&vfs, &mut violations) {
        violations.push(format!("resume failed: {e}"));
        return violations;
    }
    match snapshot(&vfs) {
        Err(e) => violations.push(format!("post-resume snapshot failed: {e}")),
        Ok(state) => {
            if state.submissions != reference.submissions {
                violations.push("resumed submissions differ from reference".to_string());
            }
            if state.query != reference.query {
                violations.push("resumed query rows differ from reference".to_string());
            }
            if state.journal_completed != reference.journal_completed {
                violations.push("resumed journal replay differs from reference".to_string());
            }
            if state.sinks != reference.sinks {
                violations.push("resumed sink bytes differ from reference".to_string());
            }
        }
    }
    violations
}

/// Run the full crash-point matrix. See the module docs for the protocol.
pub fn run_torture(config: &TortureConfig) -> io::Result<TortureOutcome> {
    let stride = config.stride.max(1);

    // Reference run on a clean disk: must complete with zero errors.
    let ref_fs = FaultFs::new(config.seed);
    let ref_vfs: Arc<dyn Vfs> = Arc::new(ref_fs.clone());
    let mut ref_acks = Acks::default();
    run_workload(&ref_vfs, &mut ref_acks)?;
    if !ref_acks.inline.is_empty() {
        return Err(io::Error::other(format!(
            "reference run violated invariants: {}",
            ref_acks.inline.join("; ")
        )));
    }
    let total_ops = ref_fs.op_count();

    // Reference end state, observed the same way every crash point is:
    // reboot from the settled image, resume (a no-op completion pass plus
    // the final compaction), snapshot.
    let ref_image = ref_fs.settled_image();
    let ref_boot = FaultFs::from_image(&ref_image, config.seed);
    let ref_boot_vfs: Arc<dyn Vfs> = Arc::new(ref_boot);
    let mut ref_violations = Vec::new();
    resume(&ref_boot_vfs, &mut ref_violations)?;
    if !ref_violations.is_empty() {
        return Err(io::Error::other(format!(
            "reference resume violated invariants: {}",
            ref_violations.join("; ")
        )));
    }
    let reference = snapshot(&ref_boot_vfs)?;

    let mut violations = Vec::new();
    let mut crash_points = 0u64;
    let mut k = 1;
    while k <= total_ops {
        crash_points += 1;
        let fs = FaultFs::new(config.seed).with_crash_after(k);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let mut acks = Acks::default();
        let _ = run_workload(&vfs, &mut acks); // errors expected at the crash
        violations.extend(acks.inline.iter().map(|v| format!("crash@{k}: {v}")));
        // If the crash never fired (k == total_ops), the settled image is
        // the honest equivalent.
        let image = fs.crash_image().unwrap_or_else(|| fs.settled_image());
        let found = verify_image(&image, config.seed, &acks, &reference);
        if config.verbose && !found.is_empty() {
            eprintln!("torture: crash@{k}: {} violation(s)", found.len());
        }
        violations.extend(found.into_iter().map(|v| format!("crash@{k}: {v}")));
        k += stride;
    }

    Ok(TortureOutcome {
        total_ops,
        crash_points,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_workload_completes_cleanly() {
        let fs = FaultFs::new(7);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let mut acks = Acks::default();
        run_workload(&vfs, &mut acks).expect("clean disk, clean run");
        assert_eq!(acks.subs.len(), 2);
        assert_eq!(acks.journal_done.len(), 3);
        assert_eq!(acks.sinks.len(), 3);
        assert!(acks.inline.is_empty());
        assert!(fs.op_count() > 50, "workload exercises a real op schedule");
    }

    #[test]
    fn strided_torture_finds_no_violations() {
        // The full matrix runs in `tests/crash_torture.rs` and CI; a
        // stride keeps the unit test fast while still crossing every
        // workload phase.
        let outcome = run_torture(&TortureConfig {
            seed: 11,
            stride: 7,
            verbose: false,
        })
        .expect("torture harness runs");
        assert!(outcome.total_ops > 0);
        assert!(outcome.crash_points > 10);
        assert_eq!(
            outcome.violations,
            Vec::<String>::new(),
            "durability invariants must hold at every crash point"
        );
    }
}
