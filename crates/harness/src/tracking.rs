//! Functionality tracking over time: "to track functionality improvements
//! or degradation over time" (§VII).

use std::collections::BTreeMap;
use std::fmt;

/// A change in a tracked series between consecutive observations.
#[derive(Debug, Clone, PartialEq)]
pub enum Drift {
    /// Pass rate increased (functionality improvement — e.g. a compiler
    /// upgrade fixed bugs).
    Improvement {
        /// Series key.
        key: String,
        /// Previous and new rates.
        from: f64,
        /// New rate.
        to: f64,
    },
    /// Pass rate decreased (degradation — a regression or a node going bad).
    Degradation {
        /// Series key.
        key: String,
        /// Previous rate.
        from: f64,
        /// New rate.
        to: f64,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::Improvement { key, from, to } => {
                write!(f, "IMPROVED  {key}: {from:.1}% → {to:.1}%")
            }
            Drift::Degradation { key, from, to } => {
                write!(f, "DEGRADED  {key}: {from:.1}% → {to:.1}%")
            }
        }
    }
}

/// A time series of pass rates per key (a key is typically a stack label or
/// a node/stack pair).
#[derive(Debug, Default)]
pub struct FunctionalityTracker {
    series: BTreeMap<String, Vec<(String, f64)>>,
}

impl FunctionalityTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation. `when` is a caller-supplied label (a date, a
    /// software release, a run id).
    pub fn record(&mut self, key: impl Into<String>, when: impl Into<String>, pass_rate: f64) {
        self.series
            .entry(key.into())
            .or_default()
            .push((when.into(), pass_rate));
    }

    /// Drifts produced by the latest observation of each series (empty when
    /// a series has fewer than two points or is stable).
    pub fn latest_drifts(&self) -> Vec<Drift> {
        let mut out = Vec::new();
        for (key, points) in &self.series {
            if points.len() < 2 {
                continue;
            }
            let from = points[points.len() - 2].1;
            let to = points[points.len() - 1].1;
            if to > from {
                out.push(Drift::Improvement {
                    key: key.clone(),
                    from,
                    to,
                });
            } else if to < from {
                out.push(Drift::Degradation {
                    key: key.clone(),
                    from,
                    to,
                });
            }
        }
        out
    }

    /// Full history of a series.
    pub fn history(&self, key: &str) -> Option<&[(String, f64)]> {
        self.series.get(key).map(|v| v.as_slice())
    }

    /// All tracked keys.
    pub fn keys(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Load a tracker persisted by [`FunctionalityTracker::save`]. Lines
    /// are `key\twhen\trate`; malformed lines are skipped (a torn write
    /// costs at most the tail observation, never the whole history).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Self::load_via(&acc_validation::RealFs, path)
    }

    /// [`FunctionalityTracker::load`] on an injected filesystem.
    pub fn load_via(
        vfs: &dyn acc_validation::Vfs,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let text = acc_validation::vfs::read_lossy(vfs, path.as_ref())?;
        let mut t = FunctionalityTracker::new();
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let (Some(key), Some(when), Some(rate)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Ok(rate) = rate.parse::<f64>() else {
                continue;
            };
            t.record(key, when, rate);
        }
        Ok(t)
    }

    /// Persist the tracker atomically (temp file + rename + directory
    /// fsync) so a crash mid-save can never corrupt the on-disk history.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.save_via(&acc_validation::RealFs, path)
    }

    /// [`FunctionalityTracker::save`] on an injected filesystem.
    pub fn save_via(
        &self,
        vfs: &dyn acc_validation::Vfs,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let mut out = String::new();
        for (key, points) in &self.series {
            for (when, rate) in points {
                use std::fmt::Write as _;
                let _ = writeln!(out, "{key}\t{when}\t{rate}");
            }
        }
        acc_validation::atomic_write_via(vfs, path, out.as_bytes())
    }

    /// Render the series as an ASCII trend table.
    pub fn trend_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (key, points) in &self.series {
            let _ = writeln!(s, "{key}:");
            for (when, rate) in points {
                let bars = "#".repeat((rate / 5.0).round() as usize);
                let _ = writeln!(s, "  {when:<12} {rate:>6.1}% {bars}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_detection() {
        let mut t = FunctionalityTracker::new();
        t.record("cray-cuda", "week1", 80.0);
        t.record("cray-cuda", "week2", 95.0);
        t.record("cray-opencl", "week1", 95.0);
        t.record("cray-opencl", "week2", 70.0);
        t.record("stable", "week1", 90.0);
        t.record("stable", "week2", 90.0);
        let drifts = t.latest_drifts();
        assert_eq!(drifts.len(), 2);
        assert!(matches!(
            &drifts[0],
            Drift::Improvement { key, from, to } if key == "cray-cuda" && *from == 80.0 && *to == 95.0
        ));
        assert!(matches!(
            &drifts[1],
            Drift::Degradation { key, .. } if key == "cray-opencl"
        ));
    }

    #[test]
    fn single_point_series_produce_no_drift() {
        let mut t = FunctionalityTracker::new();
        t.record("x", "only", 50.0);
        assert!(t.latest_drifts().is_empty());
    }

    #[test]
    fn history_and_keys() {
        let mut t = FunctionalityTracker::new();
        t.record("a", "1", 10.0);
        t.record("a", "2", 20.0);
        assert_eq!(t.history("a").unwrap().len(), 2);
        assert!(t.history("missing").is_none());
        assert_eq!(t.keys(), vec!["a"]);
    }

    #[test]
    fn trend_table_renders() {
        let mut t = FunctionalityTracker::new();
        t.record("a", "w1", 100.0);
        let table = t.trend_table();
        assert!(table.contains("a:"));
        assert!(table.contains("100.0%"));
        assert!(table.contains("####################"));
    }

    #[test]
    fn drift_display() {
        let d = Drift::Degradation {
            key: "k".into(),
            from: 90.0,
            to: 80.0,
        };
        assert_eq!(d.to_string(), "DEGRADED  k: 90.0% → 80.0%");
    }
}
