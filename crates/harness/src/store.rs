//! Indexed, append-only on-disk result store for served campaigns.
//!
//! Every submission the campaign server runs lands here: a submission
//! header, one row per case verdict, the rendered report verbatim, and a
//! state record per lifecycle transition (`queued` → `running` → `done` /
//! `degraded` / `cancelled` / `interrupted`). The file reuses the
//! validation journal's `J1` checksummed-frame format — same magic, same
//! FNV-1a checksum, same field escaping (via the public codecs in
//! [`acc_validation::journal`]) — so the store inherits the journal's
//! crash story: an append-only file whose torn or corrupted tail is
//! detected and compacted away on open, with everything before the damage
//! trusted.
//!
//! Record kinds (tab-separated payloads inside the `J1` frame):
//!
//! ```text
//! sub   <id> <tenant> <scope> <format> <epoch-seconds>
//! case  <id> <name> <feature> <lang> <status> <certainty> <attempts> <source>
//! rep   <id> <report-text>
//! lat   <id> <latency-histogram>
//! state <id> <state> <detail>
//! ```
//!
//! (`sub` rows written before the epoch field existed have four fields and
//! decode with epoch 0 — the store is backward compatible with its own
//! history. `lat` rows carry a [`LatencyHist`] in its canonical encoding;
//! multiple rows for one submission merge, and compaction re-encodes the
//! merged histogram — byte-identical because the encoding is canonical.)
//!
//! The in-memory index (id → submission) is rebuilt by a full scan on
//! open; queries aggregate pass rates by (scope, language, feature) across
//! every stored verdict, with optional `since`/`until` epoch bounds.
//!
//! ## Durability
//!
//! All I/O goes through the [`acc_validation::vfs`] seam so the
//! crash-torture harness can run the store against a hostile disk. Every
//! mutation that acknowledges work to a caller — [`ResultStore::begin`]
//! (the id behind a served 202), [`ResultStore::record_cases`],
//! [`ResultStore::record_report`], [`ResultStore::set_state`] — fsyncs
//! before returning, so an acknowledged record can never be lost to a
//! crash.
//!
//! ## Generations and compaction
//!
//! A long-lived store accumulates dead bytes: superseded state rows, and
//! eventually submissions nobody queries. [`ResultStore::compact`]
//! rewrites the live index into a fresh *generation* file and swaps a
//! one-line generation pointer (`<path>.gen`) over to it with the same
//! temp+rename+dir-fsync discipline as every other atomic write:
//!
//! 1. write all live records to `<path>.g<G+1>`, fsync it, fsync the dir;
//! 2. atomically rewrite the pointer file to `G+1` (the commit point);
//! 3. only then unlink the old generation.
//!
//! A crash before step 2's rename leaves the pointer at `G`: the old
//! generation is still the store, and the half-built `G+1` file is
//! garbage-collected on the next open. A crash after leaves the pointer at
//! `G+1`: the new generation is the store, and the old file is GC'd on the
//! next open. There is no crash point at which both or neither are live.

use acc_obs::hist::LatencyHist;
use acc_validation::journal::{self, checksum, MAGIC};
use acc_validation::vfs::{self, atomic_write_via, RealFs, Vfs, VfsFile};
use acc_spec::FeatureId;
use acc_validation::CaseResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// One stored submission, reassembled from its records.
#[derive(Debug, Clone)]
pub struct StoredSubmission {
    /// Store-assigned submission id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// What was validated (compiler label).
    pub scope: String,
    /// Report format the submission asked for (`text`/`csv`/`html`).
    pub format: String,
    /// Wall-clock submission time, seconds since the Unix epoch (0 for
    /// rows written before the field existed).
    pub epoch: u64,
    /// Latest lifecycle state.
    pub state: String,
    /// Human detail for the latest state (degradation reason, drain note).
    pub detail: String,
    /// Per-case verdicts.
    pub cases: Vec<CaseResult>,
    /// The rendered report, once the submission completed.
    pub report: Option<String>,
    /// Merged per-case wall-latency histogram, when latency was recorded.
    pub latency: Option<LatencyHist>,
}

/// One aggregated pass-rate row from [`ResultStore::query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Compiler label the verdicts were recorded under.
    pub scope: String,
    /// Language variant.
    pub language: String,
    /// Feature id.
    pub feature: String,
    /// Counted verdicts (skips excluded).
    pub total: usize,
    /// Passing verdicts among `total`.
    pub passed: usize,
}

impl QueryRow {
    /// Pass rate in percent (0 when nothing counted).
    pub fn pass_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passed as f64 / self.total as f64 * 100.0
        }
    }
}

/// Prefix filters for [`ResultStore::query`]. Empty strings match all;
/// the epoch bounds default to all of time.
#[derive(Debug, Clone)]
pub struct QueryFilter {
    /// Scope (compiler label) prefix, e.g. `"PGI"` or `"PGI 13"`.
    pub scope: String,
    /// Feature id prefix, e.g. `"data."`.
    pub feature: String,
    /// Language name prefix, e.g. `"C"` or `"Fortran"`.
    pub language: String,
    /// Tenant exact match ("" = all tenants).
    pub tenant: String,
    /// Only submissions recorded at or after this epoch second.
    pub since: u64,
    /// Only submissions recorded at or before this epoch second.
    pub until: u64,
}

impl Default for QueryFilter {
    fn default() -> Self {
        QueryFilter {
            scope: String::new(),
            feature: String::new(),
            language: String::new(),
            tenant: String::new(),
            since: 0,
            until: u64::MAX,
        }
    }
}

/// What a [`ResultStore::compact`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Generation the store now reads and appends.
    pub generation: u64,
    /// Byte size of the superseded generation file.
    pub old_bytes: u64,
    /// Byte size of the freshly written generation file.
    pub new_bytes: u64,
    /// Live submissions carried over.
    pub live_submissions: usize,
}

/// Wall clock used to stamp submissions; injectable so torture runs and
/// tests are deterministic.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

fn system_clock() -> Clock {
    Arc::new(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs())
    })
}

struct StoreInner {
    file: Box<dyn VfsFile>,
    index: BTreeMap<u64, StoredSubmission>,
    next_id: u64,
    generation: u64,
}

/// The append-only, indexed result store.
pub struct ResultStore {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    clock: Clock,
    inner: Mutex<StoreInner>,
}

fn frame(payload: &str) -> String {
    format!("{MAGIC} {:016x} {payload}\n", checksum(payload))
}

fn encode_sub(id: u64, tenant: &str, scope: &str, format: &str, epoch: u64) -> String {
    format!(
        "sub\t{id}\t{}\t{}\t{}\t{epoch}",
        journal::escape(tenant),
        journal::escape(scope),
        journal::escape(format),
    )
}

fn encode_case(id: u64, r: &CaseResult) -> String {
    format!(
        "case\t{id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        journal::escape(&r.name),
        journal::escape(r.feature.as_str()),
        journal::encode_language(r.language),
        journal::escape(&journal::encode_status(&r.status)),
        journal::encode_certainty(&r.certainty),
        r.attempts,
        journal::escape(&r.functional_source),
    )
}

fn encode_lat(id: u64, hist: &LatencyHist) -> String {
    // The histogram encoding uses only digits and `;:,` — already inside
    // the J1-safe alphabet, no escaping needed (and `unescape` of it is
    // the identity, so old readers that did escape would still agree).
    format!("lat\t{id}\t{}", hist.encode())
}

fn encode_state(id: u64, state: &str, detail: &str) -> String {
    format!(
        "state\t{id}\t{}\t{}",
        journal::escape(state),
        journal::escape(detail)
    )
}

/// A decoded store record (internal; the public surface is the index).
enum StoreRecord {
    Sub {
        id: u64,
        tenant: String,
        scope: String,
        format: String,
        epoch: u64,
    },
    Case {
        id: u64,
        result: CaseResult,
    },
    Report {
        id: u64,
        text: String,
    },
    Latency {
        id: u64,
        hist: LatencyHist,
    },
    State {
        id: u64,
        state: String,
        detail: String,
    },
}

fn decode_payload(payload: &str) -> Option<StoreRecord> {
    let mut fields = payload.split('\t');
    let kind = fields.next()?;
    let fields: Vec<&str> = fields.collect();
    match kind {
        "sub" => {
            // Four fields = the pre-epoch v1 row; five = epoch-stamped.
            let (core, epoch) = match fields.as_slice() {
                [id, tenant, scope, format] => ([*id, *tenant, *scope, *format], 0),
                [id, tenant, scope, format, epoch] => {
                    ([*id, *tenant, *scope, *format], epoch.parse().ok()?)
                }
                _ => return None,
            };
            let [id, tenant, scope, format] = core;
            Some(StoreRecord::Sub {
                id: id.parse().ok()?,
                tenant: journal::unescape(tenant)?,
                scope: journal::unescape(scope)?,
                format: journal::unescape(format)?,
                epoch,
            })
        }
        "case" => {
            let [id, name, feature, lang, status, cert, attempts, source] =
                fields.as_slice()
            else {
                return None;
            };
            Some(StoreRecord::Case {
                id: id.parse().ok()?,
                result: CaseResult {
                    name: journal::unescape(name)?,
                    feature: FeatureId::new(journal::unescape(feature)?),
                    language: journal::decode_language(lang)?,
                    status: journal::decode_status(&journal::unescape(status)?)?,
                    certainty: journal::decode_certainty(cert)?,
                    functional_source: journal::unescape(source)?,
                    attempts: attempts.parse().ok()?,
                },
            })
        }
        "rep" => {
            let [id, text] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::Report {
                id: id.parse().ok()?,
                text: journal::unescape(text)?,
            })
        }
        "lat" => {
            let [id, hist] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::Latency {
                id: id.parse().ok()?,
                hist: LatencyHist::decode(hist)?,
            })
        }
        "state" => {
            let [id, state, detail] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::State {
                id: id.parse().ok()?,
                state: journal::unescape(state)?,
                detail: journal::unescape(detail)?,
            })
        }
        _ => None,
    }
}

fn decode_line(line: &str) -> Option<StoreRecord> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if crc != checksum(payload) {
        return None;
    }
    decode_payload(payload)
}

/// The generation-pointer file: one ASCII generation number.
fn pointer_path(base: &Path) -> PathBuf {
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(".gen");
    base.with_file_name(name)
}

/// The data file of generation `g`: the bare base path for generation 0
/// (v1 stores predate generations), `<base>.g<G>` after a compaction.
fn data_path(base: &Path, generation: u64) -> PathBuf {
    if generation == 0 {
        return base.to_path_buf();
    }
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".g{generation}"));
    base.with_file_name(name)
}

/// Remove generation files and atomic-write temp droppings that are not
/// the current generation — the debris a crash mid-compaction leaves.
/// Never touches the pointer file or unrelated names.
fn gc_stale(vfs: &dyn Vfs, base: &Path, generation: u64) -> io::Result<()> {
    let Some(stem) = base.file_name() else {
        return Ok(());
    };
    let stem = stem.to_string_lossy().into_owned();
    for entry in vfs.read_dir(vfs::containing_dir(base))? {
        let Some(name) = entry.file_name() else {
            continue;
        };
        let name = name.to_string_lossy();
        let Some(suffix) = name.strip_prefix(stem.as_str()) else {
            continue;
        };
        let stale = if suffix.contains(".tmp") {
            true // orphaned atomic-write temp (ours: stem-prefixed)
        } else if suffix.is_empty() {
            generation != 0
        } else if let Some(g) = suffix.strip_prefix(".g") {
            g.parse::<u64>().is_ok_and(|g| g != generation)
        } else {
            false // the `.gen` pointer, or not ours
        };
        if stale {
            vfs.remove_file(&entry)?;
        }
    }
    Ok(())
}

impl ResultStore {
    /// Open (or create) the store at `path`, rebuilding the index with the
    /// journal's tail rule: the first torn or corrupt line poisons itself
    /// and everything after it; the file is compacted to the trusted
    /// prefix before appends resume. Follows the generation pointer when
    /// one exists and garbage-collects the debris of any interrupted
    /// compaction.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_via(RealFs::shared(), path)
    }

    /// [`ResultStore::open`] on an injected filesystem.
    pub fn open_via(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let pointer = pointer_path(&path);
        let generation = if vfs.exists(&pointer) {
            vfs::read_to_string(vfs.as_ref(), &pointer)?
                .trim()
                .parse::<u64>()
                .map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt generation pointer {}", pointer.display()),
                    )
                })?
        } else {
            0
        };
        gc_stale(vfs.as_ref(), &path, generation)?;
        let data = data_path(&path, generation);
        let text = if vfs.exists(&data) {
            // Lossy: a torn tail that cut a multibyte character must fall
            // to the tail rule, not make the whole store unreadable.
            vfs::read_lossy(vfs.as_ref(), &data)?
        } else {
            String::new()
        };
        let mut index: BTreeMap<u64, StoredSubmission> = BTreeMap::new();
        let mut valid_bytes = 0usize;
        let mut poisoned = false;
        for raw in text.split_inclusive('\n') {
            if !raw.ends_with('\n') {
                poisoned = true; // torn tail
                break;
            }
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                valid_bytes += raw.len();
                continue;
            }
            match decode_line(line) {
                Some(record) => {
                    apply(&mut index, record);
                    valid_bytes += raw.len();
                }
                None => {
                    poisoned = true;
                    break;
                }
            }
        }
        if poisoned {
            atomic_write_via(vfs.as_ref(), &data, &text.as_bytes()[..valid_bytes])?;
        }
        let file = vfs.open_append(&data)?;
        vfs.fsync_dir(vfs::containing_dir(&data))?;
        let next_id = index.keys().next_back().map_or(1, |max| max + 1);
        Ok(ResultStore {
            path,
            vfs,
            clock: system_clock(),
            inner: Mutex::new(StoreInner {
                file,
                index,
                next_id,
                generation,
            }),
        })
    }

    /// Replace the wall clock used to stamp submissions (deterministic
    /// torture runs and tests).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The store's base path (the generation pointer and generation files
    /// derive from it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The generation currently being read and appended.
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("store lock").generation
    }

    /// The data file of the current generation.
    pub fn current_data_path(&self) -> PathBuf {
        data_path(&self.path, self.generation())
    }

    /// Append frames and fsync — the ack discipline: nothing this store
    /// confirmed can be lost to a crash afterwards.
    fn append_sync(inner: &mut StoreInner, frames: &str) -> io::Result<()> {
        inner.file.write_all(frames.as_bytes())?;
        inner.file.sync_all()
    }

    /// Register a new submission; returns its id. The header and the
    /// initial `queued` state are appended and fsynced before the id is
    /// handed out, so every id the server ever returned is resolvable
    /// after a restart.
    pub fn begin(&self, tenant: &str, scope: &str, format: &str) -> io::Result<u64> {
        let epoch = (self.clock)();
        let mut inner = self.inner.lock().expect("store lock");
        let id = inner.next_id;
        inner.next_id += 1;
        let mut frames = frame(&encode_sub(id, tenant, scope, format, epoch));
        frames.push_str(&frame(&encode_state(id, "queued", "")));
        Self::append_sync(&mut inner, &frames)?;
        inner.index.insert(
            id,
            StoredSubmission {
                id,
                tenant: tenant.to_string(),
                scope: scope.to_string(),
                format: format.to_string(),
                epoch,
                state: "queued".to_string(),
                detail: String::new(),
                cases: Vec::new(),
                report: None,
                latency: None,
            },
        );
        Ok(id)
    }

    /// Record a lifecycle transition (fsynced before returning).
    pub fn set_state(&self, id: u64, state: &str, detail: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        Self::append_sync(&mut inner, &frame(&encode_state(id, state, detail)))?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.state = state.to_string();
            sub.detail = detail.to_string();
        }
        Ok(())
    }

    /// Append every verdict of a finished (or interrupted) run (fsynced
    /// before returning).
    pub fn record_cases(&self, id: u64, cases: &[CaseResult]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        let mut lines = String::new();
        for case in cases {
            let _ = write!(lines, "{}", frame(&encode_case(id, case)));
        }
        Self::append_sync(&mut inner, &lines)?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.cases.extend(cases.iter().cloned());
        }
        Ok(())
    }

    /// Append the rendered report verbatim (the byte-identity artifact:
    /// what this returns on a later fetch is exactly what `accvv run`
    /// would have printed). Fsynced before returning.
    pub fn record_report(&self, id: u64, text: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        let payload = format!("rep\t{id}\t{}", journal::escape(text));
        Self::append_sync(&mut inner, &frame(&payload))?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.report = Some(text.to_string());
        }
        Ok(())
    }

    /// Append the submission's merged latency histogram (fsynced before
    /// returning). Empty histograms are not persisted. Repeated calls
    /// merge — the index and every later replay apply the histogram merge
    /// law, so the aggregate is order-free.
    pub fn record_latency(&self, id: u64, hist: &LatencyHist) -> io::Result<()> {
        if hist.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock().expect("store lock");
        Self::append_sync(&mut inner, &frame(&encode_lat(id, hist)))?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.latency.get_or_insert_with(LatencyHist::new).merge(hist);
        }
        Ok(())
    }

    /// Rewrite the live index into a fresh generation and swap the
    /// generation pointer over to it. Crash-safe at every step (see the
    /// module docs); queries are byte-identical before and after because
    /// compaction only rewrites the file, never the index. Appends are
    /// blocked for the duration (the store lock is held).
    pub fn compact(&self) -> io::Result<CompactionStats> {
        let mut inner = self.inner.lock().expect("store lock");
        let old_gen = inner.generation;
        let new_gen = old_gen + 1;
        let old_data = data_path(&self.path, old_gen);
        let new_data = data_path(&self.path, new_gen);
        let dir = vfs::containing_dir(&self.path).to_path_buf();

        // One sub/cases/rep/final-state group per live submission, in id
        // order: replaying this file rebuilds exactly the current index.
        let mut text = String::new();
        for sub in inner.index.values() {
            let _ = write!(
                text,
                "{}",
                frame(&encode_sub(sub.id, &sub.tenant, &sub.scope, &sub.format, sub.epoch))
            );
            for case in &sub.cases {
                let _ = write!(text, "{}", frame(&encode_case(sub.id, case)));
            }
            if let Some(report) = &sub.report {
                let _ = write!(
                    text,
                    "{}",
                    frame(&format!("rep\t{}\t{}", sub.id, journal::escape(report)))
                );
            }
            if let Some(latency) = sub.latency.as_ref().filter(|h| !h.is_empty()) {
                let _ = write!(text, "{}", frame(&encode_lat(sub.id, latency)));
            }
            let _ = write!(text, "{}", frame(&encode_state(sub.id, &sub.state, &sub.detail)));
        }

        // 1. New generation fully durable (bytes and name) first.
        let mut f = self.vfs.create(&new_data)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        self.vfs.fsync_dir(&dir)?;
        // 2. The commit point: atomically swing the pointer.
        atomic_write_via(
            self.vfs.as_ref(),
            pointer_path(&self.path),
            new_gen.to_string().as_bytes(),
        )?;
        // 3. Only now is the old generation garbage.
        let old_bytes = self.vfs.read(&old_data).map(|b| b.len() as u64).unwrap_or(0);
        self.vfs.remove_file(&old_data)?;
        self.vfs.fsync_dir(&dir)?;

        inner.file = self.vfs.open_append(&new_data)?;
        inner.generation = new_gen;
        Ok(CompactionStats {
            generation: new_gen,
            old_bytes,
            new_bytes: text.len() as u64,
            live_submissions: inner.index.len(),
        })
    }

    /// Look up one submission by id.
    pub fn submission(&self, id: u64) -> Option<StoredSubmission> {
        self.inner.lock().expect("store lock").index.get(&id).cloned()
    }

    /// Every stored submission, id-ordered.
    pub fn list(&self) -> Vec<StoredSubmission> {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .values()
            .cloned()
            .collect()
    }

    /// Aggregate pass rates by (scope, language, feature) across every
    /// stored verdict matching the filter. Skipped rows are excluded, the
    /// same exclusion the report applies, so a degraded submission does
    /// not drag a vendor's rate down. The `since`/`until` bounds filter on
    /// each submission's recorded epoch.
    pub fn query(&self, filter: &QueryFilter) -> Vec<QueryRow> {
        let inner = self.inner.lock().expect("store lock");
        let mut agg: BTreeMap<(String, String, String), (usize, usize)> = BTreeMap::new();
        for sub in inner.index.values() {
            if !filter.tenant.is_empty() && sub.tenant != filter.tenant {
                continue;
            }
            if !sub.scope.starts_with(&filter.scope) {
                continue;
            }
            if sub.epoch < filter.since || sub.epoch > filter.until {
                continue;
            }
            for case in &sub.cases {
                if !case.status.counted() {
                    continue;
                }
                let language = case.language.to_string();
                if !language.starts_with(&filter.language) {
                    continue;
                }
                let feature = case.feature.as_str().to_string();
                if !feature.starts_with(&filter.feature) {
                    continue;
                }
                let slot = agg
                    .entry((sub.scope.clone(), language, feature))
                    .or_insert((0, 0));
                slot.0 += 1;
                if case.status.passed() {
                    slot.1 += 1;
                }
            }
        }
        agg.into_iter()
            .map(|((scope, language, feature), (total, passed))| QueryRow {
                scope,
                language,
                feature,
                total,
                passed,
            })
            .collect()
    }
}

fn apply(index: &mut BTreeMap<u64, StoredSubmission>, record: StoreRecord) {
    match record {
        StoreRecord::Sub {
            id,
            tenant,
            scope,
            format,
            epoch,
        } => {
            index.entry(id).or_insert(StoredSubmission {
                id,
                tenant,
                scope,
                format,
                epoch,
                state: "queued".to_string(),
                detail: String::new(),
                cases: Vec::new(),
                report: None,
                latency: None,
            });
        }
        StoreRecord::Case { id, result } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.cases.push(result);
            }
        }
        StoreRecord::Report { id, text } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.report = Some(text);
            }
        }
        StoreRecord::Latency { id, hist } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.latency.get_or_insert_with(LatencyHist::new).merge(&hist);
            }
        }
        StoreRecord::State { id, state, detail } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.state = state;
                sub.detail = detail;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_spec::Language;
    use acc_validation::vfs::FaultFs;
    use acc_validation::TestStatus;

    fn case(name: &str, feature: &str, status: TestStatus) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            feature: FeatureId::new(feature.to_string()),
            language: Language::C,
            status,
            certainty: None,
            functional_source: "int main(void) {\n\treturn 1;\n}\n".to_string(),
            attempts: 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("accvv-store-{}-{name}.j1", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(pointer_path(path));
        for g in 1..6 {
            let _ = std::fs::remove_file(data_path(path, g));
        }
    }

    #[test]
    fn submission_round_trips_through_reopen() {
        let path = tmp("roundtrip");
        cleanup(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            let id = store.begin("alice", "PGI 13.4", "text").unwrap();
            assert_eq!(id, 1);
            store.set_state(id, "running", "").unwrap();
            store
                .record_cases(
                    id,
                    &[
                        case("loop", "loop", TestStatus::Pass),
                        case("data.copy", "data.copy", TestStatus::WrongResult),
                        case(
                            "update.host",
                            "update.host",
                            TestStatus::Skipped(Some("breaker open: PGI".into())),
                        ),
                    ],
                )
                .unwrap();
            store.record_report(id, "REPORT\nline two\ttabbed\n").unwrap();
            store.set_state(id, "done", "").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        let sub = store.submission(1).expect("reopened index has it");
        assert_eq!(sub.tenant, "alice");
        assert_eq!(sub.scope, "PGI 13.4");
        assert_eq!(sub.state, "done");
        assert_eq!(sub.cases.len(), 3);
        assert_eq!(
            sub.cases[2].status,
            TestStatus::Skipped(Some("breaker open: PGI".into()))
        );
        assert_eq!(sub.report.as_deref(), Some("REPORT\nline two\ttabbed\n"));
        assert!(sub.epoch > 0, "system clock stamps submissions");
        // Ids keep counting after reopen.
        assert_eq!(store.begin("bob", "ref", "text").unwrap(), 2);
        cleanup(&path);
    }

    #[test]
    fn corrupt_tail_is_compacted_on_open() {
        let path = tmp("tail");
        cleanup(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            let id = store.begin("t", "scope", "text").unwrap();
            store.set_state(id, "done", "").unwrap();
        }
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Append garbage then a torn line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("J1 0000000000000000 state\t1\tbogus\t\n");
        text.push_str("J1 0123"); // torn
        std::fs::write(&path, &text).unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "poisoned tail compacted away"
        );
        assert_eq!(store.submission(1).unwrap().state, "done");
        cleanup(&path);
    }

    #[test]
    fn pre_epoch_sub_rows_still_decode() {
        // A v1 row (no epoch field) must replay with epoch 0.
        let payload = format!(
            "sub\t9\t{}\t{}\t{}",
            journal::escape("old-tenant"),
            journal::escape("PGI 13.4"),
            journal::escape("text"),
        );
        match decode_payload(&payload) {
            Some(StoreRecord::Sub { id, tenant, epoch, .. }) => {
                assert_eq!(id, 9);
                assert_eq!(tenant, "old-tenant");
                assert_eq!(epoch, 0);
            }
            _ => panic!("v1 sub row must decode"),
        }
    }

    #[test]
    fn query_aggregates_and_filters() {
        let path = tmp("query");
        cleanup(&path);
        let store = ResultStore::open(&path).unwrap();
        let a = store.begin("alice", "PGI 13.4", "text").unwrap();
        store
            .record_cases(
                a,
                &[
                    case("loop", "loop", TestStatus::Pass),
                    case("data.copy", "data.copy", TestStatus::Pass),
                    case("data.copyin", "data.copyin", TestStatus::WrongResult),
                ],
            )
            .unwrap();
        let b = store.begin("bob", "CAPS 3.3.0", "text").unwrap();
        store
            .record_cases(
                b,
                &[
                    case("loop", "loop", TestStatus::Pass),
                    // Skips never count.
                    case("loop", "loop", TestStatus::Skipped(Some("breaker".into()))),
                ],
            )
            .unwrap();
        let all = store.query(&QueryFilter::default());
        assert_eq!(all.len(), 4);
        let pgi_data = store.query(&QueryFilter {
            scope: "PGI".into(),
            feature: "data.".into(),
            ..Default::default()
        });
        assert_eq!(pgi_data.len(), 2);
        let copyin = pgi_data.iter().find(|r| r.feature == "data.copyin").unwrap();
        assert_eq!((copyin.total, copyin.passed), (1, 0));
        assert_eq!(copyin.pass_rate(), 0.0);
        let caps = store.query(&QueryFilter {
            scope: "CAPS".into(),
            ..Default::default()
        });
        assert_eq!(caps.len(), 1);
        assert_eq!((caps[0].total, caps[0].passed), (1, 1), "skip excluded");
        let bob_only = store.query(&QueryFilter {
            tenant: "bob".into(),
            ..Default::default()
        });
        assert_eq!(bob_only.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn since_until_bound_queries_by_epoch() {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(1));
        let now = Arc::new(std::sync::atomic::AtomicU64::new(100));
        let clock_now = Arc::clone(&now);
        let store = ResultStore::open_via(Arc::clone(&fs), "epoch.j1")
            .unwrap()
            .with_clock(Arc::new(move || {
                clock_now.load(std::sync::atomic::Ordering::SeqCst)
            }));
        let a = store.begin("t", "PGI 13.4", "text").unwrap();
        store.record_cases(a, &[case("loop", "loop", TestStatus::Pass)]).unwrap();
        now.store(200, std::sync::atomic::Ordering::SeqCst);
        let b = store.begin("t", "PGI 13.4", "text").unwrap();
        store
            .record_cases(b, &[case("loop", "loop", TestStatus::WrongResult)])
            .unwrap();
        let all = store.query(&QueryFilter::default());
        assert_eq!((all[0].total, all[0].passed), (2, 1));
        let early = store.query(&QueryFilter {
            until: 150,
            ..Default::default()
        });
        assert_eq!((early[0].total, early[0].passed), (1, 1));
        let late = store.query(&QueryFilter {
            since: 150,
            ..Default::default()
        });
        assert_eq!((late[0].total, late[0].passed), (1, 0));
        let none = store.query(&QueryFilter {
            since: 300,
            ..Default::default()
        });
        assert!(none.is_empty());
        // Epochs survive reopen.
        drop(store);
        let store = ResultStore::open_via(fs, "epoch.j1").unwrap();
        assert_eq!(store.submission(a).unwrap().epoch, 100);
        assert_eq!(store.submission(b).unwrap().epoch, 200);
    }

    #[test]
    fn compaction_preserves_queries_and_reclaims_space() {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(2));
        let store = ResultStore::open_via(Arc::clone(&fs), "c.j1").unwrap();
        let id = store.begin("t", "PGI 13.4", "text").unwrap();
        // Lots of dead state churn for compaction to reclaim.
        for _ in 0..50 {
            store.set_state(id, "running", "still going").unwrap();
        }
        store.record_cases(id, &[case("loop", "loop", TestStatus::Pass)]).unwrap();
        store.record_report(id, "REPORT\n").unwrap();
        store.set_state(id, "done", "").unwrap();
        let before_list = format!("{:?}", store.list());
        let before = store.query(&QueryFilter::default());
        let stats = store.compact().unwrap();
        assert_eq!(stats.generation, 1);
        assert!(
            stats.new_bytes < stats.old_bytes,
            "dead state rows reclaimed: {stats:?}"
        );
        assert_eq!(stats.live_submissions, 1);
        assert_eq!(store.query(&QueryFilter::default()), before);
        assert_eq!(format!("{:?}", store.list()), before_list);
        // Appends continue in the new generation and survive reopen.
        let id2 = store.begin("t", "CAPS 3.3.0", "text").unwrap();
        drop(store);
        let store = ResultStore::open_via(Arc::clone(&fs), "c.j1").unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.query(&QueryFilter::default()), before);
        assert!(store.submission(id2).is_some());
        assert!(store.submission(id).unwrap().report.is_some());
        // The old generation file is gone.
        assert!(!fs.exists(Path::new("c.j1")), "generation 0 reclaimed");
        // Compacting again moves to generation 2.
        assert_eq!(store.compact().unwrap().generation, 2);
    }

    #[test]
    fn interrupted_compaction_is_garbage_collected_on_open() {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(3));
        {
            let store = ResultStore::open_via(Arc::clone(&fs), "g.j1").unwrap();
            let id = store.begin("t", "PGI 13.4", "text").unwrap();
            store.record_cases(id, &[case("loop", "loop", TestStatus::Pass)]).unwrap();
        }
        // Simulate a crash after the new generation was written but before
        // the pointer swap: an orphan .g1 with divergent content.
        let mut f = fs.create(Path::new("g.j1.g1")).unwrap();
        f.write_all(b"garbage that must never be read\n").unwrap();
        f.sync_all().unwrap();
        let store = ResultStore::open_via(Arc::clone(&fs), "g.j1").unwrap();
        assert_eq!(store.generation(), 0, "pointer never swung");
        assert!(!fs.exists(Path::new("g.j1.g1")), "orphan GC'd");
        assert_eq!(store.submission(1).unwrap().cases.len(), 1);
    }

    #[test]
    fn latency_round_trips_merges_and_survives_compaction() {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new(4));
        let store = ResultStore::open_via(Arc::clone(&fs), "lat.j1").unwrap();
        let id = store.begin("t", "PGI 13.4", "text").unwrap();
        store.record_cases(id, &[case("loop", "loop", TestStatus::Pass)]).unwrap();
        let mut h1 = LatencyHist::new();
        h1.record(150);
        h1.record(9_000);
        let mut h2 = LatencyHist::new();
        h2.record(42);
        store.record_latency(id, &h1).unwrap();
        store.record_latency(id, &h2).unwrap();
        store.record_latency(id, &LatencyHist::new()).unwrap(); // no-op
        let mut merged = h1.clone();
        merged.merge(&h2);
        assert_eq!(store.submission(id).unwrap().latency, Some(merged.clone()));
        // Replay from disk agrees.
        drop(store);
        let store = ResultStore::open_via(Arc::clone(&fs), "lat.j1").unwrap();
        assert_eq!(store.submission(id).unwrap().latency, Some(merged.clone()));
        // Compaction folds the two rows into one and changes nothing.
        store.compact().unwrap();
        assert_eq!(store.submission(id).unwrap().latency, Some(merged.clone()));
        drop(store);
        let store = ResultStore::open_via(fs, "lat.j1").unwrap();
        assert_eq!(store.submission(id).unwrap().latency, Some(merged));
        // Submissions without latency stay `None`.
        let id2 = store.begin("t", "ref", "text").unwrap();
        assert_eq!(store.submission(id2).unwrap().latency, None);
    }

    #[test]
    fn case_frames_use_journal_escaping() {
        let encoded = encode_case(7, &case("x", "f", TestStatus::Crash("bad\tnews\n".into())));
        assert!(!encoded.contains('\n'));
        let framed = frame(&encoded);
        let decoded = decode_line(framed.trim_end()).expect("round trip");
        match decoded {
            StoreRecord::Case { id, result } => {
                assert_eq!(id, 7);
                assert_eq!(result.status, TestStatus::Crash("bad\tnews\n".into()));
            }
            _ => panic!("wrong kind"),
        }
    }
}
