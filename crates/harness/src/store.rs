//! Indexed, append-only on-disk result store for served campaigns.
//!
//! Every submission the campaign server runs lands here: a submission
//! header, one row per case verdict, the rendered report verbatim, and a
//! state record per lifecycle transition (`queued` → `running` → `done` /
//! `degraded` / `cancelled` / `interrupted`). The file reuses the
//! validation journal's `J1` checksummed-frame format — same magic, same
//! FNV-1a checksum, same field escaping (via the public codecs in
//! [`acc_validation::journal`]) — so the store inherits the journal's
//! crash story: an append-only file whose torn or corrupted tail is
//! detected and compacted away on open, with everything before the damage
//! trusted.
//!
//! Record kinds (tab-separated payloads inside the `J1` frame):
//!
//! ```text
//! sub   <id> <tenant> <scope> <format>
//! case  <id> <name> <feature> <lang> <status> <certainty> <attempts> <source>
//! rep   <id> <report-text>
//! state <id> <state> <detail>
//! ```
//!
//! The in-memory index (id → submission) is rebuilt by a full scan on
//! open; queries aggregate pass rates by (scope, language, feature) across
//! every stored verdict.

use acc_validation::journal::{
    self, atomic_write, checksum, fsync_dir, MAGIC,
};
use acc_spec::FeatureId;
use acc_validation::CaseResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One stored submission, reassembled from its records.
#[derive(Debug, Clone)]
pub struct StoredSubmission {
    /// Store-assigned submission id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// What was validated (compiler label).
    pub scope: String,
    /// Report format the submission asked for (`text`/`csv`/`html`).
    pub format: String,
    /// Latest lifecycle state.
    pub state: String,
    /// Human detail for the latest state (degradation reason, drain note).
    pub detail: String,
    /// Per-case verdicts.
    pub cases: Vec<CaseResult>,
    /// The rendered report, once the submission completed.
    pub report: Option<String>,
}

/// One aggregated pass-rate row from [`ResultStore::query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Compiler label the verdicts were recorded under.
    pub scope: String,
    /// Language variant.
    pub language: String,
    /// Feature id.
    pub feature: String,
    /// Counted verdicts (skips excluded).
    pub total: usize,
    /// Passing verdicts among `total`.
    pub passed: usize,
}

impl QueryRow {
    /// Pass rate in percent (0 when nothing counted).
    pub fn pass_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passed as f64 / self.total as f64 * 100.0
        }
    }
}

/// Prefix filters for [`ResultStore::query`]. Empty strings match all.
#[derive(Debug, Clone, Default)]
pub struct QueryFilter {
    /// Scope (compiler label) prefix, e.g. `"PGI"` or `"PGI 13"`.
    pub scope: String,
    /// Feature id prefix, e.g. `"data."`.
    pub feature: String,
    /// Language name prefix, e.g. `"C"` or `"Fortran"`.
    pub language: String,
    /// Tenant exact match ("" = all tenants).
    pub tenant: String,
}

struct StoreInner {
    file: std::fs::File,
    index: BTreeMap<u64, StoredSubmission>,
    next_id: u64,
}

/// The append-only, indexed result store.
pub struct ResultStore {
    path: PathBuf,
    inner: Mutex<StoreInner>,
}

fn frame(payload: &str) -> String {
    format!("{MAGIC} {:016x} {payload}\n", checksum(payload))
}

fn encode_case(id: u64, r: &CaseResult) -> String {
    format!(
        "case\t{id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        journal::escape(&r.name),
        journal::escape(r.feature.as_str()),
        journal::encode_language(r.language),
        journal::escape(&journal::encode_status(&r.status)),
        journal::encode_certainty(&r.certainty),
        r.attempts,
        journal::escape(&r.functional_source),
    )
}

/// A decoded store record (internal; the public surface is the index).
enum StoreRecord {
    Sub {
        id: u64,
        tenant: String,
        scope: String,
        format: String,
    },
    Case {
        id: u64,
        result: CaseResult,
    },
    Report {
        id: u64,
        text: String,
    },
    State {
        id: u64,
        state: String,
        detail: String,
    },
}

fn decode_payload(payload: &str) -> Option<StoreRecord> {
    let mut fields = payload.split('\t');
    let kind = fields.next()?;
    let fields: Vec<&str> = fields.collect();
    match kind {
        "sub" => {
            let [id, tenant, scope, format] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::Sub {
                id: id.parse().ok()?,
                tenant: journal::unescape(tenant)?,
                scope: journal::unescape(scope)?,
                format: journal::unescape(format)?,
            })
        }
        "case" => {
            let [id, name, feature, lang, status, cert, attempts, source] =
                fields.as_slice()
            else {
                return None;
            };
            Some(StoreRecord::Case {
                id: id.parse().ok()?,
                result: CaseResult {
                    name: journal::unescape(name)?,
                    feature: FeatureId::new(journal::unescape(feature)?),
                    language: journal::decode_language(lang)?,
                    status: journal::decode_status(&journal::unescape(status)?)?,
                    certainty: journal::decode_certainty(cert)?,
                    functional_source: journal::unescape(source)?,
                    attempts: attempts.parse().ok()?,
                },
            })
        }
        "rep" => {
            let [id, text] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::Report {
                id: id.parse().ok()?,
                text: journal::unescape(text)?,
            })
        }
        "state" => {
            let [id, state, detail] = fields.as_slice() else {
                return None;
            };
            Some(StoreRecord::State {
                id: id.parse().ok()?,
                state: journal::unescape(state)?,
                detail: journal::unescape(detail)?,
            })
        }
        _ => None,
    }
}

fn decode_line(line: &str) -> Option<StoreRecord> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if crc != checksum(payload) {
        return None;
    }
    decode_payload(payload)
}

impl ResultStore {
    /// Open (or create) the store at `path`, rebuilding the index with the
    /// journal's tail rule: the first torn or corrupt line poisons itself
    /// and everything after it; the file is compacted to the trusted
    /// prefix before appends resume.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut index: BTreeMap<u64, StoredSubmission> = BTreeMap::new();
        let mut valid_bytes = 0usize;
        let mut poisoned = false;
        for raw in text.split_inclusive('\n') {
            if !raw.ends_with('\n') {
                poisoned = true; // torn tail
                break;
            }
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                valid_bytes += raw.len();
                continue;
            }
            match decode_line(line) {
                Some(record) => {
                    apply(&mut index, record);
                    valid_bytes += raw.len();
                }
                None => {
                    poisoned = true;
                    break;
                }
            }
        }
        if poisoned {
            atomic_write(&path, &text.as_bytes()[..valid_bytes])?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        fsync_dir(path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new(".")))?;
        let next_id = index.keys().next_back().map_or(1, |max| max + 1);
        Ok(ResultStore {
            path,
            inner: Mutex::new(StoreInner {
                file,
                index,
                next_id,
            }),
        })
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_locked(inner: &mut StoreInner, payload: &str) -> io::Result<()> {
        inner.file.write_all(frame(payload).as_bytes())?;
        inner.file.flush()
    }

    /// Register a new submission; returns its id. The header and the
    /// initial `queued` state are appended before the id is handed out, so
    /// every id the server ever returned is resolvable after a restart.
    pub fn begin(&self, tenant: &str, scope: &str, format: &str) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("store lock");
        let id = inner.next_id;
        inner.next_id += 1;
        let payload = format!(
            "sub\t{id}\t{}\t{}\t{}",
            journal::escape(tenant),
            journal::escape(scope),
            journal::escape(format),
        );
        Self::append_locked(&mut inner, &payload)?;
        let state = format!("state\t{id}\tqueued\t");
        Self::append_locked(&mut inner, &state)?;
        inner.index.insert(
            id,
            StoredSubmission {
                id,
                tenant: tenant.to_string(),
                scope: scope.to_string(),
                format: format.to_string(),
                state: "queued".to_string(),
                detail: String::new(),
                cases: Vec::new(),
                report: None,
            },
        );
        Ok(id)
    }

    /// Record a lifecycle transition.
    pub fn set_state(&self, id: u64, state: &str, detail: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        let payload = format!(
            "state\t{id}\t{}\t{}",
            journal::escape(state),
            journal::escape(detail)
        );
        Self::append_locked(&mut inner, &payload)?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.state = state.to_string();
            sub.detail = detail.to_string();
        }
        Ok(())
    }

    /// Append every verdict of a finished (or interrupted) run.
    pub fn record_cases(&self, id: u64, cases: &[CaseResult]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        let mut lines = String::new();
        for case in cases {
            let _ = write!(lines, "{}", frame(&encode_case(id, case)));
        }
        inner.file.write_all(lines.as_bytes())?;
        inner.file.flush()?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.cases.extend(cases.iter().cloned());
        }
        Ok(())
    }

    /// Append the rendered report verbatim (the byte-identity artifact:
    /// what this returns on a later fetch is exactly what `accvv run`
    /// would have printed).
    pub fn record_report(&self, id: u64, text: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        let payload = format!("rep\t{id}\t{}", journal::escape(text));
        Self::append_locked(&mut inner, &payload)?;
        if let Some(sub) = inner.index.get_mut(&id) {
            sub.report = Some(text.to_string());
        }
        Ok(())
    }

    /// Look up one submission by id.
    pub fn submission(&self, id: u64) -> Option<StoredSubmission> {
        self.inner.lock().expect("store lock").index.get(&id).cloned()
    }

    /// Every stored submission, id-ordered.
    pub fn list(&self) -> Vec<StoredSubmission> {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .values()
            .cloned()
            .collect()
    }

    /// Aggregate pass rates by (scope, language, feature) across every
    /// stored verdict matching the filter. Skipped rows are excluded, the
    /// same exclusion the report applies, so a degraded submission does
    /// not drag a vendor's rate down.
    pub fn query(&self, filter: &QueryFilter) -> Vec<QueryRow> {
        let inner = self.inner.lock().expect("store lock");
        let mut agg: BTreeMap<(String, String, String), (usize, usize)> = BTreeMap::new();
        for sub in inner.index.values() {
            if !filter.tenant.is_empty() && sub.tenant != filter.tenant {
                continue;
            }
            if !sub.scope.starts_with(&filter.scope) {
                continue;
            }
            for case in &sub.cases {
                if !case.status.counted() {
                    continue;
                }
                let language = case.language.to_string();
                if !language.starts_with(&filter.language) {
                    continue;
                }
                let feature = case.feature.as_str().to_string();
                if !feature.starts_with(&filter.feature) {
                    continue;
                }
                let slot = agg
                    .entry((sub.scope.clone(), language, feature))
                    .or_insert((0, 0));
                slot.0 += 1;
                if case.status.passed() {
                    slot.1 += 1;
                }
            }
        }
        agg.into_iter()
            .map(|((scope, language, feature), (total, passed))| QueryRow {
                scope,
                language,
                feature,
                total,
                passed,
            })
            .collect()
    }
}

fn apply(index: &mut BTreeMap<u64, StoredSubmission>, record: StoreRecord) {
    match record {
        StoreRecord::Sub {
            id,
            tenant,
            scope,
            format,
        } => {
            index.entry(id).or_insert(StoredSubmission {
                id,
                tenant,
                scope,
                format,
                state: "queued".to_string(),
                detail: String::new(),
                cases: Vec::new(),
                report: None,
            });
        }
        StoreRecord::Case { id, result } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.cases.push(result);
            }
        }
        StoreRecord::Report { id, text } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.report = Some(text);
            }
        }
        StoreRecord::State { id, state, detail } => {
            if let Some(sub) = index.get_mut(&id) {
                sub.state = state;
                sub.detail = detail;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_spec::Language;
    use acc_validation::TestStatus;

    fn case(name: &str, feature: &str, status: TestStatus) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            feature: FeatureId::new(feature.to_string()),
            language: Language::C,
            status,
            certainty: None,
            functional_source: "int main(void) {\n\treturn 1;\n}\n".to_string(),
            attempts: 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("accvv-store-{}-{name}.j1", std::process::id()))
    }

    #[test]
    fn submission_round_trips_through_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            let id = store.begin("alice", "PGI 13.4", "text").unwrap();
            assert_eq!(id, 1);
            store.set_state(id, "running", "").unwrap();
            store
                .record_cases(
                    id,
                    &[
                        case("loop", "loop", TestStatus::Pass),
                        case("data.copy", "data.copy", TestStatus::WrongResult),
                        case(
                            "update.host",
                            "update.host",
                            TestStatus::Skipped(Some("breaker open: PGI".into())),
                        ),
                    ],
                )
                .unwrap();
            store.record_report(id, "REPORT\nline two\ttabbed\n").unwrap();
            store.set_state(id, "done", "").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        let sub = store.submission(1).expect("reopened index has it");
        assert_eq!(sub.tenant, "alice");
        assert_eq!(sub.scope, "PGI 13.4");
        assert_eq!(sub.state, "done");
        assert_eq!(sub.cases.len(), 3);
        assert_eq!(
            sub.cases[2].status,
            TestStatus::Skipped(Some("breaker open: PGI".into()))
        );
        assert_eq!(sub.report.as_deref(), Some("REPORT\nline two\ttabbed\n"));
        // Ids keep counting after reopen.
        assert_eq!(store.begin("bob", "ref", "text").unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_tail_is_compacted_on_open() {
        let path = tmp("tail");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            let id = store.begin("t", "scope", "text").unwrap();
            store.set_state(id, "done", "").unwrap();
        }
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Append garbage then a torn line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("J1 0000000000000000 state\t1\tbogus\t\n");
        text.push_str("J1 0123"); // torn
        std::fs::write(&path, &text).unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "poisoned tail compacted away"
        );
        assert_eq!(store.submission(1).unwrap().state, "done");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_aggregates_and_filters() {
        let path = tmp("query");
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path).unwrap();
        let a = store.begin("alice", "PGI 13.4", "text").unwrap();
        store
            .record_cases(
                a,
                &[
                    case("loop", "loop", TestStatus::Pass),
                    case("data.copy", "data.copy", TestStatus::Pass),
                    case("data.copyin", "data.copyin", TestStatus::WrongResult),
                ],
            )
            .unwrap();
        let b = store.begin("bob", "CAPS 3.3.0", "text").unwrap();
        store
            .record_cases(
                b,
                &[
                    case("loop", "loop", TestStatus::Pass),
                    // Skips never count.
                    case("loop", "loop", TestStatus::Skipped(Some("breaker".into()))),
                ],
            )
            .unwrap();
        let all = store.query(&QueryFilter::default());
        assert_eq!(all.len(), 4);
        let pgi_data = store.query(&QueryFilter {
            scope: "PGI".into(),
            feature: "data.".into(),
            ..Default::default()
        });
        assert_eq!(pgi_data.len(), 2);
        let copyin = pgi_data.iter().find(|r| r.feature == "data.copyin").unwrap();
        assert_eq!((copyin.total, copyin.passed), (1, 0));
        assert_eq!(copyin.pass_rate(), 0.0);
        let caps = store.query(&QueryFilter {
            scope: "CAPS".into(),
            ..Default::default()
        });
        assert_eq!(caps.len(), 1);
        assert_eq!((caps[0].total, caps[0].passed), (1, 1), "skip excluded");
        let bob_only = store.query(&QueryFilter {
            tenant: "bob".into(),
            ..Default::default()
        });
        assert_eq!(bob_only.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn case_frames_use_journal_escaping() {
        let encoded = encode_case(7, &case("x", "f", TestStatus::Crash("bad\tnews\n".into())));
        assert!(!encoded.contains('\n'));
        let framed = frame(&encoded);
        let decoded = decode_line(framed.trim_end()).expect("round trip");
        match decoded {
            StoreRecord::Case { id, result } => {
                assert_eq!(id, 7);
                assert_eq!(result.status, TestStatus::Crash("bad\tnews\n".into()));
            }
            _ => panic!("wrong kind"),
        }
    }
}
