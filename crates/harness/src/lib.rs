//! # acc-harness — the Titan-style production harness
//!
//! §VII of the paper: "The OpenACC validation suite is being used to
//! validate the functionality of the programming environment of Titan. …
//! The suite runs on random nodes to check functionality requirements of
//! the nodes. It is also used to test different software stacks, for
//! example, to test the translation of OpenACC to CUDA or OpenCL" (Fig. 13).
//!
//! This crate simulates that deployment: a [`cluster::SimulatedCluster`] of
//! nodes, each carrying one or more [`cluster::SoftwareStack`]s (compiler ×
//! translation target) and possibly a hardware/software fault; a
//! [`run::HarnessRun`] samples random nodes with a seeded RNG and executes
//! the validation suite on every stack of every sampled node; and a
//! [`tracking::FunctionalityTracker`] keeps the time series of pass rates
//! "to track functionality improvements or degradation over time".

#![warn(missing_docs)]

pub mod cluster;
pub mod history;
pub mod run;
pub mod sched;
pub mod store;
pub mod sweep;
pub mod torture;
pub mod tracking;

pub use cluster::{LossPlan, Node, NodeFault, SimulatedCluster, SoftwareStack};
pub use history::{check_drift, history, DriftTolerance, HistoryRequest};
pub use run::{HarnessReport, HarnessRun, StackResult};
pub use sched::{FairScheduler, PushError};
pub use store::{QueryFilter, QueryRow, ResultStore, StoredSubmission};
pub use sweep::{ClusterSweep, NodeLoss, SweepOutcome, SweepRow};
pub use torture::{run_torture, TortureConfig, TortureOutcome};
pub use tracking::{Drift, FunctionalityTracker};
