//! # acc-spec — the OpenACC 1.0 feature model
//!
//! This crate is the single source of truth for *what OpenACC 1.0 is*, as far
//! as the validation suite is concerned: the directives, the clauses each
//! directive admits, the reduction operators, the runtime library routines,
//! the environment variables, and the device types. Everything above this
//! crate (front-ends, compilers, the testsuite) keys its behaviour off these
//! enums, and the feature registry in [`feature`] gives every testable item a
//! stable identifier that the bug catalog and the report generator share.
//!
//! The crate also records, in [`resolution`], the specification ambiguities
//! the paper reports (§VI) together with how OpenACC 2.0 resolved them, which
//! the ambiguity-exploration tooling consumes.
//!
//! Nothing here executes anything; it is pure data and classification logic,
//! which keeps it dependency-free and lets every other crate share one model.

#![warn(missing_docs)]

pub mod clause;
pub mod device_type;
pub mod directive;
pub mod envvar;
pub mod feature;
pub mod language;
pub mod parallelism;
pub mod reduction;
pub mod resolution;
pub mod routine;
pub mod version;

pub use clause::ClauseKind;
pub use device_type::DeviceType;
pub use directive::DirectiveKind;
pub use envvar::EnvVar;
pub use feature::{Feature, FeatureArea, FeatureId, FeatureRegistry};
pub use language::Language;
pub use parallelism::{HardwareAxis, ParallelismLevel, VendorMapping};
pub use reduction::ReductionOp;
pub use resolution::{Ambiguity, AmbiguityId};
pub use routine::RuntimeRoutine;
pub use version::SpecVersion;
