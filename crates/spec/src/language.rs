//! Base languages the OpenACC 1.0 specification covers and the testsuite
//! generates programs in.

use std::fmt;

/// Base language of a generated test program.
///
/// The paper's testsuite ships every test case twice — once as a C program
/// using `#pragma acc` lines and once as a Fortran program using `!$acc`
/// sentinels — because vendor front-ends are distinct per language and Table I
/// splits bug counts by language accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// C (the specification also covers C++ through the same pragma syntax).
    C,
    /// Fortran, using `!$acc` directive sentinels and 1-based column-major
    /// arrays.
    Fortran,
}

impl Language {
    /// Both supported languages, in the order the paper tabulates them.
    pub const ALL: [Language; 2] = [Language::C, Language::Fortran];

    /// The directive sentinel that introduces an OpenACC directive line.
    pub fn sentinel(self) -> &'static str {
        match self {
            Language::C => "#pragma acc",
            Language::Fortran => "!$acc",
        }
    }

    /// Conventional source-file extension.
    pub fn extension(self) -> &'static str {
        match self {
            Language::C => "c",
            Language::Fortran => "f90",
        }
    }

    /// Lowest valid array index in the language's surface syntax.
    pub fn base_index(self) -> i64 {
        match self {
            Language::C => 0,
            Language::Fortran => 1,
        }
    }

    /// One-letter abbreviation used in the paper's Table I ("C" / "F").
    pub fn letter(self) -> &'static str {
        match self {
            Language::C => "C",
            Language::Fortran => "F",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::C => write!(f, "C"),
            Language::Fortran => write!(f, "Fortran"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_match_spec() {
        assert_eq!(Language::C.sentinel(), "#pragma acc");
        assert_eq!(Language::Fortran.sentinel(), "!$acc");
    }

    #[test]
    fn base_indices() {
        assert_eq!(Language::C.base_index(), 0);
        assert_eq!(Language::Fortran.base_index(), 1);
    }

    #[test]
    fn all_contains_both() {
        assert_eq!(Language::ALL.len(), 2);
        assert!(Language::ALL.contains(&Language::C));
        assert!(Language::ALL.contains(&Language::Fortran));
    }

    #[test]
    fn display_and_letter() {
        assert_eq!(Language::C.to_string(), "C");
        assert_eq!(Language::Fortran.to_string(), "Fortran");
        assert_eq!(Language::Fortran.letter(), "F");
    }

    #[test]
    fn extensions() {
        assert_eq!(Language::C.extension(), "c");
        assert_eq!(Language::Fortran.extension(), "f90");
    }
}
