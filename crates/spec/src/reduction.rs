//! Reduction operators and their identities/combiners.
//!
//! OpenACC 1.0 defines nine reduction operators for the `reduction` clause:
//! `+`, `*`, `max`, `min`, `&&`, `||`, `&`, `|`, `^`. The paper's reduction
//! tests (§IV-C-4, Fig. 7) sweep all operators across `int`, `float` and
//! `double` operand types; this module provides the reference semantics those
//! tests are checked against.

use std::fmt;

/// A reduction operator from the `reduction(op:list)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReductionOp {
    /// `+` — sum.
    Add,
    /// `*` — product.
    Mul,
    /// `max` — maximum.
    Max,
    /// `min` — minimum.
    Min,
    /// `&&` — logical and.
    LogicalAnd,
    /// `||` — logical or.
    LogicalOr,
    /// `&` — bitwise and (integer only).
    BitAnd,
    /// `|` — bitwise or (integer only).
    BitOr,
    /// `^` — bitwise xor (integer only).
    BitXor,
}

impl ReductionOp {
    /// All nine operators in specification order.
    pub const ALL: [ReductionOp; 9] = [
        ReductionOp::Add,
        ReductionOp::Mul,
        ReductionOp::Max,
        ReductionOp::Min,
        ReductionOp::LogicalAnd,
        ReductionOp::LogicalOr,
        ReductionOp::BitAnd,
        ReductionOp::BitOr,
        ReductionOp::BitXor,
    ];

    /// Spelling in C clause syntax.
    pub fn c_symbol(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Max => "max",
            ReductionOp::Min => "min",
            ReductionOp::LogicalAnd => "&&",
            ReductionOp::LogicalOr => "||",
            ReductionOp::BitAnd => "&",
            ReductionOp::BitOr => "|",
            ReductionOp::BitXor => "^",
        }
    }

    /// Spelling in Fortran clause syntax (`.and.`, `iand`, ...).
    pub fn fortran_symbol(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Max => "max",
            ReductionOp::Min => "min",
            ReductionOp::LogicalAnd => ".and.",
            ReductionOp::LogicalOr => ".or.",
            ReductionOp::BitAnd => "iand",
            ReductionOp::BitOr => "ior",
            ReductionOp::BitXor => "ieor",
        }
    }

    /// Resolve a C spelling to the operator.
    pub fn from_c_symbol(s: &str) -> Option<ReductionOp> {
        ReductionOp::ALL
            .iter()
            .copied()
            .find(|op| op.c_symbol() == s)
    }

    /// Short identifier safe for use in test names (`add`, `bitxor`, ...).
    pub fn ident(self) -> &'static str {
        match self {
            ReductionOp::Add => "add",
            ReductionOp::Mul => "mul",
            ReductionOp::Max => "max",
            ReductionOp::Min => "min",
            ReductionOp::LogicalAnd => "land",
            ReductionOp::LogicalOr => "lor",
            ReductionOp::BitAnd => "band",
            ReductionOp::BitOr => "bor",
            ReductionOp::BitXor => "bxor",
        }
    }

    /// True when the operator is only defined on integer operands.
    pub fn integer_only(self) -> bool {
        matches!(
            self,
            ReductionOp::BitAnd | ReductionOp::BitOr | ReductionOp::BitXor
        )
    }

    /// Identity element for integer operands.
    pub fn int_identity(self) -> i64 {
        match self {
            ReductionOp::Add => 0,
            ReductionOp::Mul => 1,
            ReductionOp::Max => i64::MIN,
            ReductionOp::Min => i64::MAX,
            ReductionOp::LogicalAnd => 1,
            ReductionOp::LogicalOr => 0,
            ReductionOp::BitAnd => -1, // all bits set
            ReductionOp::BitOr => 0,
            ReductionOp::BitXor => 0,
        }
    }

    /// Identity element for floating-point operands.
    ///
    /// Panics for the integer-only bitwise operators.
    pub fn float_identity(self) -> f64 {
        match self {
            ReductionOp::Add => 0.0,
            ReductionOp::Mul => 1.0,
            ReductionOp::Max => f64::NEG_INFINITY,
            ReductionOp::Min => f64::INFINITY,
            ReductionOp::LogicalAnd => 1.0,
            ReductionOp::LogicalOr => 0.0,
            op => panic!("{op:?} is not defined on floating-point operands"),
        }
    }

    /// Combine two integer partial results.
    pub fn combine_int(self, a: i64, b: i64) -> i64 {
        match self {
            ReductionOp::Add => a.wrapping_add(b),
            ReductionOp::Mul => a.wrapping_mul(b),
            ReductionOp::Max => a.max(b),
            ReductionOp::Min => a.min(b),
            ReductionOp::LogicalAnd => ((a != 0) && (b != 0)) as i64,
            ReductionOp::LogicalOr => ((a != 0) || (b != 0)) as i64,
            ReductionOp::BitAnd => a & b,
            ReductionOp::BitOr => a | b,
            ReductionOp::BitXor => a ^ b,
        }
    }

    /// Combine two floating-point partial results.
    ///
    /// Panics for the integer-only bitwise operators.
    pub fn combine_float(self, a: f64, b: f64) -> f64 {
        match self {
            ReductionOp::Add => a + b,
            ReductionOp::Mul => a * b,
            ReductionOp::Max => a.max(b),
            ReductionOp::Min => a.min(b),
            ReductionOp::LogicalAnd => (((a != 0.0) && (b != 0.0)) as i64) as f64,
            ReductionOp::LogicalOr => (((a != 0.0) || (b != 0.0)) as i64) as f64,
            op => panic!("{op:?} is not defined on floating-point operands"),
        }
    }

    /// True when the operator is commutative and associative, i.e. the result
    /// is independent of the combination order across gangs. All OpenACC
    /// reduction operators are, for exact arithmetic; floating-point `+`/`*`
    /// are only approximately so, which is why the paper's float reduction
    /// test compares against a rounding tolerance (Fig. 7).
    pub fn order_insensitive_exact(self) -> bool {
        true
    }
}

impl fmt::Display for ReductionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_neutral_int() {
        for op in ReductionOp::ALL {
            for v in [-7i64, 0, 1, 42] {
                // Logical ops collapse values to 0/1; neutrality holds on the
                // {0,1} domain for those.
                let v = if matches!(op, ReductionOp::LogicalAnd | ReductionOp::LogicalOr) {
                    (v != 0) as i64
                } else {
                    v
                };
                assert_eq!(op.combine_int(op.int_identity(), v), v, "{op:?} identity");
            }
        }
    }

    #[test]
    fn identities_are_neutral_float() {
        for op in [
            ReductionOp::Add,
            ReductionOp::Mul,
            ReductionOp::Max,
            ReductionOp::Min,
        ] {
            for v in [-2.5f64, 0.25, 7.0] {
                assert_eq!(op.combine_float(op.float_identity(), v), v, "{op:?}");
            }
        }
    }

    #[test]
    fn c_symbols_resolve() {
        for op in ReductionOp::ALL {
            assert_eq!(ReductionOp::from_c_symbol(op.c_symbol()), Some(op));
        }
        assert_eq!(ReductionOp::from_c_symbol("<<"), None);
    }

    #[test]
    fn integer_only_ops() {
        assert!(ReductionOp::BitAnd.integer_only());
        assert!(ReductionOp::BitXor.integer_only());
        assert!(!ReductionOp::Add.integer_only());
        assert!(!ReductionOp::LogicalAnd.integer_only());
    }

    #[test]
    #[should_panic(expected = "not defined on floating-point")]
    fn float_identity_panics_for_bitand() {
        let _ = ReductionOp::BitAnd.float_identity();
    }

    #[test]
    fn combine_int_semantics() {
        assert_eq!(ReductionOp::Add.combine_int(3, 4), 7);
        assert_eq!(ReductionOp::Mul.combine_int(3, 4), 12);
        assert_eq!(ReductionOp::Max.combine_int(3, 4), 4);
        assert_eq!(ReductionOp::Min.combine_int(3, 4), 3);
        assert_eq!(ReductionOp::LogicalAnd.combine_int(3, 0), 0);
        assert_eq!(ReductionOp::LogicalAnd.combine_int(3, 9), 1);
        assert_eq!(ReductionOp::LogicalOr.combine_int(0, 0), 0);
        assert_eq!(ReductionOp::LogicalOr.combine_int(0, 5), 1);
        assert_eq!(ReductionOp::BitAnd.combine_int(0b1100, 0b1010), 0b1000);
        assert_eq!(ReductionOp::BitOr.combine_int(0b1100, 0b1010), 0b1110);
        assert_eq!(ReductionOp::BitXor.combine_int(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn fortran_spellings() {
        assert_eq!(ReductionOp::LogicalAnd.fortran_symbol(), ".and.");
        assert_eq!(ReductionOp::BitAnd.fortran_symbol(), "iand");
        assert_eq!(ReductionOp::Add.fortran_symbol(), "+");
    }

    #[test]
    fn idents_are_unique() {
        let mut ids: Vec<_> = ReductionOp::ALL.iter().map(|o| o.ident()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ReductionOp::ALL.len());
    }
}
