//! The OpenACC 1.0 runtime library routines.

use std::fmt;

/// Runtime library routines defined by OpenACC 1.0 (§3 of the specification).
///
/// The testsuite exercises each of these through generated programs; the
/// simulated vendor compilers dispatch calls with these names to the
/// `acc-runtime` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuntimeRoutine {
    /// `acc_get_num_devices(devicetype)`.
    GetNumDevices,
    /// `acc_set_device_type(devicetype)`.
    SetDeviceType,
    /// `acc_get_device_type()`.
    GetDeviceType,
    /// `acc_set_device_num(num, devicetype)`.
    SetDeviceNum,
    /// `acc_get_device_num(devicetype)`.
    GetDeviceNum,
    /// `acc_async_test(expr)` — nonzero when activities with the tag are done.
    AsyncTest,
    /// `acc_async_test_all()` — nonzero when all async activities are done.
    AsyncTestAll,
    /// `acc_async_wait(expr)` — block until activities with the tag finish.
    AsyncWait,
    /// `acc_async_wait_all()` — block until all async activities finish.
    AsyncWaitAll,
    /// `acc_init(devicetype)`.
    Init,
    /// `acc_shutdown(devicetype)`.
    Shutdown,
    /// `acc_on_device(devicetype)` — callable from device code.
    OnDevice,
    /// `acc_malloc(bytes)` — allocate device memory (C only).
    Malloc,
    /// `acc_free(ptr)` — free device memory (C only).
    Free,
}

impl RuntimeRoutine {
    /// All routines in specification order.
    pub const ALL: [RuntimeRoutine; 14] = [
        RuntimeRoutine::GetNumDevices,
        RuntimeRoutine::SetDeviceType,
        RuntimeRoutine::GetDeviceType,
        RuntimeRoutine::SetDeviceNum,
        RuntimeRoutine::GetDeviceNum,
        RuntimeRoutine::AsyncTest,
        RuntimeRoutine::AsyncTestAll,
        RuntimeRoutine::AsyncWait,
        RuntimeRoutine::AsyncWaitAll,
        RuntimeRoutine::Init,
        RuntimeRoutine::Shutdown,
        RuntimeRoutine::OnDevice,
        RuntimeRoutine::Malloc,
        RuntimeRoutine::Free,
    ];

    /// The C-linkage symbol name.
    pub fn symbol(self) -> &'static str {
        match self {
            RuntimeRoutine::GetNumDevices => "acc_get_num_devices",
            RuntimeRoutine::SetDeviceType => "acc_set_device_type",
            RuntimeRoutine::GetDeviceType => "acc_get_device_type",
            RuntimeRoutine::SetDeviceNum => "acc_set_device_num",
            RuntimeRoutine::GetDeviceNum => "acc_get_device_num",
            RuntimeRoutine::AsyncTest => "acc_async_test",
            RuntimeRoutine::AsyncTestAll => "acc_async_test_all",
            RuntimeRoutine::AsyncWait => "acc_async_wait",
            RuntimeRoutine::AsyncWaitAll => "acc_async_wait_all",
            RuntimeRoutine::Init => "acc_init",
            RuntimeRoutine::Shutdown => "acc_shutdown",
            RuntimeRoutine::OnDevice => "acc_on_device",
            RuntimeRoutine::Malloc => "acc_malloc",
            RuntimeRoutine::Free => "acc_free",
        }
    }

    /// Resolve a symbol name to the routine.
    pub fn from_symbol(s: &str) -> Option<RuntimeRoutine> {
        RuntimeRoutine::ALL
            .iter()
            .copied()
            .find(|r| r.symbol() == s)
    }

    /// Number of arguments the routine takes.
    pub fn arity(self) -> usize {
        match self {
            RuntimeRoutine::GetDeviceType
            | RuntimeRoutine::AsyncTestAll
            | RuntimeRoutine::AsyncWaitAll => 0,
            RuntimeRoutine::GetNumDevices
            | RuntimeRoutine::SetDeviceType
            | RuntimeRoutine::GetDeviceNum
            | RuntimeRoutine::AsyncTest
            | RuntimeRoutine::AsyncWait
            | RuntimeRoutine::Init
            | RuntimeRoutine::Shutdown
            | RuntimeRoutine::OnDevice
            | RuntimeRoutine::Malloc
            | RuntimeRoutine::Free => 1,
            RuntimeRoutine::SetDeviceNum => 2,
        }
    }

    /// True for routines that are C-only in the 1.0 spec (memory management
    /// has no Fortran binding in 1.0).
    pub fn c_only(self) -> bool {
        matches!(self, RuntimeRoutine::Malloc | RuntimeRoutine::Free)
    }

    /// True for the asynchronous-activity family (the routines the PGI bug
    /// cluster of §V-B affects).
    pub fn is_async_family(self) -> bool {
        matches!(
            self,
            RuntimeRoutine::AsyncTest
                | RuntimeRoutine::AsyncTestAll
                | RuntimeRoutine::AsyncWait
                | RuntimeRoutine::AsyncWaitAll
        )
    }
}

impl fmt::Display for RuntimeRoutine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_resolve_round_trip() {
        for r in RuntimeRoutine::ALL {
            assert_eq!(RuntimeRoutine::from_symbol(r.symbol()), Some(r));
        }
        assert_eq!(RuntimeRoutine::from_symbol("acc_bogus"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(RuntimeRoutine::GetDeviceType.arity(), 0);
        assert_eq!(RuntimeRoutine::AsyncTest.arity(), 1);
        assert_eq!(RuntimeRoutine::SetDeviceNum.arity(), 2);
    }

    #[test]
    fn c_only_routines() {
        assert!(RuntimeRoutine::Malloc.c_only());
        assert!(RuntimeRoutine::Free.c_only());
        assert!(!RuntimeRoutine::Init.c_only());
    }

    #[test]
    fn async_family() {
        let fam: Vec<_> = RuntimeRoutine::ALL
            .iter()
            .filter(|r| r.is_async_family())
            .collect();
        assert_eq!(fam.len(), 4);
    }

    #[test]
    fn symbols_all_prefixed() {
        for r in RuntimeRoutine::ALL {
            assert!(r.symbol().starts_with("acc_"), "{r:?}");
        }
    }
}
