//! OpenACC clause kinds and their classification.

use crate::version::SpecVersion;
use std::fmt;

/// Every clause kind defined by OpenACC 1.0, plus the 2.0 additions
/// referenced by the paper's §VI discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClauseKind {
    /// `if(condition)` — execute on the device only when true.
    If,
    /// `async[(expr)]` — do not wait for region/transfer completion.
    Async,
    /// `num_gangs(expr)` — gang count for a `parallel` region.
    NumGangs,
    /// `num_workers(expr)` — workers per gang.
    NumWorkers,
    /// `vector_length(expr)` — vector lanes per worker.
    VectorLength,
    /// `reduction(op:list)` — parallel reduction over privatized copies.
    Reduction,
    /// `copy(list)` — copyin at entry, copyout at exit.
    Copy,
    /// `copyin(list)` — host→device at entry only.
    Copyin,
    /// `copyout(list)` — device→host at exit only.
    Copyout,
    /// `create(list)` — device allocation without transfer.
    Create,
    /// `present(list)` — assert data already on device.
    Present,
    /// `present_or_copy(list)` (`pcopy`).
    PresentOrCopy,
    /// `present_or_copyin(list)` (`pcopyin`).
    PresentOrCopyin,
    /// `present_or_copyout(list)` (`pcopyout`).
    PresentOrCopyout,
    /// `present_or_create(list)` (`pcreate`).
    PresentOrCreate,
    /// `deviceptr(list)` — the listed pointers hold device addresses.
    Deviceptr,
    /// `private(list)` — per-gang/worker/lane private copies.
    Private,
    /// `firstprivate(list)` — private copies initialized from the host value.
    Firstprivate,
    /// `use_device(list)` — on `host_data`: use device addresses in host code.
    UseDevice,
    /// `device_resident(list)` — on `declare`: data lives on the device.
    DeviceResident,
    /// `gang[(expr)]` — schedule a loop across gangs.
    Gang,
    /// `worker[(expr)]` — schedule a loop across workers.
    Worker,
    /// `vector[(expr)]` — schedule a loop across vector lanes.
    Vector,
    /// `seq` — execute the loop sequentially.
    Seq,
    /// `independent` — assert loop iterations are data-independent.
    Independent,
    /// `collapse(n)` — associate `n` tightly-nested loops.
    Collapse,
    /// `host(list)` — on `update`: refresh the host copy.
    HostClause,
    /// `device(list)` — on `update`: refresh the device copy.
    DeviceClause,
    /// OpenACC 2.0 `delete(list)` on `exit data`.
    Delete,
    /// OpenACC 2.0 `default(none)` on compute constructs.
    DefaultNone,
    /// OpenACC 2.0 `auto` loop mapping.
    Auto,
}

/// Broad classification of a clause's role, used by the report generator to
/// group results and by the cross-test planner to pick replacement clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseCategory {
    /// Controls whether/when the region executes (`if`, `async`).
    Control,
    /// Sizes the parallelism (`num_gangs`, `num_workers`, `vector_length`).
    Sizing,
    /// Moves or places data (`copy*`, `create`, `present*`, `deviceptr`,
    /// `use_device`, `device_resident`, `host`, `device`, `delete`).
    Data,
    /// Privatization (`private`, `firstprivate`).
    Privatization,
    /// Reductions.
    Reduction,
    /// Loop scheduling (`gang`, `worker`, `vector`, `seq`, `independent`,
    /// `collapse`, `auto`).
    LoopSchedule,
    /// Visibility defaults (`default(none)`).
    Default,
}

impl ClauseKind {
    /// Every clause kind, in specification order.
    pub const ALL: [ClauseKind; 31] = [
        ClauseKind::If,
        ClauseKind::Async,
        ClauseKind::NumGangs,
        ClauseKind::NumWorkers,
        ClauseKind::VectorLength,
        ClauseKind::Reduction,
        ClauseKind::Copy,
        ClauseKind::Copyin,
        ClauseKind::Copyout,
        ClauseKind::Create,
        ClauseKind::Present,
        ClauseKind::PresentOrCopy,
        ClauseKind::PresentOrCopyin,
        ClauseKind::PresentOrCopyout,
        ClauseKind::PresentOrCreate,
        ClauseKind::Deviceptr,
        ClauseKind::Private,
        ClauseKind::Firstprivate,
        ClauseKind::UseDevice,
        ClauseKind::DeviceResident,
        ClauseKind::Gang,
        ClauseKind::Worker,
        ClauseKind::Vector,
        ClauseKind::Seq,
        ClauseKind::Independent,
        ClauseKind::Collapse,
        ClauseKind::HostClause,
        ClauseKind::DeviceClause,
        ClauseKind::Delete,
        ClauseKind::DefaultNone,
        ClauseKind::Auto,
    ];

    /// Canonical spelling in directive source text.
    pub fn name(self) -> &'static str {
        match self {
            ClauseKind::If => "if",
            ClauseKind::Async => "async",
            ClauseKind::NumGangs => "num_gangs",
            ClauseKind::NumWorkers => "num_workers",
            ClauseKind::VectorLength => "vector_length",
            ClauseKind::Reduction => "reduction",
            ClauseKind::Copy => "copy",
            ClauseKind::Copyin => "copyin",
            ClauseKind::Copyout => "copyout",
            ClauseKind::Create => "create",
            ClauseKind::Present => "present",
            ClauseKind::PresentOrCopy => "present_or_copy",
            ClauseKind::PresentOrCopyin => "present_or_copyin",
            ClauseKind::PresentOrCopyout => "present_or_copyout",
            ClauseKind::PresentOrCreate => "present_or_create",
            ClauseKind::Deviceptr => "deviceptr",
            ClauseKind::Private => "private",
            ClauseKind::Firstprivate => "firstprivate",
            ClauseKind::UseDevice => "use_device",
            ClauseKind::DeviceResident => "device_resident",
            ClauseKind::Gang => "gang",
            ClauseKind::Worker => "worker",
            ClauseKind::Vector => "vector",
            ClauseKind::Seq => "seq",
            ClauseKind::Independent => "independent",
            ClauseKind::Collapse => "collapse",
            ClauseKind::HostClause => "host",
            ClauseKind::DeviceClause => "device",
            ClauseKind::Delete => "delete",
            ClauseKind::DefaultNone => "default",
            ClauseKind::Auto => "auto",
        }
    }

    /// Accepted abbreviation, if the specification defines one
    /// (`pcopy` for `present_or_copy`, etc.).
    pub fn abbreviation(self) -> Option<&'static str> {
        match self {
            ClauseKind::PresentOrCopy => Some("pcopy"),
            ClauseKind::PresentOrCopyin => Some("pcopyin"),
            ClauseKind::PresentOrCopyout => Some("pcopyout"),
            ClauseKind::PresentOrCreate => Some("pcreate"),
            _ => None,
        }
    }

    /// Resolve a spelled clause name (canonical or abbreviated) to its kind.
    pub fn from_name(name: &str) -> Option<ClauseKind> {
        ClauseKind::ALL
            .iter()
            .copied()
            .find(|c| c.name() == name || c.abbreviation() == Some(name))
    }

    /// Specification revision that introduced the clause.
    pub fn introduced_in(self) -> SpecVersion {
        match self {
            ClauseKind::Delete | ClauseKind::DefaultNone | ClauseKind::Auto => SpecVersion::V2_0,
            _ => SpecVersion::V1_0,
        }
    }

    /// Broad role classification.
    pub fn category(self) -> ClauseCategory {
        use ClauseKind::*;
        match self {
            If | Async => ClauseCategory::Control,
            NumGangs | NumWorkers | VectorLength => ClauseCategory::Sizing,
            Copy | Copyin | Copyout | Create | Present | PresentOrCopy | PresentOrCopyin
            | PresentOrCopyout | PresentOrCreate | Deviceptr | UseDevice | DeviceResident
            | HostClause | DeviceClause | Delete => ClauseCategory::Data,
            Private | Firstprivate => ClauseCategory::Privatization,
            Reduction => ClauseCategory::Reduction,
            Gang | Worker | Vector | Seq | Independent | Collapse | Auto => {
                ClauseCategory::LoopSchedule
            }
            DefaultNone => ClauseCategory::Default,
        }
    }

    /// True for the `present_or_*` family, which falls back to the paired
    /// data action when the data is absent from the device.
    pub fn is_present_or(self) -> bool {
        matches!(
            self,
            ClauseKind::PresentOrCopy
                | ClauseKind::PresentOrCopyin
                | ClauseKind::PresentOrCopyout
                | ClauseKind::PresentOrCreate
        )
    }
}

impl fmt::Display for ClauseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_round_trip() {
        for c in ClauseKind::ALL {
            assert_eq!(ClauseKind::from_name(c.name()), Some(c), "{c:?}");
        }
    }

    #[test]
    fn abbreviations_resolve() {
        assert_eq!(
            ClauseKind::from_name("pcopy"),
            Some(ClauseKind::PresentOrCopy)
        );
        assert_eq!(
            ClauseKind::from_name("pcopyin"),
            Some(ClauseKind::PresentOrCopyin)
        );
        assert_eq!(
            ClauseKind::from_name("pcopyout"),
            Some(ClauseKind::PresentOrCopyout)
        );
        assert_eq!(
            ClauseKind::from_name("pcreate"),
            Some(ClauseKind::PresentOrCreate)
        );
        assert_eq!(ClauseKind::from_name("nonsense"), None);
    }

    #[test]
    fn v2_clauses_flagged() {
        assert_eq!(ClauseKind::Delete.introduced_in(), SpecVersion::V2_0);
        assert_eq!(ClauseKind::Auto.introduced_in(), SpecVersion::V2_0);
        assert_eq!(ClauseKind::Copy.introduced_in(), SpecVersion::V1_0);
    }

    #[test]
    fn categories_cover_all() {
        // Exercise category() over the full enum; grouping must not panic and
        // data clauses must classify as Data.
        for c in ClauseKind::ALL {
            let _ = c.category();
        }
        assert_eq!(ClauseKind::Copyin.category(), ClauseCategory::Data);
        assert_eq!(
            ClauseKind::Private.category(),
            ClauseCategory::Privatization
        );
        assert_eq!(ClauseKind::Gang.category(), ClauseCategory::LoopSchedule);
    }

    #[test]
    fn present_or_family() {
        assert!(ClauseKind::PresentOrCopyin.is_present_or());
        assert!(!ClauseKind::Present.is_present_or());
        assert!(!ClauseKind::Copy.is_present_or());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ClauseKind::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ClauseKind::ALL.len());
    }
}
