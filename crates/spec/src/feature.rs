//! The feature registry: a stable identifier for every testable item in the
//! OpenACC 1.0 feature set.
//!
//! The paper's suite is organized "in the form of a tree structure: it begins
//! by covering OpenACC directives followed by clauses belonging to those
//! directives, as well as the runtime routines and environment variables"
//! (§I). `FeatureRegistry::openacc_1_0()` materializes that tree; test cases,
//! catalog bugs, and reports all reference features through [`FeatureId`].

use crate::clause::ClauseKind;
use crate::directive::DirectiveKind;
use crate::envvar::EnvVar;
use crate::routine::RuntimeRoutine;
use crate::version::SpecVersion;
use std::collections::BTreeMap;
use std::fmt;

/// Stable, human-readable identifier of a feature, e.g.
/// `"parallel.num_gangs"`, `"loop.reduction"`, `"rt.acc_async_test"`,
/// `"env.ACC_DEVICE_TYPE"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId(pub String);

impl FeatureId {
    /// Construct from any displayable path.
    pub fn new(path: impl Into<String>) -> Self {
        FeatureId(path.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Feature id for a bare directive.
    pub fn directive(d: DirectiveKind) -> Self {
        FeatureId(d.name().replace(' ', "_"))
    }

    /// Feature id for a clause on a directive.
    pub fn clause(d: DirectiveKind, c: ClauseKind) -> Self {
        FeatureId(format!("{}.{}", d.name().replace(' ', "_"), c.name()))
    }

    /// Feature id for a runtime routine.
    pub fn routine(r: RuntimeRoutine) -> Self {
        FeatureId(format!("rt.{}", r.symbol()))
    }

    /// Feature id for an environment variable.
    pub fn env(v: EnvVar) -> Self {
        FeatureId(format!("env.{}", v.name()))
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for FeatureId {
    fn from(s: &str) -> Self {
        FeatureId(s.to_string())
    }
}

/// The broad area a feature belongs to, mirroring the chapters of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureArea {
    /// `parallel` construct and its clauses.
    Parallel,
    /// `kernels` construct and its clauses.
    Kernels,
    /// `data` construct and its clauses.
    Data,
    /// `host_data` construct.
    HostData,
    /// `loop` construct and its clauses.
    Loop,
    /// Combined constructs.
    Combined,
    /// `update` construct.
    Update,
    /// `declare` directive.
    Declare,
    /// `cache` and `wait` directives.
    Misc,
    /// Runtime library routines.
    Runtime,
    /// Environment variables.
    Environment,
}

impl FeatureArea {
    /// All areas in report order.
    pub const ALL: [FeatureArea; 11] = [
        FeatureArea::Parallel,
        FeatureArea::Kernels,
        FeatureArea::Data,
        FeatureArea::HostData,
        FeatureArea::Loop,
        FeatureArea::Combined,
        FeatureArea::Update,
        FeatureArea::Declare,
        FeatureArea::Misc,
        FeatureArea::Runtime,
        FeatureArea::Environment,
    ];

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FeatureArea::Parallel => "Parallel Construct",
            FeatureArea::Kernels => "Kernels Construct",
            FeatureArea::Data => "Data Construct",
            FeatureArea::HostData => "Host Data Construct",
            FeatureArea::Loop => "Loop Construct",
            FeatureArea::Combined => "Combined Constructs",
            FeatureArea::Update => "Update Construct",
            FeatureArea::Declare => "Declare Directive",
            FeatureArea::Misc => "Cache/Wait Directives",
            FeatureArea::Runtime => "Runtime Library",
            FeatureArea::Environment => "Environment Variables",
        }
    }
}

impl fmt::Display for FeatureArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A registered feature: identity plus classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Stable identifier.
    pub id: FeatureId,
    /// Area for grouping.
    pub area: FeatureArea,
    /// Specification revision that introduced it.
    pub since: SpecVersion,
    /// One-line description for reports.
    pub description: String,
}

/// The registry of all features the suite knows about.
///
/// Iteration order is deterministic (sorted by id) so generated reports and
/// campaign runs are reproducible.
#[derive(Debug, Clone, Default)]
pub struct FeatureRegistry {
    features: BTreeMap<FeatureId, Feature>,
}

impl FeatureRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a feature; replaces any previous entry with the same id.
    pub fn register(&mut self, feature: Feature) {
        self.features.insert(feature.id.clone(), feature);
    }

    /// Look up a feature.
    pub fn get(&self, id: &FeatureId) -> Option<&Feature> {
        self.features.get(id)
    }

    /// True when the id is registered.
    pub fn contains(&self, id: &FeatureId) -> bool {
        self.features.contains_key(id)
    }

    /// Number of registered features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterate features in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Feature> {
        self.features.values()
    }

    /// Features in a given area, in id order.
    pub fn in_area(&self, area: FeatureArea) -> Vec<&Feature> {
        self.features.values().filter(|f| f.area == area).collect()
    }

    /// Build the complete OpenACC 1.0 registry: every directive, every
    /// (directive, clause) pair the spec allows, every runtime routine and
    /// environment variable.
    pub fn openacc_1_0() -> Self {
        let mut reg = FeatureRegistry::new();
        let v1_directives = DirectiveKind::ALL
            .iter()
            .copied()
            .filter(|d| d.introduced_in() == SpecVersion::V1_0);
        for d in v1_directives {
            let area = area_of_directive(d);
            reg.register(Feature {
                id: FeatureId::directive(d),
                area,
                since: SpecVersion::V1_0,
                description: format!("`{}` directive", d.name()),
            });
            for &c in d.allowed_clauses() {
                if c.introduced_in() != SpecVersion::V1_0 {
                    continue;
                }
                reg.register(Feature {
                    id: FeatureId::clause(d, c),
                    area,
                    since: SpecVersion::V1_0,
                    description: format!("`{}` clause on `{}`", c.name(), d.name()),
                });
            }
        }
        for r in RuntimeRoutine::ALL {
            reg.register(Feature {
                id: FeatureId::routine(r),
                area: FeatureArea::Runtime,
                since: SpecVersion::V1_0,
                description: format!("runtime routine `{}`", r.symbol()),
            });
        }
        for v in EnvVar::ALL {
            reg.register(Feature {
                id: FeatureId::env(v),
                area: FeatureArea::Environment,
                since: SpecVersion::V1_0,
                description: format!("environment variable `{}`", v.name()),
            });
        }
        reg
    }
}

fn area_of_directive(d: DirectiveKind) -> FeatureArea {
    match d {
        DirectiveKind::Parallel => FeatureArea::Parallel,
        DirectiveKind::Kernels => FeatureArea::Kernels,
        DirectiveKind::Data => FeatureArea::Data,
        DirectiveKind::HostData => FeatureArea::HostData,
        DirectiveKind::Loop => FeatureArea::Loop,
        DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop => FeatureArea::Combined,
        DirectiveKind::Update => FeatureArea::Update,
        DirectiveKind::Declare => FeatureArea::Declare,
        DirectiveKind::Cache | DirectiveKind::Wait => FeatureArea::Misc,
        DirectiveKind::EnterData | DirectiveKind::ExitData | DirectiveKind::Routine => {
            FeatureArea::Misc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_full_1_0_surface() {
        let reg = FeatureRegistry::openacc_1_0();
        // 11 v1.0 directives + their clause pairs + 14 routines + 2 env vars.
        // The exact count is pinned so accidental surface changes are caught.
        assert!(reg.len() > 100, "got {}", reg.len());
        assert!(reg.contains(&FeatureId::from("parallel.num_gangs")));
        assert!(reg.contains(&FeatureId::from("kernels.copyin")));
        assert!(reg.contains(&FeatureId::from("loop.reduction")));
        assert!(reg.contains(&FeatureId::from("data.present_or_copy")));
        assert!(reg.contains(&FeatureId::from("host_data.use_device")));
        assert!(reg.contains(&FeatureId::from("rt.acc_async_test")));
        assert!(reg.contains(&FeatureId::from("env.ACC_DEVICE_TYPE")));
    }

    #[test]
    fn no_v2_features_in_1_0_registry() {
        let reg = FeatureRegistry::openacc_1_0();
        assert!(!reg.contains(&FeatureId::from("enter_data")));
        assert!(!reg.contains(&FeatureId::from("routine")));
        assert!(!reg.contains(&FeatureId::from("exit_data.delete")));
    }

    #[test]
    fn clause_ids_use_underscored_directive_names() {
        let id = FeatureId::clause(DirectiveKind::ParallelLoop, ClauseKind::Collapse);
        assert_eq!(id.as_str(), "parallel_loop.collapse");
    }

    #[test]
    fn areas_partition_the_registry() {
        let reg = FeatureRegistry::openacc_1_0();
        let total: usize = FeatureArea::ALL.iter().map(|a| reg.in_area(*a).len()).sum();
        assert_eq!(total, reg.len());
    }

    #[test]
    fn iteration_is_sorted() {
        let reg = FeatureRegistry::openacc_1_0();
        let ids: Vec<_> = reg.iter().map(|f| f.id.clone()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn register_replaces() {
        let mut reg = FeatureRegistry::new();
        let mk = |desc: &str| Feature {
            id: FeatureId::from("x"),
            area: FeatureArea::Misc,
            since: SpecVersion::V1_0,
            description: desc.to_string(),
        };
        reg.register(mk("a"));
        reg.register(mk("b"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(&FeatureId::from("x")).unwrap().description, "b");
    }

    #[test]
    fn runtime_area_has_all_routines() {
        let reg = FeatureRegistry::openacc_1_0();
        assert_eq!(
            reg.in_area(FeatureArea::Runtime).len(),
            RuntimeRoutine::ALL.len()
        );
        assert_eq!(
            reg.in_area(FeatureArea::Environment).len(),
            EnvVar::ALL.len()
        );
    }
}
