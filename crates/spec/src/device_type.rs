//! Device types, including the implementation-defined extensions the paper
//! observed (§V-C "Device type").

use std::fmt;

/// A device type value, as passed to `acc_set_device_type` and friends.
///
/// OpenACC 1.0 defines only the first four; everything else is an
/// implementation-defined extension that the paper found in shipping
/// compilers (CAPS 3.3.3 added `acc_device_cuda`/`acc_device_opencl`; PGI
/// 13.4 added five NVIDIA/AMD/Xeon-Phi variants). Modeling the extensions
/// lets the device-type test observe the same vendor divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceType {
    /// `acc_device_none`.
    None,
    /// `acc_device_default`.
    Default,
    /// `acc_device_host` — the host CPU acting as the device.
    Host,
    /// `acc_device_not_host` — any attached accelerator.
    NotHost,
    /// CAPS extension: `acc_device_cuda`.
    Cuda,
    /// CAPS extension: `acc_device_opencl`.
    Opencl,
    /// PGI extension: `acc_device_nvidia`.
    Nvidia,
    /// PGI extension: `acc_device_radeon`.
    Radeon,
    /// PGI extension: `acc_device_xeonphi`.
    XeonPhi,
    /// PGI extension: `acc_device_pgi_opencl`.
    PgiOpencl,
    /// PGI extension: `acc_device_nvidia_opencl`.
    NvidiaOpencl,
}

impl DeviceType {
    /// The four device types the 1.0 specification defines.
    pub const STANDARD: [DeviceType; 4] = [
        DeviceType::None,
        DeviceType::Default,
        DeviceType::Host,
        DeviceType::NotHost,
    ];

    /// The symbolic constant name.
    pub fn symbol(self) -> &'static str {
        match self {
            DeviceType::None => "acc_device_none",
            DeviceType::Default => "acc_device_default",
            DeviceType::Host => "acc_device_host",
            DeviceType::NotHost => "acc_device_not_host",
            DeviceType::Cuda => "acc_device_cuda",
            DeviceType::Opencl => "acc_device_opencl",
            DeviceType::Nvidia => "acc_device_nvidia",
            DeviceType::Radeon => "acc_device_radeon",
            DeviceType::XeonPhi => "acc_device_xeonphi",
            DeviceType::PgiOpencl => "acc_device_pgi_opencl",
            DeviceType::NvidiaOpencl => "acc_device_nvidia_opencl",
        }
    }

    /// Resolve a symbolic constant name.
    pub fn from_symbol(s: &str) -> Option<DeviceType> {
        [
            DeviceType::None,
            DeviceType::Default,
            DeviceType::Host,
            DeviceType::NotHost,
            DeviceType::Cuda,
            DeviceType::Opencl,
            DeviceType::Nvidia,
            DeviceType::Radeon,
            DeviceType::XeonPhi,
            DeviceType::PgiOpencl,
            DeviceType::NvidiaOpencl,
        ]
        .into_iter()
        .find(|d| d.symbol() == s)
    }

    /// The integer encoding a 1.0 runtime conventionally exposes; extension
    /// values are implementation-defined and start at 100 here.
    pub fn encoding(self) -> i64 {
        match self {
            DeviceType::None => 0,
            DeviceType::Default => 1,
            DeviceType::Host => 2,
            DeviceType::NotHost => 3,
            DeviceType::Cuda => 100,
            DeviceType::Opencl => 101,
            DeviceType::Nvidia => 102,
            DeviceType::Radeon => 103,
            DeviceType::XeonPhi => 104,
            DeviceType::PgiOpencl => 105,
            DeviceType::NvidiaOpencl => 106,
        }
    }

    /// True when the value is a standard 1.0 device type.
    pub fn is_standard(self) -> bool {
        DeviceType::STANDARD.contains(&self)
    }

    /// Whether the value *satisfies* a `not_host` query: every accelerator
    /// type does; `host` and `none` do not.
    pub fn satisfies_not_host(self) -> bool {
        !matches!(self, DeviceType::None | DeviceType::Host)
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set() {
        assert_eq!(DeviceType::STANDARD.len(), 4);
        assert!(DeviceType::Host.is_standard());
        assert!(!DeviceType::Cuda.is_standard());
    }

    #[test]
    fn symbols_round_trip() {
        for d in [
            DeviceType::None,
            DeviceType::NotHost,
            DeviceType::Cuda,
            DeviceType::NvidiaOpencl,
        ] {
            assert_eq!(DeviceType::from_symbol(d.symbol()), Some(d));
        }
        assert_eq!(DeviceType::from_symbol("acc_device_quantum"), None);
    }

    #[test]
    fn not_host_satisfaction() {
        assert!(DeviceType::NotHost.satisfies_not_host());
        assert!(DeviceType::Cuda.satisfies_not_host());
        assert!(DeviceType::Nvidia.satisfies_not_host());
        assert!(!DeviceType::Host.satisfies_not_host());
        assert!(!DeviceType::None.satisfies_not_host());
        // `default` resolves to an accelerator when one is attached.
        assert!(DeviceType::Default.satisfies_not_host());
    }

    #[test]
    fn encodings_are_unique() {
        let all = [
            DeviceType::None,
            DeviceType::Default,
            DeviceType::Host,
            DeviceType::NotHost,
            DeviceType::Cuda,
            DeviceType::Opencl,
            DeviceType::Nvidia,
            DeviceType::Radeon,
            DeviceType::XeonPhi,
            DeviceType::PgiOpencl,
            DeviceType::NvidiaOpencl,
        ];
        let mut enc: Vec<_> = all.iter().map(|d| d.encoding()).collect();
        enc.sort_unstable();
        enc.dedup();
        assert_eq!(enc.len(), all.len());
    }
}
