//! Specification ambiguities the paper identified in OpenACC 1.0 and how
//! OpenACC 2.0 resolved them (§I Fig. 1 and §V-C).
//!
//! These records drive the `ambiguity_explorer` example and the
//! `v2_preview` portion of the testsuite, and give reports a place to link
//! "implementations legitimately diverge here" rather than calling every
//! divergence a bug — the paper's second contribution.

use crate::version::SpecVersion;
use std::fmt;

/// Identifier for a documented ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AmbiguityId {
    /// Fig. 1: may a `worker` loop appear without an enclosing `gang` loop?
    WorkerWithoutGang,
    /// §V-C: the concrete value returned for `acc_device_not_host` is
    /// implementation-defined; vendors added their own device-type constants.
    DeviceTypeNames,
    /// §V-C: arrays not named in any data clause default to
    /// `present_or_copy`; 1.0 lacks `default(...)` to override.
    ImplicitDataDefault,
    /// §V-C: no way to compile user procedures for the device in 1.0.
    ProcedureCalls,
    /// §V-C: 1.0 only has structured data lifetimes.
    UnstructuredDataLifetime,
    /// §V-C: 1.0 does not constrain gang/worker/vector nesting order.
    LoopNestingOrder,
}

/// A documented ambiguity with its 2.0 resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// Identifier.
    pub id: AmbiguityId,
    /// Short title.
    pub title: &'static str,
    /// What 1.0 leaves unspecified.
    pub description: &'static str,
    /// How 2.0 resolved it (all of the paper's reported ambiguities were
    /// resolved in 2.0).
    pub resolution: &'static str,
    /// Version that resolved it.
    pub resolved_in: SpecVersion,
}

impl AmbiguityId {
    /// All documented ambiguities.
    pub const ALL: [AmbiguityId; 6] = [
        AmbiguityId::WorkerWithoutGang,
        AmbiguityId::DeviceTypeNames,
        AmbiguityId::ImplicitDataDefault,
        AmbiguityId::ProcedureCalls,
        AmbiguityId::UnstructuredDataLifetime,
        AmbiguityId::LoopNestingOrder,
    ];

    /// The full record for this ambiguity.
    pub fn record(self) -> Ambiguity {
        match self {
            AmbiguityId::WorkerWithoutGang => Ambiguity {
                id: self,
                title: "worker loop without an outer gang loop",
                description: "1.0 does not state whether a `loop worker` may appear directly \
                              inside a parallel region with no enclosing `loop gang`; compilers \
                              produced different results (Fig. 1).",
                resolution: "2.0 restricts nesting: gang outermost, vector innermost; a level \
                             may only contain strictly finer levels unless a nested compute \
                             region intervenes, and `auto` lets the compiler choose.",
                resolved_in: SpecVersion::V2_0,
            },
            AmbiguityId::DeviceTypeNames => Ambiguity {
                id: self,
                title: "implementation-defined device type names",
                description: "the device type observed after \
                              `acc_set_device_type(acc_device_not_host)` is implementation-\
                              defined; CAPS and PGI each invented their own constants.",
                resolution: "the 2.0 appendix recommends device-type names for NVIDIA GPUs, \
                             AMD GPUs and Intel Xeon Phi.",
                resolved_in: SpecVersion::V2_0,
            },
            AmbiguityId::ImplicitDataDefault => Ambiguity {
                id: self,
                title: "implicit present_or_copy default",
                description: "arrays referenced in a compute construct but absent from every \
                              data clause are treated as `present_or_copy`; 1.0 offers no \
                              `default` clause to override, risking hidden transfers.",
                resolution: "2.0 adds `default(none)` requiring explicit data attributes.",
                resolved_in: SpecVersion::V2_0,
            },
            AmbiguityId::ProcedureCalls => Ambiguity {
                id: self,
                title: "procedure calls in compute regions",
                description: "1.0 has no way to request device compilation of user \
                              procedures; most compilers rejected calls inside \
                              parallel/kernels regions.",
                resolution: "2.0 adds the `routine` directive.",
                resolved_in: SpecVersion::V2_0,
            },
            AmbiguityId::UnstructuredDataLifetime => Ambiguity {
                id: self,
                title: "only structured data lifetimes",
                description: "`data` regions are lexically scoped; multi-file programs cannot \
                              copy in at one site and out at another.",
                resolution: "2.0 adds `enter data` / `exit data`.",
                resolved_in: SpecVersion::V2_0,
            },
            AmbiguityId::LoopNestingOrder => Ambiguity {
                id: self,
                title: "gang/worker/vector nesting order unspecified",
                description: "1.0 does not specify the order in which the three levels may \
                              nest; different mappings give different performance and, at the \
                              edges, different semantics.",
                resolution: "2.0: gang outermost, vector innermost; a gang (worker, vector) \
                             loop cannot contain another loop of the same or coarser level \
                             within the same compute region.",
                resolved_in: SpecVersion::V2_0,
            },
        }
    }
}

impl fmt::Display for AmbiguityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.record().title)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ambiguities_resolved_in_v2() {
        for a in AmbiguityId::ALL {
            assert_eq!(a.record().resolved_in, SpecVersion::V2_0, "{a:?}");
        }
    }

    #[test]
    fn records_are_self_consistent() {
        for a in AmbiguityId::ALL {
            let r = a.record();
            assert_eq!(r.id, a);
            assert!(!r.title.is_empty());
            assert!(!r.description.is_empty());
            assert!(!r.resolution.is_empty());
        }
    }

    #[test]
    fn six_documented_ambiguities() {
        assert_eq!(AmbiguityId::ALL.len(), 6);
    }

    #[test]
    fn display_uses_title() {
        assert_eq!(
            AmbiguityId::WorkerWithoutGang.to_string(),
            "worker loop without an outer gang loop"
        );
    }
}
