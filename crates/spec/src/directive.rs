//! OpenACC directive kinds and the clause sets each directive admits.

use crate::clause::ClauseKind;
use crate::version::SpecVersion;
use std::fmt;

/// Every directive defined by OpenACC 1.0, plus the 2.0 additions the paper
/// discusses in §VI (kept distinct so 1.0 conformance checking can reject
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DirectiveKind {
    /// `parallel` compute construct: launches a fixed number of gangs.
    Parallel,
    /// `kernels` compute construct: the compiler splits the region into
    /// kernels.
    Kernels,
    /// Structured `data` region managing device copies.
    Data,
    /// `host_data` region exposing device addresses to host code.
    HostData,
    /// `loop` directive describing how to share iterations.
    Loop,
    /// Combined `parallel loop`.
    ParallelLoop,
    /// Combined `kernels loop`.
    KernelsLoop,
    /// `cache` directive (hint: cache array sections in fast memory).
    Cache,
    /// `update` directive synchronizing host and device copies.
    Update,
    /// `wait` directive blocking on async activity.
    Wait,
    /// `declare` directive creating an implicit data region for a scope.
    Declare,
    /// OpenACC 2.0 `enter data` (unstructured data lifetime begin).
    EnterData,
    /// OpenACC 2.0 `exit data` (unstructured data lifetime end).
    ExitData,
    /// OpenACC 2.0 `routine` directive (device-callable procedures).
    Routine,
}

impl DirectiveKind {
    /// All directives, in specification order.
    pub const ALL: [DirectiveKind; 14] = [
        DirectiveKind::Parallel,
        DirectiveKind::Kernels,
        DirectiveKind::Data,
        DirectiveKind::HostData,
        DirectiveKind::Loop,
        DirectiveKind::ParallelLoop,
        DirectiveKind::KernelsLoop,
        DirectiveKind::Cache,
        DirectiveKind::Update,
        DirectiveKind::Wait,
        DirectiveKind::Declare,
        DirectiveKind::EnterData,
        DirectiveKind::ExitData,
        DirectiveKind::Routine,
    ];

    /// Directive name as it appears after the language sentinel
    /// (e.g. `parallel loop` in `#pragma acc parallel loop`).
    pub fn name(self) -> &'static str {
        match self {
            DirectiveKind::Parallel => "parallel",
            DirectiveKind::Kernels => "kernels",
            DirectiveKind::Data => "data",
            DirectiveKind::HostData => "host_data",
            DirectiveKind::Loop => "loop",
            DirectiveKind::ParallelLoop => "parallel loop",
            DirectiveKind::KernelsLoop => "kernels loop",
            DirectiveKind::Cache => "cache",
            DirectiveKind::Update => "update",
            DirectiveKind::Wait => "wait",
            DirectiveKind::Declare => "declare",
            DirectiveKind::EnterData => "enter data",
            DirectiveKind::ExitData => "exit data",
            DirectiveKind::Routine => "routine",
        }
    }

    /// Specification revision that introduced the directive.
    pub fn introduced_in(self) -> SpecVersion {
        match self {
            DirectiveKind::EnterData | DirectiveKind::ExitData | DirectiveKind::Routine => {
                SpecVersion::V2_0
            }
            _ => SpecVersion::V1_0,
        }
    }

    /// True for the compute constructs that launch work on the accelerator.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            DirectiveKind::Parallel
                | DirectiveKind::Kernels
                | DirectiveKind::ParallelLoop
                | DirectiveKind::KernelsLoop
        )
    }

    /// True for directives that open a structured block (need an `end`
    /// directive in Fortran).
    pub fn is_block(self) -> bool {
        matches!(
            self,
            DirectiveKind::Parallel
                | DirectiveKind::Kernels
                | DirectiveKind::Data
                | DirectiveKind::HostData
        )
    }

    /// True for the combined constructs (`parallel loop`, `kernels loop`).
    pub fn is_combined(self) -> bool {
        matches!(
            self,
            DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop
        )
    }

    /// The constituent constructs: a combined construct *is* its compute
    /// construct plus a loop construct, so behaviour (and defects) keyed to
    /// a component apply to the combination too.
    pub fn components(self) -> &'static [DirectiveKind] {
        match self {
            DirectiveKind::ParallelLoop => &[
                DirectiveKind::ParallelLoop,
                DirectiveKind::Parallel,
                DirectiveKind::Loop,
            ],
            DirectiveKind::KernelsLoop => &[
                DirectiveKind::KernelsLoop,
                DirectiveKind::Kernels,
                DirectiveKind::Loop,
            ],
            other => std::slice::from_ref(match other {
                DirectiveKind::Parallel => &DirectiveKind::Parallel,
                DirectiveKind::Kernels => &DirectiveKind::Kernels,
                DirectiveKind::Data => &DirectiveKind::Data,
                DirectiveKind::HostData => &DirectiveKind::HostData,
                DirectiveKind::Loop => &DirectiveKind::Loop,
                DirectiveKind::Cache => &DirectiveKind::Cache,
                DirectiveKind::Update => &DirectiveKind::Update,
                DirectiveKind::Wait => &DirectiveKind::Wait,
                DirectiveKind::Declare => &DirectiveKind::Declare,
                DirectiveKind::EnterData => &DirectiveKind::EnterData,
                DirectiveKind::ExitData => &DirectiveKind::ExitData,
                DirectiveKind::Routine => &DirectiveKind::Routine,
                _ => unreachable!(),
            }),
        }
    }

    /// The clause kinds the 1.0 specification allows on this directive.
    ///
    /// Combined constructs accept the union of their component constructs'
    /// clauses. 2.0 directives return their 2.0 clause sets (used by the
    /// preview tests only).
    pub fn allowed_clauses(self) -> &'static [ClauseKind] {
        use ClauseKind::*;
        match self {
            DirectiveKind::Parallel => &[
                If,
                Async,
                NumGangs,
                NumWorkers,
                VectorLength,
                Reduction,
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
                Private,
                Firstprivate,
                DefaultNone,
            ],
            DirectiveKind::Kernels => &[
                If,
                Async,
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
                DefaultNone,
            ],
            DirectiveKind::Data => &[
                If,
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
            ],
            DirectiveKind::HostData => &[UseDevice],
            DirectiveKind::Loop => &[
                Collapse,
                Gang,
                Worker,
                Vector,
                Seq,
                Independent,
                Private,
                Reduction,
                Auto,
            ],
            DirectiveKind::ParallelLoop => &[
                If,
                Async,
                NumGangs,
                NumWorkers,
                VectorLength,
                Reduction,
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
                Private,
                Firstprivate,
                Collapse,
                Gang,
                Worker,
                Vector,
                Seq,
                Independent,
                DefaultNone,
                Auto,
            ],
            DirectiveKind::KernelsLoop => &[
                If,
                Async,
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
                Collapse,
                Gang,
                Worker,
                Vector,
                Seq,
                Independent,
                Private,
                Reduction,
                DefaultNone,
                Auto,
            ],
            DirectiveKind::Cache => &[],
            DirectiveKind::Update => &[HostClause, DeviceClause, If, Async],
            DirectiveKind::Wait => &[],
            DirectiveKind::Declare => &[
                Copy,
                Copyin,
                Copyout,
                Create,
                Present,
                PresentOrCopy,
                PresentOrCopyin,
                PresentOrCopyout,
                PresentOrCreate,
                Deviceptr,
                DeviceResident,
            ],
            DirectiveKind::EnterData => &[If, Async, Copyin, Create],
            DirectiveKind::ExitData => &[If, Async, Copyout, Delete],
            DirectiveKind::Routine => &[Gang, Worker, Vector, Seq],
        }
    }

    /// True when `clause` may legally appear on this directive per 1.0
    /// (or per 2.0 for the 2.0-only directives).
    pub fn allows(self, clause: ClauseKind) -> bool {
        self.allowed_clauses().contains(&clause)
    }
}

impl fmt::Display for DirectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_allows_num_gangs_but_kernels_does_not() {
        assert!(DirectiveKind::Parallel.allows(ClauseKind::NumGangs));
        assert!(!DirectiveKind::Kernels.allows(ClauseKind::NumGangs));
    }

    #[test]
    fn loop_allows_scheduling_clauses_only() {
        assert!(DirectiveKind::Loop.allows(ClauseKind::Gang));
        assert!(DirectiveKind::Loop.allows(ClauseKind::Collapse));
        assert!(!DirectiveKind::Loop.allows(ClauseKind::Copy));
        assert!(!DirectiveKind::Loop.allows(ClauseKind::Async));
    }

    #[test]
    fn combined_constructs_take_union() {
        for c in DirectiveKind::Parallel.allowed_clauses() {
            assert!(
                DirectiveKind::ParallelLoop.allows(*c),
                "parallel loop must allow {c:?}"
            );
        }
        for c in DirectiveKind::Loop.allowed_clauses() {
            assert!(
                DirectiveKind::ParallelLoop.allows(*c),
                "parallel loop must allow {c:?}"
            );
        }
    }

    #[test]
    fn host_data_only_use_device() {
        assert_eq!(
            DirectiveKind::HostData.allowed_clauses(),
            &[ClauseKind::UseDevice]
        );
    }

    #[test]
    fn v2_directives_flagged() {
        assert_eq!(DirectiveKind::EnterData.introduced_in(), SpecVersion::V2_0);
        assert_eq!(DirectiveKind::Routine.introduced_in(), SpecVersion::V2_0);
        assert_eq!(DirectiveKind::Parallel.introduced_in(), SpecVersion::V1_0);
    }

    #[test]
    fn compute_and_block_classification() {
        assert!(DirectiveKind::Parallel.is_compute());
        assert!(DirectiveKind::KernelsLoop.is_compute());
        assert!(!DirectiveKind::Data.is_compute());
        assert!(DirectiveKind::Data.is_block());
        assert!(!DirectiveKind::Loop.is_block());
        assert!(DirectiveKind::ParallelLoop.is_combined());
        assert!(!DirectiveKind::Parallel.is_combined());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = DirectiveKind::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DirectiveKind::ALL.len());
    }

    #[test]
    fn combined_components() {
        assert_eq!(
            DirectiveKind::ParallelLoop.components(),
            &[
                DirectiveKind::ParallelLoop,
                DirectiveKind::Parallel,
                DirectiveKind::Loop
            ]
        );
        assert_eq!(DirectiveKind::Data.components(), &[DirectiveKind::Data]);
    }

    #[test]
    fn update_allows_host_and_device() {
        assert!(DirectiveKind::Update.allows(ClauseKind::HostClause));
        assert!(DirectiveKind::Update.allows(ClauseKind::DeviceClause));
        assert!(DirectiveKind::Update.allows(ClauseKind::Async));
    }
}
