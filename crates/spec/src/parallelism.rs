//! The three-level OpenACC parallelism hierarchy and vendor hardware
//! mappings.
//!
//! §II of the paper: "different compilers can have different interpretation
//! of OpenACC three level parallelism". PGI maps gang→thread block,
//! vector→threads and ignores worker; CAPS maps gang→grid.x, worker→block.y,
//! vector→block.x; Cray maps gang→thread block, worker→warp, vector→SIMT
//! group. These mappings are data here and are consumed by the lowering pass
//! in `acc-compiler`.

use std::fmt;

/// A level in the gang/worker/vector hierarchy, plus the sequential and
/// (2.0) automatic loop mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParallelismLevel {
    /// Coarse-grain parallelism across gangs.
    Gang,
    /// Fine-grain parallelism across workers within a gang.
    Worker,
    /// Vector/SIMD parallelism within a worker.
    Vector,
    /// Sequential execution (`seq` clause).
    Seq,
    /// OpenACC 2.0 `auto`: the compiler chooses.
    Auto,
}

impl ParallelismLevel {
    /// The three true parallelism levels, outermost first.
    pub const HIERARCHY: [ParallelismLevel; 3] = [
        ParallelismLevel::Gang,
        ParallelismLevel::Worker,
        ParallelismLevel::Vector,
    ];

    /// Nesting depth: gang=0 (outermost) … vector=2. `Seq`/`Auto` have no
    /// fixed depth and return `None`.
    pub fn depth(self) -> Option<usize> {
        match self {
            ParallelismLevel::Gang => Some(0),
            ParallelismLevel::Worker => Some(1),
            ParallelismLevel::Vector => Some(2),
            ParallelismLevel::Seq | ParallelismLevel::Auto => None,
        }
    }

    /// Per OpenACC 2.0's stricter nesting rules (§V-C "Loop nesting"): may a
    /// loop at level `self` legally contain a loop at level `inner`?
    /// (1.0 leaves this unspecified — the very ambiguity the paper's Fig. 1
    /// illustrates.)
    pub fn may_contain_v2(self, inner: ParallelismLevel) -> bool {
        match (self.depth(), inner.depth()) {
            (Some(o), Some(i)) => i > o,
            // seq/auto loops may appear anywhere.
            _ => true,
        }
    }
}

impl fmt::Display for ParallelismLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParallelismLevel::Gang => "gang",
            ParallelismLevel::Worker => "worker",
            ParallelismLevel::Vector => "vector",
            ParallelismLevel::Seq => "seq",
            ParallelismLevel::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// The hardware resource a parallelism level is mapped onto by a particular
/// vendor, in CUDA-model vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareAxis {
    /// A thread block / the grid's x dimension.
    BlockX,
    /// The y dimension of a thread block.
    ThreadY,
    /// The x dimension of a thread block.
    ThreadX,
    /// A warp within a block.
    Warp,
    /// A SIMT group of threads.
    SimtGroup,
    /// Not mapped: the level is ignored (executes redundantly with width 1).
    Ignored,
}

/// A vendor's complete mapping of the three levels onto hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorMapping {
    /// Human-readable name of the mapping ("PGI-style", ...).
    pub name: &'static str,
    /// Where `gang` lands.
    pub gang: HardwareAxis,
    /// Where `worker` lands.
    pub worker: HardwareAxis,
    /// Where `vector` lands.
    pub vector: HardwareAxis,
}

impl VendorMapping {
    /// PGI: gang→thread block, vector→threads in a block, worker ignored.
    pub const PGI_STYLE: VendorMapping = VendorMapping {
        name: "PGI-style",
        gang: HardwareAxis::BlockX,
        worker: HardwareAxis::Ignored,
        vector: HardwareAxis::ThreadX,
    };

    /// CAPS: gang→grid x, worker→block y, vector→block x.
    pub const CAPS_STYLE: VendorMapping = VendorMapping {
        name: "CAPS-style",
        gang: HardwareAxis::BlockX,
        worker: HardwareAxis::ThreadY,
        vector: HardwareAxis::ThreadX,
    };

    /// Cray: gang→thread block, worker→warp, vector→SIMT group.
    pub const CRAY_STYLE: VendorMapping = VendorMapping {
        name: "Cray-style",
        gang: HardwareAxis::BlockX,
        worker: HardwareAxis::Warp,
        vector: HardwareAxis::SimtGroup,
    };

    /// The axis a level maps to.
    pub fn axis(&self, level: ParallelismLevel) -> HardwareAxis {
        match level {
            ParallelismLevel::Gang => self.gang,
            ParallelismLevel::Worker => self.worker,
            ParallelismLevel::Vector => self.vector,
            ParallelismLevel::Seq | ParallelismLevel::Auto => HardwareAxis::Ignored,
        }
    }

    /// True when the vendor honors (does not ignore) the level.
    pub fn honors(&self, level: ParallelismLevel) -> bool {
        self.axis(level) != HardwareAxis::Ignored
    }

    /// Effective width of a requested level size under this mapping: an
    /// ignored level always has width 1 (its iterations run redundantly or
    /// sequentially depending on context).
    pub fn effective_width(&self, level: ParallelismLevel, requested: u32) -> u32 {
        if self.honors(level) {
            requested.max(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_depths() {
        assert_eq!(ParallelismLevel::Gang.depth(), Some(0));
        assert_eq!(ParallelismLevel::Worker.depth(), Some(1));
        assert_eq!(ParallelismLevel::Vector.depth(), Some(2));
        assert_eq!(ParallelismLevel::Seq.depth(), None);
    }

    #[test]
    fn v2_nesting_rules() {
        use ParallelismLevel::*;
        assert!(Gang.may_contain_v2(Worker));
        assert!(Gang.may_contain_v2(Vector));
        assert!(Worker.may_contain_v2(Vector));
        assert!(!Worker.may_contain_v2(Gang));
        assert!(!Vector.may_contain_v2(Vector));
        assert!(Gang.may_contain_v2(Seq));
        assert!(Seq.may_contain_v2(Gang));
    }

    #[test]
    fn pgi_ignores_worker() {
        assert!(!VendorMapping::PGI_STYLE.honors(ParallelismLevel::Worker));
        assert_eq!(
            VendorMapping::PGI_STYLE.effective_width(ParallelismLevel::Worker, 8),
            1
        );
        assert_eq!(
            VendorMapping::PGI_STYLE.effective_width(ParallelismLevel::Gang, 8),
            8
        );
    }

    #[test]
    fn caps_and_cray_honor_all_levels() {
        for m in [VendorMapping::CAPS_STYLE, VendorMapping::CRAY_STYLE] {
            for l in ParallelismLevel::HIERARCHY {
                assert!(m.honors(l), "{} must honor {l}", m.name);
            }
        }
    }

    #[test]
    fn zero_request_clamps_to_one() {
        assert_eq!(
            VendorMapping::CRAY_STYLE.effective_width(ParallelismLevel::Vector, 0),
            1
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ParallelismLevel::Gang.to_string(), "gang");
        assert_eq!(ParallelismLevel::Auto.to_string(), "auto");
    }
}
