//! Specification versions, and the semantic-version triples used to model
//! vendor compiler releases.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// OpenACC specification revisions the model knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecVersion {
    /// OpenACC 1.0 (November 2011) — the version the testsuite targets.
    V1_0,
    /// OpenACC 2.0 (2013) — referenced for ambiguity resolutions and the
    /// preview extension tests.
    V2_0,
}

impl fmt::Display for SpecVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecVersion::V1_0 => write!(f, "1.0"),
            SpecVersion::V2_0 => write!(f, "2.0"),
        }
    }
}

/// A `major.minor.patch` release version of a vendor compiler.
///
/// Vendor product lines in the paper use heterogeneous numbering (CAPS
/// `3.3.4`, PGI `13.8`, Cray `8.2.0`); two-component versions parse with an
/// implicit zero patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompilerVersion {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
    /// Patch component (zero when the vendor uses two-component numbering).
    pub patch: u32,
}

impl CompilerVersion {
    /// Construct from explicit components.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        CompilerVersion {
            major,
            minor,
            patch,
        }
    }

    /// True when `self` lies in the half-open range `[lo, hi)`.
    pub fn in_range(&self, lo: CompilerVersion, hi: CompilerVersion) -> bool {
        *self >= lo && *self < hi
    }
}

impl PartialOrd for CompilerVersion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompilerVersion {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.major, self.minor, self.patch).cmp(&(other.major, other.minor, other.patch))
    }
}

impl fmt::Display for CompilerVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // PGI-style releases are conventionally printed without the patch
        // component when it is zero and the major is two digits (e.g. 13.2);
        // the canonical form always carries all three components otherwise.
        if self.patch == 0 && self.major >= 10 {
            write!(f, "{}.{}", self.major, self.minor)
        } else {
            write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
        }
    }
}

/// Error produced when a version string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionParseError(pub String);

impl fmt::Display for VersionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid compiler version: {:?}", self.0)
    }
}

impl std::error::Error for VersionParseError {}

impl FromStr for CompilerVersion {
    type Err = VersionParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut next = |required: bool| -> Result<u32, VersionParseError> {
            match parts.next() {
                Some(p) => p
                    .parse::<u32>()
                    .map_err(|_| VersionParseError(s.to_string())),
                None if required => Err(VersionParseError(s.to_string())),
                None => Ok(0),
            }
        };
        let major = next(true)?;
        let minor = next(true)?;
        let patch = next(false)?;
        if parts.next().is_some() {
            return Err(VersionParseError(s.to_string()));
        }
        Ok(CompilerVersion {
            major,
            minor,
            patch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_three_component() {
        let v: CompilerVersion = "3.3.4".parse().unwrap();
        assert_eq!(v, CompilerVersion::new(3, 3, 4));
    }

    #[test]
    fn parse_two_component_implies_zero_patch() {
        let v: CompilerVersion = "13.8".parse().unwrap();
        assert_eq!(v, CompilerVersion::new(13, 8, 0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<CompilerVersion>().is_err());
        assert!("3".parse::<CompilerVersion>().is_err());
        assert!("3.x".parse::<CompilerVersion>().is_err());
        assert!("1.2.3.4".parse::<CompilerVersion>().is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = CompilerVersion::new(3, 0, 8);
        let b = CompilerVersion::new(3, 1, 0);
        let c = CompilerVersion::new(3, 10, 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn in_range_is_half_open() {
        let v = CompilerVersion::new(3, 1, 0);
        assert!(v.in_range(CompilerVersion::new(3, 0, 0), CompilerVersion::new(3, 2, 0)));
        assert!(!v.in_range(CompilerVersion::new(3, 1, 0), CompilerVersion::new(3, 1, 0)));
        assert!(v.in_range(CompilerVersion::new(3, 1, 0), CompilerVersion::new(3, 1, 1)));
    }

    #[test]
    fn display_round_trips() {
        for s in ["3.3.4", "13.8", "8.2.0", "12.10"] {
            let v: CompilerVersion = s.parse().unwrap();
            assert_eq!(v.to_string().parse::<CompilerVersion>().unwrap(), v);
        }
    }

    #[test]
    fn display_pgi_style_omits_zero_patch() {
        assert_eq!(CompilerVersion::new(13, 8, 0).to_string(), "13.8");
        assert_eq!(CompilerVersion::new(8, 2, 0).to_string(), "8.2.0");
    }

    #[test]
    fn spec_versions_display() {
        assert_eq!(SpecVersion::V1_0.to_string(), "1.0");
        assert_eq!(SpecVersion::V2_0.to_string(), "2.0");
        assert!(SpecVersion::V1_0 < SpecVersion::V2_0);
    }
}
