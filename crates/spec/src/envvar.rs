//! OpenACC 1.0 environment variables.

use crate::device_type::DeviceType;
use std::fmt;

/// Environment variables defined by the 1.0 specification (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnvVar {
    /// `ACC_DEVICE_TYPE` — selects the default device type.
    DeviceType,
    /// `ACC_DEVICE_NUM` — selects the default device number.
    DeviceNum,
}

impl EnvVar {
    /// Both variables.
    pub const ALL: [EnvVar; 2] = [EnvVar::DeviceType, EnvVar::DeviceNum];

    /// The environment variable name.
    pub fn name(self) -> &'static str {
        match self {
            EnvVar::DeviceType => "ACC_DEVICE_TYPE",
            EnvVar::DeviceNum => "ACC_DEVICE_NUM",
        }
    }

    /// Resolve a name.
    pub fn from_name(s: &str) -> Option<EnvVar> {
        EnvVar::ALL.iter().copied().find(|v| v.name() == s)
    }
}

impl fmt::Display for EnvVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed environment configuration, as the simulated runtime receives it.
///
/// The real runtime reads the process environment; the simulated one receives
/// an explicit `EnvConfig` so tests are hermetic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvConfig {
    /// Parsed `ACC_DEVICE_TYPE`, if set and valid.
    pub device_type: Option<DeviceType>,
    /// Parsed `ACC_DEVICE_NUM`, if set and valid.
    pub device_num: Option<u32>,
    /// Raw settings that failed to parse (name, raw value) — the spec says
    /// behaviour is implementation-defined; we record and ignore them.
    pub invalid: Vec<(String, String)>,
}

impl EnvConfig {
    /// An empty configuration (no ACC_* variables set).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parse from `(name, value)` pairs, e.g. a captured environment.
    ///
    /// Device-type values accept both the spelled constant
    /// (`acc_device_nvidia`) and the conventional short form (`NVIDIA`,
    /// case-insensitive, mapped onto the vendor extension space).
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut cfg = EnvConfig::default();
        for (name, value) in pairs {
            match EnvVar::from_name(name) {
                Some(EnvVar::DeviceType) => match parse_device_type(value) {
                    Some(d) => cfg.device_type = Some(d),
                    None => cfg.invalid.push((name.to_string(), value.to_string())),
                },
                Some(EnvVar::DeviceNum) => match value.parse::<u32>() {
                    Ok(n) => cfg.device_num = Some(n),
                    Err(_) => cfg.invalid.push((name.to_string(), value.to_string())),
                },
                None => {} // not an ACC_* variable we model
            }
        }
        cfg
    }
}

fn parse_device_type(value: &str) -> Option<DeviceType> {
    if let Some(d) = DeviceType::from_symbol(value) {
        return Some(d);
    }
    match value.to_ascii_uppercase().as_str() {
        "NONE" => Some(DeviceType::None),
        "DEFAULT" => Some(DeviceType::Default),
        "HOST" => Some(DeviceType::Host),
        "NOT_HOST" => Some(DeviceType::NotHost),
        "NVIDIA" => Some(DeviceType::Nvidia),
        "RADEON" => Some(DeviceType::Radeon),
        "XEONPHI" => Some(DeviceType::XeonPhi),
        "CUDA" => Some(DeviceType::Cuda),
        "OPENCL" => Some(DeviceType::Opencl),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for v in EnvVar::ALL {
            assert_eq!(EnvVar::from_name(v.name()), Some(v));
        }
        assert_eq!(EnvVar::from_name("ACC_WIDGETS"), None);
    }

    #[test]
    fn parse_pairs() {
        let cfg = EnvConfig::from_pairs([
            ("ACC_DEVICE_TYPE", "NVIDIA"),
            ("ACC_DEVICE_NUM", "2"),
            ("PATH", "/usr/bin"),
        ]);
        assert_eq!(cfg.device_type, Some(DeviceType::Nvidia));
        assert_eq!(cfg.device_num, Some(2));
        assert!(cfg.invalid.is_empty());
    }

    #[test]
    fn parse_symbolic_device_type() {
        let cfg = EnvConfig::from_pairs([("ACC_DEVICE_TYPE", "acc_device_host")]);
        assert_eq!(cfg.device_type, Some(DeviceType::Host));
    }

    #[test]
    fn invalid_values_recorded_not_fatal() {
        let cfg = EnvConfig::from_pairs([
            ("ACC_DEVICE_TYPE", "QUANTUM"),
            ("ACC_DEVICE_NUM", "minus-one"),
        ]);
        assert_eq!(cfg.device_type, None);
        assert_eq!(cfg.device_num, None);
        assert_eq!(cfg.invalid.len(), 2);
    }

    #[test]
    fn case_insensitive_short_forms() {
        let cfg = EnvConfig::from_pairs([("ACC_DEVICE_TYPE", "nvidia")]);
        assert_eq!(cfg.device_type, Some(DeviceType::Nvidia));
    }

    #[test]
    fn empty_is_default() {
        assert_eq!(EnvConfig::empty(), EnvConfig::from_pairs([]));
    }
}
