//! Expressions of the mini-language.

use crate::types::ScalarType;
use std::fmt;

/// Binary operators. Comparison and logical operators produce `int` 0/1,
/// exactly as C; the Fortran generator renders them with `.and.`-style
/// spellings and the Fortran front-end normalizes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integer remainder)
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
}

impl BinOp {
    /// C spelling.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }

    /// Binding power for the pretty-printer / parser (higher binds tighter).
    /// Mirrors C's precedence for the operators in the subset.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 8,
            BinOp::Eq | BinOp::Ne => 7,
            BinOp::BitAnd => 6,
            BinOp::BitXor => 5,
            BinOp::BitOr => 4,
            BinOp::And => 3,
            BinOp::Or => 2,
        }
    }

    /// True for comparison operators (result is logical 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal with its static type (Float renders with an `f`
    /// suffix in C).
    Real(f64, ScalarType),
    /// Variable reference. Named constants (`acc_device_host`, ...) are
    /// resolved by the semantic environment, not the grammar.
    Var(String),
    /// Array element access `base[i]` / `base[i][j]` (C row-major order of
    /// indices; the Fortran generator emits `base(j,i)` column-major).
    Index {
        /// Array variable name.
        base: String,
        /// One index per dimension, outermost first.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call to a runtime routine, math intrinsic, or user helper function.
    Call {
        /// Callee name as spelled in source.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `sizeof(T)` — appears in `acc_malloc(n * sizeof(float))` patterns.
    SizeOf(ScalarType),
}

impl Expr {
    /// Shorthand integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Shorthand variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand 1-D index expression.
    pub fn idx(base: impl Into<String>, i: Expr) -> Expr {
        Expr::Index {
            base: base.into(),
            indices: vec![i],
        }
    }

    /// Shorthand 2-D index expression.
    pub fn idx2(base: impl Into<String>, i: Expr, j: Expr) -> Expr {
        Expr::Index {
            base: base.into(),
            indices: vec![i, j],
        }
    }

    /// Shorthand binary op.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// `l + r`
    #[allow(clippy::should_implement_trait)] // builder shorthand, not arithmetic on Expr
    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, l, r)
    }

    /// `l - r`
    #[allow(clippy::should_implement_trait)] // builder shorthand, not arithmetic on Expr
    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Sub, l, r)
    }

    /// `l * r`
    #[allow(clippy::should_implement_trait)] // builder shorthand, not arithmetic on Expr
    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, l, r)
    }

    /// `l < r`
    pub fn lt(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Lt, l, r)
    }

    /// `l == r`
    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Eq, l, r)
    }

    /// `l != r`
    pub fn ne(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Ne, l, r)
    }

    /// Function call shorthand.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Walk the expression tree, invoking `f` on every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Index { indices, .. } => {
                for i in indices {
                    i.visit(f);
                }
            }
            Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Int(_) | Expr::Real(..) | Expr::Var(_) | Expr::SizeOf(_) => {}
        }
    }

    /// All variable names referenced by the expression (including array
    /// bases and call arguments, excluding callee names).
    pub fn referenced_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            Expr::Var(n) => out.push(n.clone()),
            Expr::Index { base, .. } => out.push(base.clone()),
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }

    /// Best-effort constant folding for integer expressions with no free
    /// variables. Used by directive validation (e.g. `collapse(2)` must be a
    /// constant) and by vendor bugs keyed on "constant vs variable
    /// expression" (§V-B CAPS `num_gangs`).
    pub fn const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOp::Neg, e) => e.const_int().map(|v| -v),
            Expr::Unary(UnOp::Not, e) => e.const_int().map(|v| (v == 0) as i64),
            Expr::Binary(op, l, r) => {
                let (l, r) = (l.const_int()?, r.const_int()?);
                Some(match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => l.checked_div(r)?,
                    BinOp::Rem => l.checked_rem(r)?,
                    BinOp::Lt => (l < r) as i64,
                    BinOp::Le => (l <= r) as i64,
                    BinOp::Gt => (l > r) as i64,
                    BinOp::Ge => (l >= r) as i64,
                    BinOp::Eq => (l == r) as i64,
                    BinOp::Ne => (l != r) as i64,
                    BinOp::And => ((l != 0) && (r != 0)) as i64,
                    BinOp::Or => ((l != 0) || (r != 0)) as i64,
                    BinOp::BitAnd => l & r,
                    BinOp::BitOr => l | r,
                    BinOp::BitXor => l ^ r,
                })
            }
            Expr::SizeOf(s) => Some(s.size_bytes() as i64),
            _ => None,
        }
    }

    /// True when the expression is a compile-time integer constant.
    pub fn is_const(&self) -> bool {
        self.const_int().is_some()
    }
}

impl fmt::Display for Expr {
    /// Displays in C surface syntax (the canonical debug form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::cgen::expr_to_c(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_fold_arithmetic() {
        let e = Expr::add(Expr::mul(Expr::int(6), Expr::int(7)), Expr::int(0));
        assert_eq!(e.const_int(), Some(42));
    }

    #[test]
    fn const_fold_stops_at_vars() {
        let e = Expr::add(Expr::var("n"), Expr::int(1));
        assert_eq!(e.const_int(), None);
        assert!(!e.is_const());
    }

    #[test]
    fn const_fold_division_by_zero_is_none() {
        let e = Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(e.const_int(), None);
    }

    #[test]
    fn const_fold_logic_and_comparisons() {
        assert_eq!(Expr::lt(Expr::int(1), Expr::int(2)).const_int(), Some(1));
        assert_eq!(
            Expr::bin(BinOp::And, Expr::int(1), Expr::int(0)).const_int(),
            Some(0)
        );
        assert_eq!(
            Expr::Unary(UnOp::Not, Box::new(Expr::int(0))).const_int(),
            Some(1)
        );
    }

    #[test]
    fn sizeof_folds() {
        assert_eq!(Expr::SizeOf(ScalarType::Float).const_int(), Some(4));
    }

    #[test]
    fn referenced_vars_deduped_and_sorted() {
        let e = Expr::add(
            Expr::idx("a", Expr::var("i")),
            Expr::add(Expr::var("i"), Expr::var("b")),
        );
        assert_eq!(e.referenced_vars(), vec!["a", "b", "i"]);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::BitAnd.precedence() > BinOp::BitXor.precedence());
        assert!(BinOp::BitXor.precedence() > BinOp::BitOr.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Or.is_logical());
        assert!(!BinOp::BitOr.is_logical());
    }

    #[test]
    fn display_renders_c() {
        let e = Expr::add(Expr::var("x"), Expr::int(1));
        assert_eq!(e.to_string(), "x + 1");
    }
}
