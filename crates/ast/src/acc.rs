//! OpenACC directive syntax trees: a directive kind plus parsed clauses with
//! their argument expressions.

use crate::expr::Expr;
use acc_spec::{ClauseKind, DirectiveKind, ReductionOp};
use std::fmt;

/// A reference to data in a data clause: a variable, optionally with an
/// array-section `[start:length]` (C) / `(start:end)` (Fortran, normalized to
/// start/length at parse time).
#[derive(Debug, Clone, PartialEq)]
pub struct DataRef {
    /// Variable name.
    pub name: String,
    /// Optional section: (start, length).
    pub section: Option<(Expr, Expr)>,
}

impl DataRef {
    /// Whole-variable reference.
    pub fn whole(name: impl Into<String>) -> Self {
        DataRef {
            name: name.into(),
            section: None,
        }
    }

    /// Section reference `name[start:len]`.
    pub fn section(name: impl Into<String>, start: Expr, len: Expr) -> Self {
        DataRef {
            name: name.into(),
            section: Some((start, len)),
        }
    }
}

/// A parsed clause with its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum AccClause {
    /// `if(cond)`
    If(Expr),
    /// `async` / `async(tag)`
    Async(Option<Expr>),
    /// `num_gangs(n)`
    NumGangs(Expr),
    /// `num_workers(n)`
    NumWorkers(Expr),
    /// `vector_length(n)`
    VectorLength(Expr),
    /// `reduction(op:vars)`
    Reduction(ReductionOp, Vec<String>),
    /// A data-movement clause (`copy`, `copyin`, ..., `present_or_create`,
    /// `device_resident`, `host`, `device`, `delete`) with its refs.
    Data(ClauseKind, Vec<DataRef>),
    /// `deviceptr(vars)`
    Deviceptr(Vec<String>),
    /// `private(vars)`
    Private(Vec<String>),
    /// `firstprivate(vars)`
    Firstprivate(Vec<String>),
    /// `use_device(vars)`
    UseDevice(Vec<String>),
    /// `gang` / `gang(n)`
    Gang(Option<Expr>),
    /// `worker` / `worker(n)`
    Worker(Option<Expr>),
    /// `vector` / `vector(n)`
    Vector(Option<Expr>),
    /// `seq`
    Seq,
    /// `independent`
    Independent,
    /// `collapse(n)`
    Collapse(Expr),
    /// 2.0 `default(none)`
    DefaultNone,
    /// 2.0 `auto`
    Auto,
}

impl AccClause {
    /// The clause kind, for validation against
    /// [`DirectiveKind::allowed_clauses`].
    pub fn kind(&self) -> ClauseKind {
        match self {
            AccClause::If(_) => ClauseKind::If,
            AccClause::Async(_) => ClauseKind::Async,
            AccClause::NumGangs(_) => ClauseKind::NumGangs,
            AccClause::NumWorkers(_) => ClauseKind::NumWorkers,
            AccClause::VectorLength(_) => ClauseKind::VectorLength,
            AccClause::Reduction(..) => ClauseKind::Reduction,
            AccClause::Data(k, _) => *k,
            AccClause::Deviceptr(_) => ClauseKind::Deviceptr,
            AccClause::Private(_) => ClauseKind::Private,
            AccClause::Firstprivate(_) => ClauseKind::Firstprivate,
            AccClause::UseDevice(_) => ClauseKind::UseDevice,
            AccClause::Gang(_) => ClauseKind::Gang,
            AccClause::Worker(_) => ClauseKind::Worker,
            AccClause::Vector(_) => ClauseKind::Vector,
            AccClause::Seq => ClauseKind::Seq,
            AccClause::Independent => ClauseKind::Independent,
            AccClause::Collapse(_) => ClauseKind::Collapse,
            AccClause::DefaultNone => ClauseKind::DefaultNone,
            AccClause::Auto => ClauseKind::Auto,
        }
    }
}

/// A full directive: kind plus clause list, plus an optional wait argument
/// for the `wait(tag)` directive form.
#[derive(Debug, Clone, PartialEq)]
pub struct AccDirective {
    /// Directive kind.
    pub kind: DirectiveKind,
    /// Clauses in source order.
    pub clauses: Vec<AccClause>,
    /// Argument of a standalone `wait(tag)` directive; `wait`'s optional tag
    /// is directive-level syntax rather than a clause.
    pub wait_arg: Option<Expr>,
    /// Array references of a `cache(refs)` directive; directive-level syntax
    /// like `wait_arg`.
    pub cache_args: Vec<DataRef>,
}

impl AccDirective {
    /// A directive with no clauses.
    pub fn new(kind: DirectiveKind) -> Self {
        AccDirective {
            kind,
            clauses: Vec::new(),
            wait_arg: None,
            cache_args: Vec::new(),
        }
    }

    /// Builder-style clause addition.
    pub fn with(mut self, clause: AccClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// First clause of the given kind, if present.
    pub fn find(&self, kind: ClauseKind) -> Option<&AccClause> {
        self.clauses.iter().find(|c| c.kind() == kind)
    }

    /// True when a clause of the given kind is present.
    pub fn has(&self, kind: ClauseKind) -> bool {
        self.find(kind).is_some()
    }

    /// All data clauses (`Data` variants plus `deviceptr`), in source order.
    pub fn data_clauses(&self) -> impl Iterator<Item = &AccClause> {
        self.clauses
            .iter()
            .filter(|c| matches!(c, AccClause::Data(..) | AccClause::Deviceptr(_)))
    }

    /// Clauses that are illegal on this directive per the 1.0 feature model.
    pub fn illegal_clauses(&self) -> Vec<ClauseKind> {
        self.clauses
            .iter()
            .map(|c| c.kind())
            .filter(|k| !self.kind.allows(*k))
            .collect()
    }

    /// Render in C pragma syntax (without the `#pragma acc` prefix).
    pub fn render_suffix(&self) -> String {
        let mut s = self.kind.name().to_string();
        if let Some(arg) = &self.wait_arg {
            s.push_str(&format!("({})", crate::cgen::expr_to_c(arg)));
        }
        if !self.cache_args.is_empty() {
            let refs: Vec<String> = self
                .cache_args
                .iter()
                .map(crate::cgen::dataref_to_c)
                .collect();
            s.push_str(&format!("({})", refs.join(", ")));
        }
        for c in &self.clauses {
            s.push(' ');
            s.push_str(&crate::cgen::clause_to_c(c));
        }
        s
    }
}

impl fmt::Display for AccDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma acc {}", self.render_suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_kinds_map() {
        assert_eq!(AccClause::Seq.kind(), ClauseKind::Seq);
        assert_eq!(
            AccClause::NumGangs(Expr::int(8)).kind(),
            ClauseKind::NumGangs
        );
        assert_eq!(
            AccClause::Data(ClauseKind::Copyin, vec![DataRef::whole("a")]).kind(),
            ClauseKind::Copyin
        );
    }

    #[test]
    fn find_and_has() {
        let d = AccDirective::new(DirectiveKind::Parallel)
            .with(AccClause::NumGangs(Expr::int(10)))
            .with(AccClause::If(Expr::var("flag")));
        assert!(d.has(ClauseKind::NumGangs));
        assert!(d.has(ClauseKind::If));
        assert!(!d.has(ClauseKind::Async));
        match d.find(ClauseKind::NumGangs) {
            Some(AccClause::NumGangs(e)) => assert_eq!(e.const_int(), Some(10)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn illegal_clause_detection() {
        let d = AccDirective::new(DirectiveKind::Kernels).with(AccClause::NumGangs(Expr::int(4)));
        assert_eq!(d.illegal_clauses(), vec![ClauseKind::NumGangs]);
        let ok = AccDirective::new(DirectiveKind::Parallel).with(AccClause::NumGangs(Expr::int(4)));
        assert!(ok.illegal_clauses().is_empty());
    }

    #[test]
    fn render_parallel_with_clauses() {
        let d = AccDirective::new(DirectiveKind::Parallel)
            .with(AccClause::NumGangs(Expr::int(10)))
            .with(AccClause::Data(
                ClauseKind::Copy,
                vec![DataRef::section("a", Expr::int(0), Expr::var("n"))],
            ));
        assert_eq!(
            d.to_string(),
            "#pragma acc parallel num_gangs(10) copy(a[0:n])"
        );
    }

    #[test]
    fn render_wait_with_tag() {
        let mut d = AccDirective::new(DirectiveKind::Wait);
        d.wait_arg = Some(Expr::int(3));
        assert_eq!(d.to_string(), "#pragma acc wait(3)");
    }

    #[test]
    fn data_clauses_iterator() {
        let d = AccDirective::new(DirectiveKind::Parallel)
            .with(AccClause::NumGangs(Expr::int(2)))
            .with(AccClause::Data(
                ClauseKind::Copyin,
                vec![DataRef::whole("a")],
            ))
            .with(AccClause::Deviceptr(vec!["p".into()]));
        assert_eq!(d.data_clauses().count(), 2);
    }
}
