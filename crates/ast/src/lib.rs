//! # acc-ast — the mini-language shared by both front-ends
//!
//! Generated test programs are "complete and standalone C/Fortran code"
//! (paper §I). This crate defines the abstract syntax both languages share —
//! a C-like structured subset with scalars, statically-shaped arrays, `for`
//! loops, `if`, function calls, and OpenACC directives attached to blocks and
//! loops — together with code generators that render a program as compilable
//! C (`#pragma acc`) or Fortran (`!$acc`) source text.
//!
//! The pipeline is intentionally honest: the testsuite builds programs as
//! ASTs, renders them to *source text*, and the simulated vendor compilers
//! re-parse that text with their own front-ends (`acc-frontend`). Rendering
//! and re-parsing round-trip, which is one of the crate's property-test
//! invariants.

#![warn(missing_docs)]

pub mod acc;
pub mod builder;
pub mod cgen;
pub mod expr;
pub mod fgen;
pub mod program;
pub mod stmt;
pub mod types;

pub use acc::{AccClause, AccDirective, DataRef};
pub use expr::{BinOp, Expr, UnOp};
pub use program::{Function, Param, ParamKind, Program};
pub use stmt::{ForLoop, LValue, Stmt};
pub use types::{ScalarType, Type};

/// Render a program as source text in its own language.
pub fn render(program: &Program) -> String {
    match program.language {
        acc_spec::Language::C => cgen::emit_c(program),
        acc_spec::Language::Fortran => fgen::emit_fortran(program),
    }
}
