//! Ergonomic constructors for building test programs.
//!
//! The testsuite corpus constructs several hundred small programs; this
//! module keeps those definitions close to the shape of the paper's code
//! figures. Functions are free-standing (not a builder object) so templates
//! read like the pseudocode they mirror.

use crate::acc::{AccClause, AccDirective, DataRef};
use crate::expr::{BinOp, Expr};
use crate::stmt::{ForLoop, LValue, Stmt};
use crate::types::ScalarType;
use acc_spec::{ClauseKind, DirectiveKind};

/// `int name = v;`
pub fn decl_int(name: &str, v: i64) -> Stmt {
    Stmt::decl_int(name, Expr::int(v))
}

/// `T name[n];`
pub fn decl_array(name: &str, elem: ScalarType, n: usize) -> Stmt {
    Stmt::DeclArray {
        name: name.into(),
        elem,
        dims: vec![n],
    }
}

/// `T name[r][c];`
pub fn decl_matrix(name: &str, elem: ScalarType, r: usize, c: usize) -> Stmt {
    Stmt::DeclArray {
        name: name.into(),
        elem,
        dims: vec![r, c],
    }
}

/// `for (v = 0; v < n; v++) body`
pub fn for_upto(v: &str, n: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For(ForLoop::upto(v, n, body))
}

/// `name[i] = value;`
pub fn set1(name: &str, i: Expr, value: Expr) -> Stmt {
    Stmt::assign(LValue::idx(name, i), value)
}

/// `name[i] += value;`
pub fn add1(name: &str, i: Expr, value: Expr) -> Stmt {
    Stmt::assign_op(LValue::idx(name, i), BinOp::Add, value)
}

/// `name = value;`
pub fn set(name: &str, value: Expr) -> Stmt {
    Stmt::assign(LValue::var(name), value)
}

/// `name += value;`
pub fn add(name: &str, value: Expr) -> Stmt {
    Stmt::assign_op(LValue::var(name), BinOp::Add, value)
}

/// `if (cond) { then }`
pub fn if_then(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body: then,
        else_body: vec![],
    }
}

/// `error++` — the paper's standard failure accumulator.
pub fn bump_error() -> Stmt {
    add("error", Expr::int(1))
}

/// The standard check epilogue: `return (error == 0);`
pub fn return_error_check() -> Stmt {
    Stmt::Return(Expr::eq(Expr::var("error"), Expr::int(0)))
}

/// A `parallel` directive with the given clauses.
pub fn parallel(clauses: Vec<AccClause>) -> AccDirective {
    with_clauses(DirectiveKind::Parallel, clauses)
}

/// A `kernels` directive with the given clauses.
pub fn kernels(clauses: Vec<AccClause>) -> AccDirective {
    with_clauses(DirectiveKind::Kernels, clauses)
}

/// A `data` directive with the given clauses.
pub fn data(clauses: Vec<AccClause>) -> AccDirective {
    with_clauses(DirectiveKind::Data, clauses)
}

/// A `loop` directive with the given clauses.
pub fn loop_dir(clauses: Vec<AccClause>) -> AccDirective {
    with_clauses(DirectiveKind::Loop, clauses)
}

/// Any directive with clauses.
pub fn with_clauses(kind: DirectiveKind, clauses: Vec<AccClause>) -> AccDirective {
    let mut d = AccDirective::new(kind);
    d.clauses = clauses;
    d
}

/// `copy(name[0:n])` clause.
pub fn copy_sec(name: &str, n: Expr) -> AccClause {
    AccClause::Data(
        ClauseKind::Copy,
        vec![DataRef::section(name, Expr::int(0), n)],
    )
}

/// `copyin(name[0:n])` clause.
pub fn copyin_sec(name: &str, n: Expr) -> AccClause {
    AccClause::Data(
        ClauseKind::Copyin,
        vec![DataRef::section(name, Expr::int(0), n)],
    )
}

/// `copyout(name[0:n])` clause.
pub fn copyout_sec(name: &str, n: Expr) -> AccClause {
    AccClause::Data(
        ClauseKind::Copyout,
        vec![DataRef::section(name, Expr::int(0), n)],
    )
}

/// `create(name[0:n])` clause (or whole-variable when `n` is `None`).
pub fn create_clause(name: &str, n: Option<Expr>) -> AccClause {
    let r = match n {
        Some(n) => DataRef::section(name, Expr::int(0), n),
        None => DataRef::whole(name),
    };
    AccClause::Data(ClauseKind::Create, vec![r])
}

/// A data clause of arbitrary kind over whole variables.
pub fn data_whole(kind: ClauseKind, names: &[&str]) -> AccClause {
    AccClause::Data(kind, names.iter().map(|n| DataRef::whole(*n)).collect())
}

/// `#pragma acc parallel { body }` statement.
pub fn parallel_region(clauses: Vec<AccClause>, body: Vec<Stmt>) -> Stmt {
    Stmt::AccBlock {
        dir: parallel(clauses),
        body,
    }
}

/// `#pragma acc kernels { body }` statement.
pub fn kernels_region(clauses: Vec<AccClause>, body: Vec<Stmt>) -> Stmt {
    Stmt::AccBlock {
        dir: kernels(clauses),
        body,
    }
}

/// `#pragma acc data { body }` statement.
pub fn data_region(clauses: Vec<AccClause>, body: Vec<Stmt>) -> Stmt {
    Stmt::AccBlock {
        dir: data(clauses),
        body,
    }
}

/// `#pragma acc loop <clauses>` attached to `for (v = 0; v < n; v++)`.
pub fn acc_loop(clauses: Vec<AccClause>, v: &str, n: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::AccLoop {
        dir: loop_dir(clauses),
        l: ForLoop::upto(v, n, body),
    }
}

/// Combined `parallel loop`.
pub fn parallel_loop(clauses: Vec<AccClause>, v: &str, n: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::AccLoop {
        dir: with_clauses(DirectiveKind::ParallelLoop, clauses),
        l: ForLoop::upto(v, n, body),
    }
}

/// Combined `kernels loop`.
pub fn kernels_loop(clauses: Vec<AccClause>, v: &str, n: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::AccLoop {
        dir: with_clauses(DirectiveKind::KernelsLoop, clauses),
        l: ForLoop::upto(v, n, body),
    }
}

/// Standalone `update` directive.
pub fn update(clauses: Vec<AccClause>) -> Stmt {
    Stmt::AccStandalone {
        dir: with_clauses(DirectiveKind::Update, clauses),
    }
}

/// Standalone `wait` directive, optionally with a tag.
pub fn wait(tag: Option<Expr>) -> Stmt {
    let mut d = AccDirective::new(DirectiveKind::Wait);
    d.wait_arg = tag;
    Stmt::AccStandalone { dir: d }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use acc_spec::Language;

    #[test]
    fn fig2_functional_test_via_builders() {
        // Paper Fig. 2(a): loop directive inside parallel num_gangs(10).
        let body = vec![
            decl_int("error", 0),
            decl_array("A", ScalarType::Int, 100),
            for_upto(
                "i",
                Expr::int(100),
                vec![set1("A", Expr::var("i"), Expr::int(0))],
            ),
            parallel_region(
                vec![
                    AccClause::NumGangs(Expr::int(10)),
                    copy_sec("A", Expr::int(100)),
                ],
                vec![acc_loop(
                    vec![],
                    "i",
                    Expr::int(100),
                    vec![add1("A", Expr::var("i"), Expr::int(1))],
                )],
            ),
            for_upto(
                "i",
                Expr::int(100),
                vec![if_then(
                    Expr::ne(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                    vec![bump_error()],
                )],
            ),
            return_error_check(),
        ];
        let p = Program::simple("fig2", Language::C, body);
        let src = crate::cgen::emit_c(&p);
        assert!(src.contains("#pragma acc parallel num_gangs(10) copy(A[0:100])"));
        assert!(src.contains("return error == 0;"));
    }

    #[test]
    fn wait_and_update_builders() {
        match wait(Some(Expr::int(3))) {
            Stmt::AccStandalone { dir } => {
                assert_eq!(dir.kind, DirectiveKind::Wait);
                assert_eq!(dir.wait_arg, Some(Expr::int(3)));
            }
            other => panic!("{other:?}"),
        }
        match update(vec![data_whole(ClauseKind::HostClause, &["a"])]) {
            Stmt::AccStandalone { dir } => assert_eq!(dir.kind, DirectiveKind::Update),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn combined_loop_builders() {
        match parallel_loop(vec![], "i", Expr::int(4), vec![]) {
            Stmt::AccLoop { dir, .. } => assert_eq!(dir.kind, DirectiveKind::ParallelLoop),
            other => panic!("{other:?}"),
        }
        match kernels_loop(vec![], "i", Expr::int(4), vec![]) {
            Stmt::AccLoop { dir, .. } => assert_eq!(dir.kind, DirectiveKind::KernelsLoop),
            other => panic!("{other:?}"),
        }
    }
}
