//! Statements of the mini-language.

use crate::acc::AccDirective;
use crate::expr::{BinOp, Expr};
use crate::types::{ScalarType, Type};

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar (or pointer) variable.
    Var(String),
    /// Array element.
    Index {
        /// Array name.
        base: String,
        /// One index per dimension, outermost first (C order).
        indices: Vec<Expr>,
    },
}

impl LValue {
    /// Scalar lvalue shorthand.
    pub fn var(name: impl Into<String>) -> Self {
        LValue::Var(name.into())
    }

    /// 1-D element lvalue shorthand.
    pub fn idx(base: impl Into<String>, i: Expr) -> Self {
        LValue::Index {
            base: base.into(),
            indices: vec![i],
        }
    }

    /// 2-D element lvalue shorthand.
    pub fn idx2(base: impl Into<String>, i: Expr, j: Expr) -> Self {
        LValue::Index {
            base: base.into(),
            indices: vec![i, j],
        }
    }

    /// The variable the lvalue writes.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index { base, .. } => base,
        }
    }
}

/// A counted `for`/`do` loop: `for (var = from; var < to; var += step)`.
///
/// The Fortran generator renders the equivalent inclusive `do var = from,
/// to-1, step` form; both front-ends normalize back to the exclusive-upper-
/// bound representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable (always `int`).
    pub var: String,
    /// Inclusive lower bound.
    pub from: Expr,
    /// Exclusive upper bound.
    pub to: Expr,
    /// Step (must be positive; tests use 1).
    pub step: Expr,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl ForLoop {
    /// `for (var = 0; var < to; var++)` shorthand.
    pub fn upto(var: impl Into<String>, to: Expr, body: Vec<Stmt>) -> Self {
        ForLoop {
            var: var.into(),
            from: Expr::int(0),
            to,
            step: Expr::int(1),
            body,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar or pointer declaration with optional initializer.
    DeclScalar {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Statically-shaped array declaration.
    DeclArray {
        /// Array name.
        name: String,
        /// Element type.
        elem: ScalarType,
        /// Dimension extents, outermost first (row-major in C rendering).
        dims: Vec<usize>,
    },
    /// Assignment, optionally compound (`op` = Some(Add) renders `+=`).
    Assign {
        /// Target location.
        target: LValue,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// Counted loop.
    For(ForLoop),
    /// Conditional.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty = absent).
        else_body: Vec<Stmt>,
    },
    /// Expression-statement call (e.g. `acc_init(acc_device_default);`).
    Call {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `return expr;` — test programs return 1 on success, 0 on failure.
    Return(Expr),
    /// A directive opening a structured block (`parallel`, `kernels`,
    /// `data`, `host_data`).
    AccBlock {
        /// The directive.
        dir: AccDirective,
        /// Region body.
        body: Vec<Stmt>,
    },
    /// A `loop` (or combined `parallel loop` / `kernels loop`) directive
    /// attached to the following counted loop.
    AccLoop {
        /// The directive.
        dir: AccDirective,
        /// The annotated loop.
        l: ForLoop,
    },
    /// A standalone directive (`update`, `wait`, `declare`, `cache`,
    /// 2.0 `enter data` / `exit data`).
    AccStandalone {
        /// The directive.
        dir: AccDirective,
    },
}

impl Stmt {
    /// Assignment shorthand.
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op: None,
            value,
        }
    }

    /// Compound-assignment shorthand (`target op= value`).
    pub fn assign_op(target: LValue, op: BinOp, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op: Some(op),
            value,
        }
    }

    /// `int name = init;` shorthand.
    pub fn decl_int(name: impl Into<String>, init: Expr) -> Stmt {
        Stmt::DeclScalar {
            name: name.into(),
            ty: Type::INT,
            init: Some(init),
        }
    }

    /// Walk all nested statements (pre-order), including directive bodies.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For(l) => {
                for s in &l.body {
                    s.visit(f);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.visit(f);
                }
            }
            Stmt::AccBlock { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::AccLoop { l, .. } => {
                for s in &l.body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Collect every directive in this statement tree (pre-order).
    pub fn directives(&self) -> Vec<&AccDirective> {
        let mut out: Vec<&AccDirective> = Vec::new();
        // Manual recursion because visit() hands out &Stmt without lifetimes
        // tied to self in a way we can push through the closure.
        fn go<'a>(s: &'a Stmt, out: &mut Vec<&'a AccDirective>) {
            match s {
                Stmt::AccBlock { dir, body } => {
                    out.push(dir);
                    for s in body {
                        go(s, out);
                    }
                }
                Stmt::AccLoop { dir, l } => {
                    out.push(dir);
                    for s in &l.body {
                        go(s, out);
                    }
                }
                Stmt::AccStandalone { dir } => out.push(dir),
                Stmt::For(l) => {
                    for s in &l.body {
                        go(s, out);
                    }
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    for s in then_body.iter().chain(else_body) {
                        go(s, out);
                    }
                }
                _ => {}
            }
        }
        go(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_spec::DirectiveKind;

    fn sample_region() -> Stmt {
        Stmt::AccBlock {
            dir: AccDirective::new(DirectiveKind::Parallel),
            body: vec![Stmt::AccLoop {
                dir: AccDirective::new(DirectiveKind::Loop),
                l: ForLoop::upto(
                    "i",
                    Expr::var("n"),
                    vec![Stmt::assign_op(
                        LValue::idx("a", Expr::var("i")),
                        BinOp::Add,
                        Expr::int(1),
                    )],
                ),
            }],
        }
    }

    #[test]
    fn directives_collects_nested() {
        let s = sample_region();
        let dirs = s.directives();
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].kind, DirectiveKind::Parallel);
        assert_eq!(dirs[1].kind, DirectiveKind::Loop);
    }

    #[test]
    fn visit_counts_statements() {
        let s = sample_region();
        let mut n = 0;
        s.visit(&mut |_| n += 1);
        // AccBlock + AccLoop + Assign
        assert_eq!(n, 3);
    }

    #[test]
    fn lvalue_base() {
        assert_eq!(LValue::var("x").base(), "x");
        assert_eq!(LValue::idx("a", Expr::int(0)).base(), "a");
        assert_eq!(LValue::idx2("m", Expr::int(0), Expr::int(1)).base(), "m");
    }

    #[test]
    fn forloop_upto_defaults() {
        let l = ForLoop::upto("i", Expr::int(10), vec![]);
        assert_eq!(l.from, Expr::int(0));
        assert_eq!(l.step, Expr::int(1));
    }
}
