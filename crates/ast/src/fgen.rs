//! Fortran code generation: renders a [`Program`] as standalone Fortran
//! source with `!$acc` directive sentinels.
//!
//! ## The dialect
//!
//! The generated Fortran is a *dialect with C semantics*: values are
//! integers/reals, comparisons yield 1/0, and arrays are declared with
//! explicit 0-based bounds (`a(0:n-1)`) so both language variants of a test
//! index identically. This keeps the two front-ends semantically aligned
//! while exercising genuinely different surface syntax (`do` loops with
//! inclusive bounds, `!$acc end parallel` block terminators, `.and.`
//! operator spellings, `iand`/`mod` intrinsic calls, `d`-exponent double
//! literals, Fortran array sections `a(lo:hi)`). The paper's Fortran tests
//! differ from the C ones in exactly these surface dimensions.
//!
//! Because Fortran requires declarations before executable statements, the
//! generator hoists every declaration (including loop induction variables)
//! to the top of the enclosing function and replaces initialized
//! declarations with assignments in place.

use crate::acc::{AccClause, AccDirective, DataRef};
use crate::expr::{BinOp, Expr, UnOp};
use crate::program::{Function, ParamKind, Program};
use crate::stmt::{ForLoop, LValue, Stmt};
use crate::types::{ScalarType, Type};
use acc_spec::ReductionOp;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render a whole program as Fortran source.
pub fn emit_fortran(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "! test program: {}", p.name);
    let mut first = true;
    for f in &p.functions {
        if !first {
            out.push('\n');
        }
        first = false;
        emit_function(&mut out, f);
    }
    out
}

/// A hoisted declaration.
#[derive(Debug, Clone, PartialEq)]
enum Decl {
    Scalar(Type),
    Array(ScalarType, Vec<usize>),
}

fn collect_decls(body: &[Stmt], decls: &mut BTreeMap<String, Decl>) {
    for s in body {
        match s {
            Stmt::DeclScalar { name, ty, .. } => {
                decls.entry(name.clone()).or_insert(Decl::Scalar(*ty));
            }
            Stmt::DeclArray { name, elem, dims } => {
                decls
                    .entry(name.clone())
                    .or_insert(Decl::Array(*elem, dims.clone()));
            }
            Stmt::For(l) => {
                decls
                    .entry(l.var.clone())
                    .or_insert(Decl::Scalar(Type::INT));
                collect_decls(&l.body, decls);
            }
            Stmt::AccLoop { l, .. } => {
                decls
                    .entry(l.var.clone())
                    .or_insert(Decl::Scalar(Type::INT));
                collect_decls(&l.body, decls);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(then_body, decls);
                collect_decls(else_body, decls);
            }
            Stmt::AccBlock { body, .. } => collect_decls(body, decls),
            _ => {}
        }
    }
}

fn emit_function(out: &mut String, f: &Function) {
    let header = match f.ret {
        Some(t) => format!(
            "{} function {}({})",
            t.fortran_name(),
            f.name,
            param_list(f)
        ),
        None => format!("subroutine {}({})", f.name, param_list(f)),
    };
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "    implicit none");
    // Parameter declarations.
    for p in &f.params {
        match p.kind {
            ParamKind::Scalar(t) => {
                let _ = writeln!(out, "    {} :: {}", t.fortran_name(), p.name);
            }
            ParamKind::ArrayPtr(t) => {
                let _ = writeln!(out, "    {} :: {}(0:*)", t.fortran_name(), p.name);
            }
        }
    }
    // Hoisted local declarations.
    let mut decls = BTreeMap::new();
    collect_decls(&f.body, &mut decls);
    for p in &f.params {
        decls.remove(&p.name);
    }
    for (name, d) in &decls {
        match d {
            Decl::Scalar(Type::Scalar(t)) => {
                let _ = writeln!(out, "    {} :: {}", t.fortran_name(), name);
            }
            Decl::Scalar(Type::Ptr(_)) => {
                // Device pointers surface as 8-byte integers in the dialect.
                let _ = writeln!(out, "    integer(8) :: {name}");
            }
            Decl::Array(t, dims) => {
                let bounds: Vec<String> = dims.iter().map(|d| format!("0:{}", d - 1)).collect();
                let _ = writeln!(
                    out,
                    "    {} :: {}({})",
                    t.fortran_name(),
                    name,
                    bounds.join(", ")
                );
            }
        }
    }
    for s in &f.body {
        emit_stmt(out, s, 1, f);
    }
    match f.ret {
        Some(_) => {
            let _ = writeln!(out, "end function {}", f.name);
        }
        None => {
            let _ = writeln!(out, "end subroutine {}", f.name);
        }
    }
}

fn param_list(f: &Function) -> String {
    f.params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_body(out: &mut String, body: &[Stmt], level: usize, f: &Function) {
    for s in body {
        emit_stmt(out, s, level, f);
    }
}

fn emit_stmt(out: &mut String, s: &Stmt, level: usize, f: &Function) {
    match s {
        Stmt::DeclScalar { name, init, .. } => {
            // Declaration hoisted; emit only the initialization.
            if let Some(e) = init {
                indent(out, level);
                let _ = writeln!(out, "{name} = {}", expr_to_f(e));
            }
        }
        Stmt::DeclArray { .. } => { /* hoisted, nothing to execute */ }
        Stmt::Assign { target, op, value } => {
            indent(out, level);
            let t = lvalue_to_f(target);
            match op {
                // Fortran has no compound assignment; expand.
                Some(op) => {
                    let expanded =
                        Expr::Binary(*op, Box::new(lvalue_expr(target)), Box::new(value.clone()));
                    let _ = writeln!(out, "{t} = {}", expr_to_f(&expanded));
                }
                None => {
                    let _ = writeln!(out, "{t} = {}", expr_to_f(value));
                }
            }
        }
        Stmt::For(l) => emit_do(out, l, level, f),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) then", expr_to_f(cond));
            emit_body(out, then_body, level + 1, f);
            if !else_body.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                emit_body(out, else_body, level + 1, f);
            }
            indent(out, level);
            out.push_str("end if\n");
        }
        Stmt::Call { name, args } => {
            indent(out, level);
            let args: Vec<String> = args.iter().map(expr_to_f).collect();
            let _ = writeln!(out, "call {name}({})", args.join(", "));
        }
        Stmt::Return(e) => {
            indent(out, level);
            if f.ret.is_some() {
                let _ = writeln!(out, "{} = {}", f.name, expr_to_f(e));
                indent(out, level);
            }
            out.push_str("return\n");
        }
        Stmt::AccBlock { dir, body } => {
            indent(out, level);
            let _ = writeln!(out, "!$acc {}", directive_to_f(dir));
            emit_body(out, body, level + 1, f);
            indent(out, level);
            let _ = writeln!(out, "!$acc end {}", dir.kind.name());
        }
        Stmt::AccLoop { dir, l } => {
            indent(out, level);
            let _ = writeln!(out, "!$acc {}", directive_to_f(dir));
            emit_do(out, l, level, f);
        }
        Stmt::AccStandalone { dir } => {
            indent(out, level);
            let _ = writeln!(out, "!$acc {}", directive_to_f(dir));
        }
    }
}

fn emit_do(out: &mut String, l: &ForLoop, level: usize, f: &Function) {
    indent(out, level);
    // `for (i = a; i < b; ...)` becomes the inclusive `do i = a, b-1`.
    let hi = sub_one(&l.to);
    match &l.step {
        Expr::Int(1) => {
            let _ = writeln!(
                out,
                "do {} = {}, {}",
                l.var,
                expr_to_f(&l.from),
                expr_to_f(&hi)
            );
        }
        step => {
            let _ = writeln!(
                out,
                "do {} = {}, {}, {}",
                l.var,
                expr_to_f(&l.from),
                expr_to_f(&hi),
                expr_to_f(step)
            );
        }
    }
    emit_body(out, &l.body, level + 1, f);
    indent(out, level);
    out.push_str("end do\n");
}

/// Symbolic `e - 1` with peephole simplification so that parse→emit is a
/// fixpoint (`(x + 1) - 1` collapses back to `x`).
pub fn sub_one(e: &Expr) -> Expr {
    if let Some(v) = e.const_int() {
        return Expr::Int(v - 1);
    }
    match e {
        Expr::Binary(BinOp::Add, l, r) => {
            if let Expr::Int(1) = **r {
                return (**l).clone();
            }
            Expr::sub(e.clone(), Expr::int(1))
        }
        _ => Expr::sub(e.clone(), Expr::int(1)),
    }
}

/// Symbolic `e + 1` with the mirror simplification (`(x - 1) + 1 == x`).
pub fn add_one(e: &Expr) -> Expr {
    if let Some(v) = e.const_int() {
        return Expr::Int(v + 1);
    }
    match e {
        Expr::Binary(BinOp::Sub, l, r) => {
            if let Expr::Int(1) = **r {
                return (**l).clone();
            }
            Expr::add(e.clone(), Expr::int(1))
        }
        _ => Expr::add(e.clone(), Expr::int(1)),
    }
}

fn lvalue_expr(lv: &LValue) -> Expr {
    match lv {
        LValue::Var(n) => Expr::Var(n.clone()),
        LValue::Index { base, indices } => Expr::Index {
            base: base.clone(),
            indices: indices.clone(),
        },
    }
}

fn lvalue_to_f(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Index { base, indices } => {
            let idx: Vec<String> = indices.iter().map(expr_to_f).collect();
            format!("{base}({})", idx.join(", "))
        }
    }
}

/// Render an expression in the Fortran dialect.
pub fn expr_to_f(e: &Expr) -> String {
    expr_prec_f(e, 0)
}

fn f_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "/=",
        BinOp::And => ".and.",
        BinOp::Or => ".or.",
        // Rem and the bit ops render as intrinsic calls, handled separately.
        BinOp::Rem | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => unreachable!(),
    }
}

fn intrinsic_name(op: BinOp) -> Option<&'static str> {
    match op {
        BinOp::Rem => Some("mod"),
        BinOp::BitAnd => Some("iand"),
        BinOp::BitOr => Some("ior"),
        BinOp::BitXor => Some("ieor"),
        _ => None,
    }
}

fn expr_prec_f(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Real(v, ty) => real_to_f(*v, *ty),
        Expr::Var(n) => n.clone(),
        Expr::Index { base, indices } => {
            let idx: Vec<String> = indices.iter().map(expr_to_f).collect();
            format!("{base}({})", idx.join(", "))
        }
        Expr::Unary(op, inner) => match op {
            UnOp::Neg => format!("-{}", expr_prec_f(inner, 11)),
            UnOp::Not => format!(".not. {}", expr_prec_f(inner, 11)),
        },
        Expr::Binary(op, l, r) => {
            if let Some(name) = intrinsic_name(*op) {
                return format!("{name}({}, {})", expr_to_f(l), expr_to_f(r));
            }
            let prec = op.precedence();
            let s = format!(
                "{} {} {}",
                expr_prec_f(l, prec),
                f_symbol(*op),
                expr_prec_f(r, prec + 1)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_to_f).collect();
            format!("{name}({})", args.join(", "))
        }
        // sizeof folds to its byte count in the Fortran rendering.
        Expr::SizeOf(t) => (t.size_bytes()).to_string(),
    }
}

fn real_to_f(v: f64, ty: ScalarType) -> String {
    let base = format!("{v:?}");
    match ty {
        ScalarType::Double => {
            if let Some(pos) = base.find(['e', 'E']) {
                let (m, e) = base.split_at(pos);
                format!("{m}d{}", &e[1..])
            } else {
                format!("{base}d0")
            }
        }
        _ => base,
    }
}

/// Render a directive (after the `!$acc` sentinel) in Fortran clause syntax.
pub fn directive_to_f(dir: &AccDirective) -> String {
    // Directive names spell identically in Fortran (including `host_data`).
    let mut s = dir.kind.name().to_string();
    if let Some(arg) = &dir.wait_arg {
        s.push_str(&format!("({})", expr_to_f(arg)));
    }
    if !dir.cache_args.is_empty() {
        let refs: Vec<String> = dir.cache_args.iter().map(dataref_to_f).collect();
        s.push_str(&format!("({})", refs.join(", ")));
    }
    for c in &dir.clauses {
        s.push(' ');
        s.push_str(&clause_to_f(c));
    }
    s
}

fn clause_to_f(c: &AccClause) -> String {
    match c {
        AccClause::If(e) => format!("if({})", expr_to_f(e)),
        AccClause::Async(None) => "async".to_string(),
        AccClause::Async(Some(e)) => format!("async({})", expr_to_f(e)),
        AccClause::NumGangs(e) => format!("num_gangs({})", expr_to_f(e)),
        AccClause::NumWorkers(e) => format!("num_workers({})", expr_to_f(e)),
        AccClause::VectorLength(e) => format!("vector_length({})", expr_to_f(e)),
        AccClause::Reduction(op, vars) => {
            format!("reduction({}:{})", fortran_red_symbol(*op), vars.join(", "))
        }
        AccClause::Data(kind, refs) => {
            let refs: Vec<String> = refs.iter().map(dataref_to_f).collect();
            format!("{}({})", kind.name(), refs.join(", "))
        }
        AccClause::Deviceptr(vars) => format!("deviceptr({})", vars.join(", ")),
        AccClause::Private(vars) => format!("private({})", vars.join(", ")),
        AccClause::Firstprivate(vars) => format!("firstprivate({})", vars.join(", ")),
        AccClause::UseDevice(vars) => format!("use_device({})", vars.join(", ")),
        AccClause::Gang(None) => "gang".to_string(),
        AccClause::Gang(Some(e)) => format!("gang({})", expr_to_f(e)),
        AccClause::Worker(None) => "worker".to_string(),
        AccClause::Worker(Some(e)) => format!("worker({})", expr_to_f(e)),
        AccClause::Vector(None) => "vector".to_string(),
        AccClause::Vector(Some(e)) => format!("vector({})", expr_to_f(e)),
        AccClause::Seq => "seq".to_string(),
        AccClause::Independent => "independent".to_string(),
        AccClause::Collapse(e) => format!("collapse({})", expr_to_f(e)),
        AccClause::DefaultNone => "default(none)".to_string(),
        AccClause::Auto => "auto".to_string(),
    }
}

fn fortran_red_symbol(op: ReductionOp) -> &'static str {
    op.fortran_symbol()
}

fn dataref_to_f(r: &DataRef) -> String {
    match &r.section {
        None => r.name.clone(),
        Some((start, len)) => {
            // Fortran sections are inclusive `lo:hi`; hi = start + len - 1.
            let hi = if matches!(start, Expr::Int(0)) {
                sub_one(len)
            } else {
                sub_one(&Expr::add(start.clone(), len.clone()))
            };
            format!("{}({}:{})", r.name, expr_to_f(start), expr_to_f(&hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use acc_spec::{ClauseKind, DirectiveKind, Language};

    #[test]
    fn do_loop_inclusive_bounds() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![Stmt::For(ForLoop::upto(
                "i",
                Expr::var("n"),
                vec![Stmt::assign(LValue::idx("a", Expr::var("i")), Expr::int(0))],
            ))],
        );
        let src = emit_fortran(&p);
        assert!(src.contains("do i = 0, n - 1"), "{src}");
        assert!(src.contains("end do"));
        assert!(src.contains("integer :: i"), "induction var hoisted: {src}");
    }

    #[test]
    fn constant_bound_collapses() {
        let hi = sub_one(&Expr::int(10));
        assert_eq!(hi, Expr::int(9));
        // (x + 1) - 1 == x
        assert_eq!(
            sub_one(&Expr::add(Expr::var("x"), Expr::int(1))),
            Expr::var("x")
        );
        // (x - 1) + 1 == x
        assert_eq!(
            add_one(&Expr::sub(Expr::var("x"), Expr::int(1))),
            Expr::var("x")
        );
    }

    #[test]
    fn block_directive_gets_end() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![Stmt::AccBlock {
                dir: AccDirective::new(DirectiveKind::Parallel)
                    .with(AccClause::NumGangs(Expr::int(4))),
                body: vec![],
            }],
        );
        let src = emit_fortran(&p);
        assert!(src.contains("!$acc parallel num_gangs(4)"));
        assert!(src.contains("!$acc end parallel"));
    }

    #[test]
    fn main_return_becomes_result_assignment() {
        let p = Program::simple("t", Language::Fortran, vec![Stmt::Return(Expr::int(1))]);
        let src = emit_fortran(&p);
        assert!(src.contains("integer function main()"), "{src}");
        assert!(src.contains("main = 1"));
        assert!(src.contains("return"));
        assert!(src.contains("end function main"));
    }

    #[test]
    fn compound_assign_expands() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                Stmt::decl_int("s", Expr::int(0)),
                Stmt::assign_op(LValue::var("s"), BinOp::Add, Expr::int(2)),
            ],
        );
        let src = emit_fortran(&p);
        assert!(src.contains("s = s + 2"), "{src}");
    }

    #[test]
    fn logical_operators_spelled_fortran() {
        let e = Expr::bin(
            BinOp::And,
            Expr::eq(Expr::var("a"), Expr::int(1)),
            Expr::var("b"),
        );
        assert_eq!(expr_to_f(&e), "a == 1 .and. b");
    }

    #[test]
    fn bit_ops_become_intrinsics() {
        let e = Expr::bin(BinOp::BitXor, Expr::var("a"), Expr::var("b"));
        assert_eq!(expr_to_f(&e), "ieor(a, b)");
        let m = Expr::bin(BinOp::Rem, Expr::var("a"), Expr::int(4));
        assert_eq!(expr_to_f(&m), "mod(a, 4)");
    }

    #[test]
    fn double_literals_get_d_exponent() {
        assert_eq!(real_to_f(0.5, ScalarType::Double), "0.5d0");
        assert_eq!(real_to_f(1e-9, ScalarType::Double), "1d-9");
        assert_eq!(real_to_f(0.5, ScalarType::Float), "0.5");
    }

    #[test]
    fn array_section_inclusive() {
        let r = DataRef::section("a", Expr::int(0), Expr::var("n"));
        assert_eq!(dataref_to_f(&r), "a(0:n - 1)");
        let r2 = DataRef::section("a", Expr::int(2), Expr::int(5));
        assert_eq!(dataref_to_f(&r2), "a(2:6)");
    }

    #[test]
    fn arrays_declared_zero_based() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![Stmt::DeclArray {
                name: "m".into(),
                elem: ScalarType::Float,
                dims: vec![10, 20],
            }],
        );
        let src = emit_fortran(&p);
        assert!(src.contains("real :: m(0:9, 0:19)"), "{src}");
    }

    #[test]
    fn reduction_clause_fortran_spelling() {
        let c = AccClause::Reduction(ReductionOp::LogicalAnd, vec!["ok".into()]);
        assert_eq!(clause_to_f(&c), "reduction(.and.:ok)");
    }

    #[test]
    fn update_standalone() {
        let d = AccDirective::new(DirectiveKind::Update).with(AccClause::Data(
            ClauseKind::HostClause,
            vec![DataRef::whole("a")],
        ));
        assert_eq!(directive_to_f(&d), "update host(a)");
    }
}
