//! Programs and functions.

use crate::stmt::Stmt;
use crate::types::ScalarType;
use acc_spec::Language;

/// How a parameter is passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// By-value scalar.
    Scalar(ScalarType),
    /// Pointer to an array of the element type (C: `T*`; Fortran: assumed-
    /// size array). Used by the `host_data`/`use_device` helper-function
    /// tests.
    ArrayPtr(ScalarType),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Passing kind.
    pub kind: ParamKind,
}

/// A function definition. `main` is the test entry point and must return
/// `int` (1 = pass, 0 = fail, matching the paper's `return (error == 0)`
/// convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type; `None` renders `void` / a subroutine.
    pub ret: Option<ScalarType>,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// A `int main()`-shaped entry point.
    pub fn main(body: Vec<Stmt>) -> Self {
        Function {
            name: "main".to_string(),
            params: Vec::new(),
            ret: Some(ScalarType::Int),
            body,
        }
    }
}

/// A complete standalone test program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (becomes the Fortran `program` name / a C comment).
    pub name: String,
    /// Surface language to render/parse as.
    pub language: Language,
    /// Helper functions first, then `main` by convention; the entry point is
    /// located by name.
    pub functions: Vec<Function>,
}

impl Program {
    /// Single-function program wrapping `body` in `main`.
    pub fn simple(name: impl Into<String>, language: Language, body: Vec<Stmt>) -> Self {
        Program {
            name: name.into(),
            language,
            functions: vec![Function::main(body)],
        }
    }

    /// The entry function.
    pub fn entry(&self) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == "main")
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Every directive anywhere in the program, in pre-order.
    pub fn directives(&self) -> Vec<&crate::acc::AccDirective> {
        self.functions
            .iter()
            .flat_map(|f| f.body.iter())
            .flat_map(|s| s.directives())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccDirective;
    use crate::expr::Expr;
    use acc_spec::DirectiveKind;

    #[test]
    fn simple_program_has_main() {
        let p = Program::simple("t", Language::C, vec![Stmt::Return(Expr::int(1))]);
        assert!(p.entry().is_some());
        assert_eq!(p.entry().unwrap().ret, Some(ScalarType::Int));
    }

    #[test]
    fn function_lookup() {
        let mut p = Program::simple("t", Language::C, vec![]);
        p.functions.push(Function {
            name: "helper".into(),
            params: vec![Param {
                name: "x".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Float),
            }],
            ret: None,
            body: vec![],
        });
        assert!(p.function("helper").is_some());
        assert!(p.function("nonexistent").is_none());
    }

    #[test]
    fn program_directives_span_functions() {
        let region = Stmt::AccBlock {
            dir: AccDirective::new(DirectiveKind::Kernels),
            body: vec![],
        };
        let p = Program::simple("t", Language::Fortran, vec![region]);
        assert_eq!(p.directives().len(), 1);
        assert_eq!(p.directives()[0].kind, DirectiveKind::Kernels);
    }
}
