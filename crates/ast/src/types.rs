//! Scalar and composite types of the mini-language.

use std::fmt;

/// Element/scalar types. The reduction tests sweep all three numeric types
/// (paper §IV-C-4); `Int` doubles as the logical type (C semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 64-bit signed integer (`int` in generated C — widened for safety,
    /// `integer` in Fortran).
    Int,
    /// 32-bit IEEE float (`float` / `real`).
    Float,
    /// 64-bit IEEE float (`double` / `double precision`).
    Double,
}

impl ScalarType {
    /// All scalar types.
    pub const ALL: [ScalarType; 3] = [ScalarType::Int, ScalarType::Float, ScalarType::Double];

    /// C spelling.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::Int => "int",
            ScalarType::Float => "float",
            ScalarType::Double => "double",
        }
    }

    /// Fortran spelling.
    pub fn fortran_name(self) -> &'static str {
        match self {
            ScalarType::Int => "integer",
            ScalarType::Float => "real",
            ScalarType::Double => "double precision",
        }
    }

    /// True for the two floating-point types.
    pub fn is_float(self) -> bool {
        !matches!(self, ScalarType::Int)
    }

    /// Size in bytes on the simulated device (used by `acc_malloc` sizing in
    /// generated tests).
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarType::Int => 8,
            ScalarType::Float => 4,
            ScalarType::Double => 8,
        }
    }

    /// Short identifier for test names (`int`, `float`, `double`).
    pub fn ident(self) -> &'static str {
        self.c_name()
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A declarable type: a scalar or a pointer to device data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar.
    Scalar(ScalarType),
    /// A pointer whose pointee element type is given. In generated C this is
    /// `T*`; it may hold a *device* address (from `acc_malloc` or
    /// `use_device`) — the simulated runtime tags pointer provenance.
    Ptr(ScalarType),
}

impl Type {
    /// Convenience: the `int` type.
    pub const INT: Type = Type::Scalar(ScalarType::Int);
    /// Convenience: the `float` type.
    pub const FLOAT: Type = Type::Scalar(ScalarType::Float);
    /// Convenience: the `double` type.
    pub const DOUBLE: Type = Type::Scalar(ScalarType::Double);

    /// The underlying scalar type (pointee type for pointers).
    pub fn scalar(self) -> ScalarType {
        match self {
            Type::Scalar(s) | Type::Ptr(s) => s,
        }
    }

    /// True for pointer types.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Ptr(s) => write!(f, "{s}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings() {
        assert_eq!(ScalarType::Int.c_name(), "int");
        assert_eq!(ScalarType::Double.fortran_name(), "double precision");
        assert_eq!(ScalarType::Float.fortran_name(), "real");
    }

    #[test]
    fn float_classification() {
        assert!(!ScalarType::Int.is_float());
        assert!(ScalarType::Float.is_float());
        assert!(ScalarType::Double.is_float());
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Ptr(ScalarType::Float).to_string(), "float*");
        assert_eq!(Type::INT.to_string(), "int");
    }

    #[test]
    fn ptr_classification_and_scalar() {
        assert!(Type::Ptr(ScalarType::Int).is_ptr());
        assert!(!Type::DOUBLE.is_ptr());
        assert_eq!(Type::Ptr(ScalarType::Double).scalar(), ScalarType::Double);
    }

    #[test]
    fn sizes() {
        assert_eq!(ScalarType::Float.size_bytes(), 4);
        assert_eq!(ScalarType::Double.size_bytes(), 8);
        assert_eq!(ScalarType::Int.size_bytes(), 8);
    }
}
