//! C code generation: renders a [`Program`] as a standalone C translation
//! unit with `#pragma acc` directive lines, in the style of the paper's
//! generated tests.
//!
//! The emitted subset is exactly what `acc-frontend`'s C parser accepts;
//! emit→parse→emit is a fixpoint (property-tested in `acc-frontend`).

use crate::acc::{AccClause, DataRef};
use crate::expr::{Expr, UnOp};
use crate::program::{Function, ParamKind, Program};
use crate::stmt::{ForLoop, LValue, Stmt};
use crate::types::{ScalarType, Type};
use std::fmt::Write;

/// Render a whole program as C source.
pub fn emit_c(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* test program: {} */", p.name);
    out.push_str("#include <openacc.h>\n#include <math.h>\n#include <stdlib.h>\n\n");
    // Emit prototypes for helpers so call-before-def parses cleanly.
    for f in &p.functions {
        if f.name != "main" {
            let _ = writeln!(out, "{};", signature(f));
        }
    }
    if p.functions.iter().any(|f| f.name != "main") {
        out.push('\n');
    }
    let mut first = true;
    for f in &p.functions {
        if !first {
            out.push('\n');
        }
        first = false;
        emit_function(&mut out, f);
    }
    out
}

fn signature(f: &Function) -> String {
    let ret = f.ret.map(|t| t.c_name()).unwrap_or("void");
    let params = if f.params.is_empty() {
        "void".to_string()
    } else {
        f.params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Scalar(t) => format!("{} {}", t.c_name(), p.name),
                ParamKind::ArrayPtr(t) => format!("{}* {}", t.c_name(), p.name),
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!("{ret} {}({params})", f.name)
}

fn emit_function(out: &mut String, f: &Function) {
    let _ = writeln!(out, "{} {{", signature(f));
    for s in &f.body {
        emit_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_block(out: &mut String, body: &[Stmt], level: usize) {
    indent(out, level);
    out.push_str("{\n");
    for s in body {
        emit_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push_str("}\n");
}

fn emit_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::DeclScalar { name, ty, init } => {
            indent(out, level);
            let decl = match ty {
                Type::Scalar(t) => format!("{} {}", t.c_name(), name),
                Type::Ptr(t) => format!("{}* {}", t.c_name(), name),
            };
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{decl} = {};", expr_to_c(e));
                }
                None => {
                    let _ = writeln!(out, "{decl};");
                }
            }
        }
        Stmt::DeclArray { name, elem, dims } => {
            indent(out, level);
            let dims: String = dims.iter().map(|d| format!("[{d}]")).collect();
            let _ = writeln!(out, "{} {name}{dims};", elem.c_name());
        }
        Stmt::Assign { target, op, value } => {
            indent(out, level);
            let t = lvalue_to_c(target);
            match op {
                Some(op) => {
                    let _ = writeln!(out, "{t} {}= {};", op.c_symbol(), expr_to_c(value));
                }
                None => {
                    let _ = writeln!(out, "{t} = {};", expr_to_c(value));
                }
            }
        }
        Stmt::For(l) => emit_for(out, l, level),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({})", expr_to_c(cond));
            emit_block(out, then_body, level);
            if !else_body.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                emit_block(out, else_body, level);
            }
        }
        Stmt::Call { name, args } => {
            indent(out, level);
            let args: Vec<String> = args.iter().map(expr_to_c).collect();
            let _ = writeln!(out, "{name}({});", args.join(", "));
        }
        Stmt::Return(e) => {
            indent(out, level);
            let _ = writeln!(out, "return {};", expr_to_c(e));
        }
        Stmt::AccBlock { dir, body } => {
            indent(out, level);
            let _ = writeln!(out, "#pragma acc {}", dir.render_suffix());
            emit_block(out, body, level);
        }
        Stmt::AccLoop { dir, l } => {
            indent(out, level);
            let _ = writeln!(out, "#pragma acc {}", dir.render_suffix());
            emit_for(out, l, level);
        }
        Stmt::AccStandalone { dir } => {
            indent(out, level);
            let _ = writeln!(out, "#pragma acc {}", dir.render_suffix());
        }
    }
}

fn emit_for(out: &mut String, l: &ForLoop, level: usize) {
    indent(out, level);
    let step = match &l.step {
        Expr::Int(1) => format!("{}++", l.var),
        e => format!("{} += {}", l.var, expr_to_c(e)),
    };
    let _ = writeln!(
        out,
        "for ({v} = {from}; {v} < {to}; {step})",
        v = l.var,
        from = expr_to_c(&l.from),
        to = expr_to_c(&l.to),
    );
    emit_block(out, &l.body, level);
}

fn lvalue_to_c(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Index { base, indices } => {
            let idx: String = indices
                .iter()
                .map(|e| format!("[{}]", expr_to_c(e)))
                .collect();
            format!("{base}{idx}")
        }
    }
}

/// Render an expression in C syntax with minimal parentheses.
pub fn expr_to_c(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Real(v, ty) => real_to_c(*v, *ty),
        Expr::Var(n) => n.clone(),
        Expr::Index { base, indices } => {
            let idx: String = indices
                .iter()
                .map(|e| format!("[{}]", expr_to_c(e)))
                .collect();
            format!("{base}{idx}")
        }
        Expr::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", expr_prec(inner, 11))
        }
        Expr::Binary(op, l, r) => {
            let prec = op.precedence();
            // Left-associative: the right operand needs prec+1.
            let s = format!(
                "{} {} {}",
                expr_prec(l, prec),
                op.c_symbol(),
                expr_prec(r, prec + 1)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_to_c).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::SizeOf(t) => format!("sizeof({})", t.c_name()),
    }
}

fn real_to_c(v: f64, ty: ScalarType) -> String {
    // `{:?}` gives the shortest representation that round-trips the value.
    let mut s = format!("{v:?}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    if ty == ScalarType::Float {
        s.push('f');
    }
    s
}

/// Render a single clause in C clause syntax.
pub fn clause_to_c(c: &AccClause) -> String {
    match c {
        AccClause::If(e) => format!("if({})", expr_to_c(e)),
        AccClause::Async(None) => "async".to_string(),
        AccClause::Async(Some(e)) => format!("async({})", expr_to_c(e)),
        AccClause::NumGangs(e) => format!("num_gangs({})", expr_to_c(e)),
        AccClause::NumWorkers(e) => format!("num_workers({})", expr_to_c(e)),
        AccClause::VectorLength(e) => format!("vector_length({})", expr_to_c(e)),
        AccClause::Reduction(op, vars) => {
            format!("reduction({}:{})", op.c_symbol(), vars.join(", "))
        }
        AccClause::Data(kind, refs) => {
            let refs: Vec<String> = refs.iter().map(dataref_to_c).collect();
            format!("{}({})", kind.name(), refs.join(", "))
        }
        AccClause::Deviceptr(vars) => format!("deviceptr({})", vars.join(", ")),
        AccClause::Private(vars) => format!("private({})", vars.join(", ")),
        AccClause::Firstprivate(vars) => format!("firstprivate({})", vars.join(", ")),
        AccClause::UseDevice(vars) => format!("use_device({})", vars.join(", ")),
        AccClause::Gang(None) => "gang".to_string(),
        AccClause::Gang(Some(e)) => format!("gang({})", expr_to_c(e)),
        AccClause::Worker(None) => "worker".to_string(),
        AccClause::Worker(Some(e)) => format!("worker({})", expr_to_c(e)),
        AccClause::Vector(None) => "vector".to_string(),
        AccClause::Vector(Some(e)) => format!("vector({})", expr_to_c(e)),
        AccClause::Seq => "seq".to_string(),
        AccClause::Independent => "independent".to_string(),
        AccClause::Collapse(e) => format!("collapse({})", expr_to_c(e)),
        AccClause::DefaultNone => "default(none)".to_string(),
        AccClause::Auto => "auto".to_string(),
    }
}

/// Render a data reference in C section syntax.
pub fn dataref_to_c(r: &DataRef) -> String {
    match &r.section {
        None => r.name.clone(),
        Some((start, len)) => {
            format!("{}[{}:{}]", r.name, expr_to_c(start), expr_to_c(len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::AccDirective;
    use crate::expr::BinOp;
    use crate::program::Param;
    use acc_spec::{ClauseKind, DirectiveKind, Language, ReductionOp};

    #[test]
    fn minimal_parens() {
        // a + b * c needs no parens; (a + b) * c does.
        let e1 = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::var("c")));
        assert_eq!(expr_to_c(&e1), "a + b * c");
        let e2 = Expr::mul(Expr::add(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(expr_to_c(&e2), "(a + b) * c");
    }

    #[test]
    fn left_associativity_parens() {
        // a - (b - c) must keep parens; (a - b) - c must not.
        let rhs_nested = Expr::sub(Expr::var("a"), Expr::sub(Expr::var("b"), Expr::var("c")));
        assert_eq!(expr_to_c(&rhs_nested), "a - (b - c)");
        let lhs_nested = Expr::sub(Expr::sub(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(expr_to_c(&lhs_nested), "a - b - c");
    }

    #[test]
    fn float_literals_get_suffix() {
        assert_eq!(real_to_c(0.5, ScalarType::Float), "0.5f");
        assert_eq!(real_to_c(0.5, ScalarType::Double), "0.5");
        assert_eq!(real_to_c(1e-9, ScalarType::Double), "1e-9");
        assert_eq!(real_to_c(2.0, ScalarType::Double), "2.0");
    }

    #[test]
    fn negative_int_parenthesized() {
        assert_eq!(expr_to_c(&Expr::Int(-1)), "(-1)");
    }

    #[test]
    fn emits_paper_fig2_functional_test_shape() {
        let prog = Program::simple(
            "loop_test",
            Language::C,
            vec![
                Stmt::decl_int("i", Expr::int(0)),
                Stmt::AccBlock {
                    dir: AccDirective::new(DirectiveKind::Parallel)
                        .with(AccClause::NumGangs(Expr::int(10))),
                    body: vec![Stmt::AccLoop {
                        dir: AccDirective::new(DirectiveKind::Loop),
                        l: ForLoop::upto(
                            "i",
                            Expr::var("n"),
                            vec![Stmt::assign(
                                LValue::idx("A", Expr::var("i")),
                                Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                            )],
                        ),
                    }],
                },
                Stmt::Return(Expr::int(1)),
            ],
        );
        let src = emit_c(&prog);
        assert!(src.contains("#pragma acc parallel num_gangs(10)"));
        assert!(src.contains("#pragma acc loop"));
        assert!(src.contains("for (i = 0; i < n; i++)"));
        assert!(src.contains("A[i] = A[i] + 1;"));
        assert!(src.contains("int main(void) {"));
    }

    #[test]
    fn clause_rendering() {
        assert_eq!(
            clause_to_c(&AccClause::Reduction(ReductionOp::Add, vec!["s".into()])),
            "reduction(+:s)"
        );
        assert_eq!(
            clause_to_c(&AccClause::Data(
                ClauseKind::Copyin,
                vec![DataRef::section("A", Expr::int(0), Expr::var("N"))]
            )),
            "copyin(A[0:N])"
        );
        assert_eq!(clause_to_c(&AccClause::Async(None)), "async");
        assert_eq!(clause_to_c(&AccClause::DefaultNone), "default(none)");
    }

    #[test]
    fn helper_prototypes_emitted() {
        let mut p = Program::simple("t", Language::C, vec![Stmt::Return(Expr::int(1))]);
        p.functions.insert(
            0,
            Function {
                name: "vecadd".into(),
                params: vec![
                    Param {
                        name: "a".into(),
                        kind: ParamKind::ArrayPtr(ScalarType::Float),
                    },
                    Param {
                        name: "n".into(),
                        kind: ParamKind::Scalar(ScalarType::Int),
                    },
                ],
                ret: None,
                body: vec![],
            },
        );
        let src = emit_c(&p);
        assert!(src.contains("void vecadd(float* a, int n);"));
    }

    #[test]
    fn sizeof_and_malloc_pattern() {
        let e = Expr::call(
            "acc_malloc",
            vec![Expr::mul(Expr::var("n"), Expr::SizeOf(ScalarType::Float))],
        );
        assert_eq!(expr_to_c(&e), "acc_malloc(n * sizeof(float))");
    }

    #[test]
    fn compound_assignment() {
        let mut out = String::new();
        emit_stmt(
            &mut out,
            &Stmt::assign_op(LValue::var("sum"), BinOp::Add, Expr::var("m")),
            0,
        );
        assert_eq!(out, "sum += m;\n");
    }

    #[test]
    fn if_else_rendering() {
        let mut out = String::new();
        emit_stmt(
            &mut out,
            &Stmt::If {
                cond: Expr::ne(Expr::var("x"), Expr::int(0)),
                then_body: vec![Stmt::assign(LValue::var("e"), Expr::int(1))],
                else_body: vec![Stmt::assign(LValue::var("e"), Expr::int(2))],
            },
            0,
        );
        assert!(out.contains("if (x != 0)"));
        assert!(out.contains("else"));
    }
}
