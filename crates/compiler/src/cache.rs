//! Content-addressed compilation cache: compile once, run many.
//!
//! A validation campaign compiles the same generated source many times —
//! once per vendor version in a sweep, once more for every cross-test
//! repetition, and again on retries. The pipeline is deterministic, so all
//! of that work is redundant. [`CompileCache`] memoises it at two levels:
//!
//! * **Front-end level** — keyed by `(language, spec version, source)`.
//!   Parse, sema, and name resolution do not depend on the vendor profile
//!   at all, so one entry serves *every* vendor and version. This is the
//!   level that makes an eight-version sweep pay for one parse.
//! * **Executable level** — keyed by `(vendor profile fingerprint, source)`.
//!   The compile-time-defect walk and the resulting [`Executable`] depend on
//!   the release's bug set, so a PGI-lowered artifact is never served to
//!   Cray: their fingerprints differ.
//!
//! Keys embed the *full* source text (content addressing by exact match):
//! no hash collisions are possible, and lookups cost one hash of the
//! source — orders of magnitude below a parse. Failures are cached too;
//! compilation is deterministic, so a source that failed once fails
//! identically forever.
//!
//! The cache is `Mutex`-guarded and shared across the `--jobs` worker pool
//! via `Arc`. Compilation runs *outside* the lock; when two workers race to
//! compile the same key, the first insert wins and both get the same
//! `Arc`-shared artifact (the loser's work is discarded, not duplicated in
//! the cache). Hit/miss counters per level feed the report summary and the
//! bench JSON.

use acc_ast::Program;
use acc_frontend::ResolvedProgram;
use acc_spec::{Language, SpecVersion};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::driver::{CompileFailure, Executable};

/// The front-end artifact: parsed AST plus resolved frame layouts.
type Frontend = (Arc<Program>, Arc<ResolvedProgram>);

/// A process-lifetime, thread-safe compilation cache.
///
/// Entries never expire: keys are pure functions of their content, so an
/// entry can only become stale if the compiler itself changes — which can't
/// happen within a process.
#[derive(Default)]
pub struct CompileCache {
    frontend: Mutex<HashMap<String, Result<Frontend, CompileFailure>>>,
    exec: Mutex<HashMap<String, Result<Arc<Executable>, CompileFailure>>>,
    frontend_hits: AtomicU64,
    frontend_misses: AtomicU64,
    exec_hits: AtomicU64,
    exec_misses: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Front-end lookups served from cache.
    pub frontend_hits: u64,
    /// Front-end lookups that had to parse.
    pub frontend_misses: u64,
    /// Executable lookups served from cache.
    pub exec_hits: u64,
    /// Executable lookups that had to run the defect walk.
    pub exec_misses: u64,
}

impl CacheStats {
    /// Total lookups across both levels.
    pub fn lookups(&self) -> u64 {
        self.frontend_hits + self.frontend_misses + self.exec_hits + self.exec_misses
    }

    /// Hit rate across both levels in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.frontend_hits + self.exec_hits;
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontend {}/{} hits, executable {}/{} hits ({:.1}% overall)",
            self.frontend_hits,
            self.frontend_hits + self.frontend_misses,
            self.exec_hits,
            self.exec_hits + self.exec_misses,
            self.hit_rate() * 100.0
        )
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// An empty cache behind an `Arc`, ready to share across compilers and
    /// worker threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(CompileCache::new())
    }

    /// Get-or-compute the front-end artifact for `(language, spec, source)`.
    ///
    /// `compute` runs outside the cache lock; concurrent racers on the same
    /// key both compute, but the first insertion wins and is returned to
    /// everyone.
    pub fn frontend(
        &self,
        source: &str,
        language: Language,
        spec: SpecVersion,
        compute: impl FnOnce() -> Result<Frontend, CompileFailure>,
    ) -> Result<Frontend, CompileFailure> {
        let key = format!("{language:?}|{spec:?}\u{0}{source}");
        if let Some(cached) = self.frontend.lock().unwrap().get(&key) {
            self.frontend_hits.fetch_add(1, Ordering::Relaxed);
            // Timing-class: which worker sees the hit depends on schedule.
            acc_obs::instant_timing("cache", "frontend", vec![acc_obs::s("outcome", "hit")]);
            return cached.clone();
        }
        self.frontend_misses.fetch_add(1, Ordering::Relaxed);
        acc_obs::instant_timing("cache", "frontend", vec![acc_obs::s("outcome", "miss")]);
        let fresh = compute();
        self.frontend
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(fresh)
            .clone()
    }

    /// Get-or-compute the executable for `(profile fingerprint, source)`.
    ///
    /// `fingerprint` must uniquely determine the vendor profile (vendor,
    /// version, target, extra defects, language) — see
    /// [`crate::vendor::VendorCompiler::fingerprint`].
    pub fn executable(
        &self,
        fingerprint: &str,
        source: &str,
        compute: impl FnOnce() -> Result<Executable, CompileFailure>,
    ) -> Result<Arc<Executable>, CompileFailure> {
        let key = format!("{fingerprint}\u{0}{source}");
        if let Some(cached) = self.exec.lock().unwrap().get(&key) {
            self.exec_hits.fetch_add(1, Ordering::Relaxed);
            // Timing-class: which worker sees the hit depends on schedule.
            acc_obs::instant_timing("cache", "exec", vec![acc_obs::s("outcome", "hit")]);
            return cached.clone();
        }
        self.exec_misses.fetch_add(1, Ordering::Relaxed);
        acc_obs::instant_timing("cache", "exec", vec![acc_obs::s("outcome", "miss")]);
        let fresh = compute().map(Arc::new);
        self.exec
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(fresh)
            .clone()
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frontend_hits: self.frontend_hits.load(Ordering::Relaxed),
            frontend_misses: self.frontend_misses.load(Ordering::Relaxed),
            exec_hits: self.exec_hits.load(Ordering::Relaxed),
            exec_misses: self.exec_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct executable-level entries (one per profile ×
    /// source pair seen).
    pub fn exec_entries(&self) -> usize {
        self.exec.lock().unwrap().len()
    }

    /// Number of distinct front-end entries (one per language × source pair
    /// seen).
    pub fn frontend_entries(&self) -> usize {
        self.frontend.lock().unwrap().len()
    }
}

impl fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileCache")
            .field("frontend_entries", &self.frontend_entries())
            .field("exec_entries", &self.exec_entries())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::{VendorCompiler, VendorId};

    const SRC: &str = "int main(void) {\n    int x = 1;\n    return x;\n}\n";

    #[test]
    fn frontend_level_shares_one_parse() {
        let cache = CompileCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.frontend(SRC, Language::C, SpecVersion::V1_0, || {
                calls += 1;
                crate::driver::frontend_compile(SRC, Language::C)
            });
            assert!(r.is_ok());
        }
        assert_eq!(calls, 1, "parse ran once");
        let s = cache.stats();
        assert_eq!((s.frontend_hits, s.frontend_misses), (2, 1));
    }

    #[test]
    fn languages_do_not_collide() {
        let cache = CompileCache::new();
        let _ = cache.frontend(SRC, Language::C, SpecVersion::V1_0, || {
            crate::driver::frontend_compile(SRC, Language::C)
        });
        // Same source under Fortran is a distinct key (here it simply fails
        // to parse, which is itself cached).
        let r = cache.frontend(SRC, Language::Fortran, SpecVersion::V1_0, || {
            crate::driver::frontend_compile(SRC, Language::Fortran)
        });
        assert!(r.is_err());
        assert_eq!(cache.frontend_entries(), 2);
    }

    #[test]
    fn failures_are_cached() {
        let cache = CompileCache::new();
        let bad = "int main(void) {\n    @@@\n}\n";
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.frontend(bad, Language::C, SpecVersion::V1_0, || {
                calls += 1;
                crate::driver::frontend_compile(bad, Language::C)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1, "failed parse also ran once");
    }

    #[test]
    fn exec_level_keyed_by_fingerprint() {
        let cache = CompileCache::new();
        let pgi = VendorCompiler::latest(VendorId::Pgi);
        let cray = VendorCompiler::latest(VendorId::Cray);
        let a = cache
            .executable(&pgi.fingerprint(Language::C), SRC, || {
                pgi.compile(SRC, Language::C)
            })
            .unwrap();
        let b = cache
            .executable(&cray.fingerprint(Language::C), SRC, || {
                cray.compile(SRC, Language::C)
            })
            .unwrap();
        assert_eq!(cache.exec_entries(), 2, "distinct profiles, distinct keys");
        assert_ne!(a.profile.name, b.profile.name);
        // Re-asking for PGI is a hit and returns the same allocation.
        let a2 = cache
            .executable(&pgi.fingerprint(Language::C), SRC, || {
                pgi.compile(SRC, Language::C)
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.stats().exec_hits, 1);
    }
}
