//! The parallel gang engine: race-free partitioned loops under the VM run
//! as data-parallel element kernels over a worker pool.
//!
//! The conformance machine executes gangs deterministically in sequence so
//! that redundant-execution effects are observable (DESIGN.md §4.1). That
//! schedule is *semantically* parallel whenever the partitioned iteration
//! space is provably race-free — each iteration writes only its own
//! elements — and in that case the machine may execute the iterations in
//! any order, on any number of threads, as long as every observable
//! (memory, metrics, crash/timeout behaviour) is byte-identical.
//!
//! This module implements that fast path behind `--exec-mode par[:N]`:
//!
//! 1. **Plan** ([`build_plan`], at lowering time): a `loop` nest qualifies
//!    when its full collapse depth is a straight-line body of array-element
//!    assignments whose *written* elements are addressed exactly by the
//!    loop-variable tuple — so distinct iterations touch distinct elements —
//!    and whose right-hand sides are pure expressions over literals, scalar
//!    reads, loop variables, and array reads. Everything else (inner
//!    control flow, calls, scalar writes, worker/vector/seq/reduction/
//!    private clauses) rejects the plan and runs on the serial engine.
//! 2. **Launch** ([`Machine::try_par_region`], at run time): the remaining
//!    dynamic conditions are checked — defect knobs that change the
//!    schedule, deviceptr aliasing against the written buffers, bounds
//!    evaluation, step-budget headroom. Any check that fails (or any error
//!    during parallel evaluation) *falls back to the serial engine*, which
//!    reproduces the exact crash/timeout/partial state; the parallel path
//!    commits nothing until every iteration has succeeded.
//! 3. **Execute**: workers share the device memory read-only and buffer
//!    their writes; per-iteration read-after-write within one iteration is
//!    served from a tiny overlay keyed by `(buffer, flat index)` so
//!    deviceptr aliases observe the store. Buffered writes are applied on
//!    the interpreter thread afterwards, and the tick/instruction metrics
//!    are applied in bulk with exact closed-form counts (the expression
//!    evaluator counts the instructions the VM would have retired,
//!    including short-circuit paths, so `vm_instructions` telemetry stays
//!    comparable between engines).
//!
//! The safety argument is written out in DESIGN.md §15.

use std::collections::HashMap;

use acc_ast::{AccClause, AccDirective, BinOp, Expr, LValue, ScalarType, Stmt, UnOp};
use acc_device::memory::DeviceMemory;
use acc_device::value::ArrayData;
use acc_device::{BufferId, Defect, Value};
use acc_frontend::FrameLayout;
use acc_spec::DirectiveKind;

use crate::bytecode::{NestLoop, RegionCode, MAX_IDX, NO_SLOT};
use crate::exec::{apply_binop, apply_unop, DevCtx, Exec, Machine};

/// A compiled parallel launch plan for one `loop` nest, attached to the
/// lowered [`crate::bytecode::DevLoopNest`] when the nest is statically
/// race-free at its full collapse depth.
#[derive(Debug, Clone)]
pub(crate) struct ParPlan {
    /// Static collapse depth == number of gathered loops.
    pub(crate) collapse_n: usize,
    /// Array names touched by the body (interned order).
    pub(crate) arrays: Vec<String>,
    /// Scalar names read by the body: `(name, slot)` — resolved through
    /// `read_scalar_device_at` once per launch (constant per region, see
    /// DESIGN.md §15).
    pub(crate) captures: Vec<(String, u32)>,
    /// The straight-line body.
    pub(crate) stmts: Vec<ParStmt>,
    /// Per `arrays[i]`: written by some statement.
    pub(crate) written: Vec<bool>,
    /// Per `arrays[i]`: read through a non-tuple (general) index.
    pub(crate) general: Vec<bool>,
    /// Array/scalar base names referenced by the loop bounds — checked at
    /// launch against the written buffers (a bound reading a written buffer
    /// would be re-evaluated per unit by the serial engine).
    pub(crate) bounds_bases: Vec<String>,
}

/// One body statement: `arrays[arr][tuple] (op)= value`.
#[derive(Debug, Clone)]
pub(crate) struct ParStmt {
    pub(crate) arr: u16,
    pub(crate) op: Option<BinOp>,
    pub(crate) value: ParExpr,
}

/// An index-expression element with the extra instruction cost of its
/// lowered form (`AsInt` + `Copy` for anything that is not a plain variable
/// or integer literal — see `lower_index_block_d`).
#[derive(Debug, Clone)]
pub(crate) struct ParIdx {
    pub(crate) e: ParExpr,
    pub(crate) extra: u8,
}

/// A pure device expression, mirroring exactly what `lower_expr_d` compiles
/// (values, conversions, short-circuit shape, and instruction counts).
#[derive(Debug, Clone)]
pub(crate) enum ParExpr {
    Const(Value),
    /// Loop variable `d` of the collapse tuple (innermost binding wins).
    LoopVar(u8),
    /// `captures[i]`.
    Capture(u16),
    /// `arrays[arr]` read at the loop-variable tuple.
    ReadTuple(u16),
    /// `arrays[arr]` read at a general index vector.
    Read(u16, Box<[ParIdx]>),
    Unary(UnOp, Box<ParExpr>),
    Binary(BinOp, Box<ParExpr>, Box<ParExpr>),
}

// ---------------------------------------------------------------------------
// Plan construction (lowering time)
// ---------------------------------------------------------------------------

/// Build a parallel plan for a gathered loop nest, or `None` when any static
/// condition fails. `loops` is the full gathered chain (see `lower_nest`),
/// `body` the innermost body.
pub(crate) fn build_plan(
    dir: &AccDirective,
    loops: &[NestLoop],
    body: &[Stmt],
    layout: &FrameLayout,
) -> Option<ParPlan> {
    // Clause allowlist: partitioning stays the gang-modulo family and no
    // per-unit state (privates/reductions) exists. Region-level clauses
    // (sizing, data movement, if/async) appear here on combined
    // `parallel loop` directives and are inert at nest level — the region
    // handler consumed them before the launch.
    for c in &dir.clauses {
        match c {
            AccClause::Gang(_)
            | AccClause::Independent
            | AccClause::Collapse(_)
            | AccClause::If(_)
            | AccClause::Async(_)
            | AccClause::NumGangs(_)
            | AccClause::NumWorkers(_)
            | AccClause::VectorLength(_)
            | AccClause::Data(..)
            | AccClause::Deviceptr(_)
            | AccClause::DefaultNone
            | AccClause::Auto => {}
            AccClause::Reduction(..)
            | AccClause::Private(_)
            | AccClause::Firstprivate(_)
            | AccClause::UseDevice(_)
            | AccClause::Worker(_)
            | AccClause::Vector(_)
            | AccClause::Seq => return None,
        }
    }
    let static_n = dir
        .clauses
        .iter()
        .find_map(|c| match c {
            AccClause::Collapse(e) => e.const_int(),
            _ => None,
        })
        .unwrap_or(1)
        .max(1) as usize;
    // The nest must be tight to the full static depth, every loop variable
    // resolved, and the variable names distinct (duplicate names make the
    // tuple non-injective: every index evaluates to the innermost binding).
    if loops.len() != static_n || static_n > u8::MAX as usize {
        return None;
    }
    if loops.iter().any(|l| l.slot.is_none()) {
        return None;
    }
    let names: Vec<&str> = loops.iter().map(|l| l.name.as_str()).collect();
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            return None;
        }
    }
    let mut b = PlanBuilder {
        names: &names,
        layout,
        arrays: Vec::new(),
        arr_ids: HashMap::new(),
        captures: Vec::new(),
        cap_ids: HashMap::new(),
        written: Vec::new(),
        general: Vec::new(),
    };
    let mut stmts = Vec::with_capacity(body.len());
    for s in body {
        stmts.push(b.stmt(s)?);
    }
    // Same-name writes through a general index were rejected per statement;
    // here reject a *written* array that is also *read* generally (the read
    // could observe another iteration's store).
    for i in 0..b.arrays.len() {
        if b.written[i] && b.general[i] {
            return None;
        }
    }
    // Bounds: pure (no calls) and their referenced bases recorded for the
    // launch-time alias check against written buffers.
    let mut bounds_bases = Vec::new();
    for l in loops {
        for e in [&l.from, &l.to, &l.step] {
            if !scan_bounds(e, &mut bounds_bases) {
                return None;
            }
        }
    }
    bounds_bases.sort();
    bounds_bases.dedup();
    Some(ParPlan {
        collapse_n: static_n,
        arrays: b.arrays,
        captures: b.captures,
        stmts,
        written: b.written,
        general: b.general,
        bounds_bases,
    })
}

/// Collect base names referenced by a bounds expression; `false` when the
/// expression contains a call (or an unmodeled node) and the plan must be
/// rejected.
fn scan_bounds(e: &Expr, bases: &mut Vec<String>) -> bool {
    match e {
        Expr::Int(_) | Expr::Real(..) | Expr::SizeOf(_) => true,
        Expr::Var(n) => {
            bases.push(n.clone());
            true
        }
        Expr::Index { base, indices } => {
            bases.push(base.clone());
            indices.iter().all(|i| scan_bounds(i, bases))
        }
        Expr::Unary(_, a) => scan_bounds(a, bases),
        Expr::Binary(_, a, b) => scan_bounds(a, bases) && scan_bounds(b, bases),
        Expr::Call { .. } => false,
    }
}

struct PlanBuilder<'a> {
    names: &'a [&'a str],
    layout: &'a FrameLayout,
    arrays: Vec<String>,
    arr_ids: HashMap<String, u16>,
    captures: Vec<(String, u32)>,
    cap_ids: HashMap<String, u16>,
    written: Vec<bool>,
    general: Vec<bool>,
}

impl<'a> PlanBuilder<'a> {
    fn arr(&mut self, name: &str, write: bool, general: bool) -> Option<u16> {
        let id = match self.arr_ids.get(name) {
            Some(&i) => i,
            None => {
                if self.arrays.len() >= u16::MAX as usize {
                    return None;
                }
                let i = self.arrays.len() as u16;
                self.arrays.push(name.to_string());
                self.arr_ids.insert(name.to_string(), i);
                self.written.push(false);
                self.general.push(false);
                i
            }
        };
        self.written[id as usize] |= write;
        self.general[id as usize] |= general;
        Some(id)
    }

    fn capture(&mut self, name: &str) -> Option<u16> {
        if let Some(&i) = self.cap_ids.get(name) {
            return Some(i);
        }
        if self.captures.len() >= u16::MAX as usize {
            return None;
        }
        let slot = match self.layout.slot(name) {
            Some(s) => s as u32,
            None => NO_SLOT,
        };
        let i = self.captures.len() as u16;
        self.captures.push((name.to_string(), slot));
        self.cap_ids.insert(name.to_string(), i);
        Some(i)
    }

    /// Innermost loop variable of this name, if any.
    fn loop_var(&self, name: &str) -> Option<u8> {
        self.names.iter().rposition(|n| *n == name).map(|d| d as u8)
    }

    /// Is this index vector exactly the loop-variable tuple in nest order?
    fn is_tuple(&self, indices: &[Expr]) -> bool {
        indices.len() == self.names.len()
            && indices
                .iter()
                .zip(self.names)
                .all(|(e, n)| matches!(e, Expr::Var(v) if v == n))
    }

    fn stmt(&mut self, s: &Stmt) -> Option<ParStmt> {
        let Stmt::Assign { target, op, value } = s else {
            return None;
        };
        let LValue::Index { base, indices } = target else {
            return None;
        };
        if !self.is_tuple(indices) {
            return None;
        }
        let value = self.expr(value)?;
        let arr = self.arr(base, true, false)?;
        Some(ParStmt {
            arr,
            op: *op,
            value,
        })
    }

    fn expr(&mut self, e: &Expr) -> Option<ParExpr> {
        Some(match e {
            Expr::Int(v) => ParExpr::Const(Value::Int(*v)),
            // Mirrors `lower_expr_d`'s literal typing.
            Expr::Real(v, ScalarType::Float) => ParExpr::Const(Value::F32(*v as f32)),
            Expr::Real(v, _) => ParExpr::Const(Value::F64(*v)),
            Expr::SizeOf(t) => ParExpr::Const(Value::Int(t.size_bytes() as i64)),
            Expr::Var(n) => match self.loop_var(n) {
                Some(d) => ParExpr::LoopVar(d),
                None => ParExpr::Capture(self.capture(n)?),
            },
            Expr::Index { base, indices } => {
                if indices.len() > MAX_IDX {
                    return None;
                }
                if self.is_tuple(indices) {
                    ParExpr::ReadTuple(self.arr(base, false, false)?)
                } else {
                    let elems: Option<Vec<ParIdx>> =
                        indices.iter().map(|ie| self.idx_elem(ie)).collect();
                    ParExpr::Read(self.arr(base, false, true)?, elems?.into_boxed_slice())
                }
            }
            Expr::Unary(op, a) => ParExpr::Unary(*op, Box::new(self.expr(a)?)),
            Expr::Binary(op, a, b) => {
                ParExpr::Binary(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::Call { .. } => return None,
        })
    }

    fn idx_elem(&mut self, e: &Expr) -> Option<ParIdx> {
        // `lower_index_block_d`: a plain variable or integer literal is one
        // instruction; anything else evaluates then runs `AsInt` + `Copy`.
        let extra = match e {
            Expr::Var(_) | Expr::Int(_) => 0,
            _ => 2,
        };
        Some(ParIdx {
            e: self.expr(e)?,
            extra,
        })
    }
}

// ---------------------------------------------------------------------------
// Launch + execution (run time)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Elem {
    Int,
    F32,
    F64,
}

/// Everything a worker needs about one touched array.
#[derive(Debug, Clone)]
struct ArrInfo {
    buf: BufferId,
    dims: Vec<usize>,
    len: usize,
    elem: Elem,
}

/// The shared, read-only context workers evaluate against.
struct ParCtx<'a> {
    mem: &'a DeviceMemory,
    plan: &'a ParPlan,
    arrays: &'a [ArrInfo],
    captures: &'a [Value],
    /// Per collapse depth: `(from, step, count)`.
    bounds: &'a [(i64, i64, u64)],
}

/// One worker's buffered effects: `(array, flat, converted value)` writes in
/// iteration order, plus the VM instructions the serial engine would have
/// retired for the same iterations.
#[derive(Debug, Default)]
struct WorkerOut {
    writes: Vec<(u16, usize, Value)>,
    instrs: u64,
}

/// Evaluation error — the cause is irrelevant: any error aborts the launch
/// before anything is committed and the serial engine reproduces the exact
/// observable failure.
struct Bail;

type Ev<T> = Result<T, Bail>;

fn opt_slot(s: u32) -> Option<usize> {
    if s == NO_SLOT {
        None
    } else {
        Some(s as usize)
    }
}

impl<'a> Machine<'a> {
    /// Try to execute a compute region's gang loop on the parallel engine.
    /// Returns `Ok(true)` when the region body was fully executed (the
    /// caller skips the serial gang loop); `Ok(false)` falls back to the
    /// serial engine with **no observable effects performed**.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_par_region(
        &mut self,
        rc: &RegionCode,
        num_gangs: u32,
        num_workers: u32,
        vector_len: u32,
        kernels_mode: bool,
        layout: &'a FrameLayout,
        devptr: &HashMap<String, BufferId>,
        has_region_state: bool,
    ) -> Exec<bool> {
        let Some(threads) = self.par_threads else {
            return Ok(false);
        };
        if !self.use_vm || has_region_state {
            return Ok(false);
        }
        let Some(rp) = rc.par else {
            return Ok(false);
        };
        let bp = self
            .code
            .expect("parallel launch without bytecode");
        let nest = &bp.nests[rp.nest as usize];
        let Some(plan) = &nest.par else {
            return Ok(false);
        };
        let n_dir = &bp.dirs[nest.dir as usize];
        // Serial no-op: zero gangs execute nothing.
        if num_gangs == 0 {
            return Ok(false);
        }
        // Dynamic schedule-changing defects (`exec_acc_loop_device`'s
        // redundant-run / hang / collapse paths).
        if self.profile.ignores_directive(DirectiveKind::Loop) && n_dir.kind == DirectiveKind::Loop
        {
            return Ok(false);
        }
        for c in &n_dir.clauses {
            if self.profile.hangs_on(n_dir.kind, c.kind()) {
                return Ok(false);
            }
        }
        let mut collapse_n = n_dir
            .clauses
            .iter()
            .filter(|c| !self.profile.ignores_clause(n_dir.kind, c.kind()))
            .find_map(|c| match c {
                AccClause::Collapse(e) => e.const_int(),
                _ => None,
            })
            .unwrap_or(1)
            .max(1) as usize;
        if self.profile.has(&Defect::CollapseIgnoresInner) {
            collapse_n = 1;
        }
        if collapse_n != plan.collapse_n {
            return Ok(false);
        }

        // Resolve the touched arrays exactly like `vm_dev_elem`
        // (deviceptr, then present table); any miss is a runtime crash the
        // serial engine reproduces.
        let mut arrays: Vec<ArrInfo> = Vec::with_capacity(plan.arrays.len());
        for name in &plan.arrays {
            let buf = if let Some(b) = devptr.get(name) {
                *b
            } else if let Some(e) = self.world.present.get(name) {
                e.buffer
            } else {
                return Ok(false);
            };
            let Ok(b) = self.world.mem.get(buf) else {
                return Ok(false);
            };
            let (elem, len) = match &b.data {
                ArrayData::Int(v) => (Elem::Int, v.len()),
                ArrayData::F32(v) => (Elem::F32, v.len()),
                ArrayData::F64(v) => (Elem::F64, v.len()),
            };
            arrays.push(ArrInfo {
                buf,
                dims: b.dims.clone(),
                len,
                elem,
            });
        }
        // Aliasing: a buffer written under any name must not be reached
        // through a general index (another iteration's element) nor by the
        // bounds under any alias.
        let written_bufs: Vec<BufferId> = arrays
            .iter()
            .zip(&plan.written)
            .filter(|(_, w)| **w)
            .map(|(a, _)| a.buf)
            .collect();
        for (a, g) in arrays.iter().zip(&plan.general) {
            if *g && written_bufs.contains(&a.buf) {
                return Ok(false);
            }
        }
        for name in &plan.bounds_bases {
            let buf = if let Some(b) = devptr.get(name) {
                Some(*b)
            } else {
                self.world.present.get(name).map(|e| e.buffer)
            };
            if let Some(b) = buf {
                if written_bufs.contains(&b) {
                    return Ok(false);
                }
            }
        }
        // A scalar capture that resolves through the present table reads a
        // device buffer element; freeze it only if that buffer is unwritten.
        for (name, _) in &plan.captures {
            if devptr.get(name).is_none() && self.host_array_id(name).is_none() {
                if let Some(e) = self.world.present.get(name) {
                    if written_bufs.contains(&e.buffer) {
                        return Ok(false);
                    }
                }
            }
        }

        // Scratch context for bounds/capture evaluation: built exactly like
        // a gang context and discarded (its only mutation is the implicit
        // firstprivate bind, re-derived identically by every serial gang).
        let mut sctx = DevCtx::for_gang(
            num_gangs,
            num_workers,
            vector_len,
            0,
            kernels_mode,
            layout,
            devptr,
        );
        let mut captures: Vec<Value> = Vec::with_capacity(plan.captures.len());
        for (name, slot) in &plan.captures {
            let s = opt_slot(*slot);
            let v = match s.and_then(|i| sctx.value(i)) {
                Some(v) => v,
                None => match self.read_scalar_device_at(name, s, &mut sctx) {
                    Ok(v) => v,
                    Err(_) => return Ok(false),
                },
            };
            captures.push(v);
        }
        // Bounds, mirroring `vm_nest_collapsed` (evaluated per unit there;
        // value-identical here because they reference no written buffer).
        let mut bounds: Vec<(i64, i64, u64)> = Vec::with_capacity(collapse_n);
        for lp in &nest.loops[..collapse_n] {
            let mut ev = |e: &Expr| -> Ev<i64> {
                self.eval_device(e, &mut sctx)
                    .and_then(|v| v.as_int().map_err(crate::exec::crash))
                    .map_err(|_| Bail)
            };
            let (Ok(from), Ok(to), Ok(step)) = (ev(&lp.from), ev(&lp.to), ev(&lp.step)) else {
                return Ok(false);
            };
            if step <= 0 {
                return Ok(false);
            }
            let count = if to > from {
                ((to - from) + step - 1) / step
            } else {
                0
            };
            bounds.push((from, step, count as u64));
        }
        let mut total: u64 = 1;
        for b in &bounds {
            let Some(t) = total.checked_mul(b.2) else {
                return Ok(false);
            };
            total = t;
        }

        // Step-budget preflight: every tick of the launch must fit, or the
        // serial engine times out mid-region and we must reproduce that.
        let stmts_per_iter = plan.stmts.len() as u64;
        let needed = (num_gangs as u64)
            .checked_mul(rp.pre_ticks)
            .and_then(|p| total.checked_mul(stmts_per_iter).map(|i| (p, i)));
        let Some((pre, iter_ticks)) = needed else {
            return Ok(false);
        };
        let Some(needed) = pre.checked_add(iter_ticks) else {
            return Ok(false);
        };
        if self.steps.saturating_add(needed) > self.step_limit {
            return Ok(false);
        }

        // Dispatch. Workers share the device memory read-only and buffer
        // their writes; the block partition preserves global iteration
        // order in the concatenated output.
        let threads = match threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t as usize,
        };
        let pctx = ParCtx {
            mem: &self.world.mem,
            plan,
            arrays: &arrays,
            captures: &captures,
            bounds: &bounds,
        };
        let results = acc_device::parallel::par_ranges(total, threads, |lo, hi| {
            run_range(&pctx, lo, hi)
        });
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(o) => outs.push(o),
                Err(Bail) => return Ok(false),
            }
        }

        // Commit: writes in global iteration order, then bulk metrics.
        for out in &outs {
            for (arr, flat, v) in &out.writes {
                let info = &arrays[*arr as usize];
                self.world
                    .mem
                    .write(info.buf, *flat, *v)
                    .map_err(crate::exec::crash)?;
            }
        }
        let body_instrs: u64 = outs.iter().map(|o| o.instrs).sum();
        self.steps += needed;
        self.world.metrics.statements_executed += needed;
        self.region_cost += needed;
        self.world.metrics.device_iterations += total;
        self.vm_instructions += (num_gangs as u64) * rp.instrs_per_gang + body_instrs;
        self.par_launches += 1;
        Ok(true)
    }
}

/// Decompose a flat iteration index into per-loop values — the exact
/// row-major formula of `vm_nest_collapsed`.
#[inline]
fn decompose(flat: u64, bounds: &[(i64, i64, u64)], idxs: &mut [i64]) {
    let mut rem = flat;
    for d in (0..bounds.len()).rev() {
        let c = bounds[d].2.max(1);
        idxs[d] = bounds[d].0 + ((rem % c) as i64) * bounds[d].1;
        rem /= c;
    }
}

/// Flat element address for an index vector — `vm_dev_elem`'s raw-buffer
/// linear path plus `flatten`'s checked row-major form. Any violation bails
/// (the serial engine reproduces the crash).
#[inline]
fn flat_for(info: &ArrInfo, vals: &[i64]) -> Ev<usize> {
    if info.dims.is_empty() {
        if vals.len() != 1 || vals[0] < 0 {
            return Err(Bail);
        }
        return Ok(vals[0] as usize);
    }
    if vals.len() != info.dims.len() {
        return Err(Bail);
    }
    let mut flat = 0usize;
    for (v, d) in vals.iter().zip(&info.dims) {
        if *v < 0 || *v as usize >= *d {
            return Err(Bail);
        }
        flat = flat * d + *v as usize;
    }
    Ok(flat)
}

/// The stored form of a value written to an array element — exactly
/// `ArrayData::set`'s conversion, applied at buffering time so the overlay
/// and the final store observe identical bits.
#[inline]
fn convert(elem: Elem, v: Value) -> Ev<Value> {
    Ok(match elem {
        Elem::Int => Value::Int(v.as_int().map_err(|_| Bail)?),
        Elem::F32 => Value::F32(v.as_f64().map_err(|_| Bail)? as f32),
        Elem::F64 => Value::F64(v.as_f64().map_err(|_| Bail)?),
    })
}

#[inline]
fn overlay_get(overlay: &[(BufferId, usize, Value)], buf: BufferId, flat: usize) -> Option<Value> {
    overlay
        .iter()
        .rev()
        .find(|(b, f, _)| *b == buf && *f == flat)
        .map(|(_, _, v)| *v)
}

/// Read an element: this iteration's own stores first (aliasing-aware),
/// then shared device memory.
#[inline]
fn read_elem(
    ctx: &ParCtx<'_>,
    overlay: &[(BufferId, usize, Value)],
    arr: u16,
    flat: usize,
) -> Ev<Value> {
    let info = &ctx.arrays[arr as usize];
    if let Some(v) = overlay_get(overlay, info.buf, flat) {
        return Ok(v);
    }
    ctx.mem.read(info.buf, flat).map_err(|_| Bail)
}

/// Execute iterations `[lo, hi)` of the flat space, buffering writes.
fn run_range(ctx: &ParCtx<'_>, lo: u64, hi: u64) -> Result<WorkerOut, Bail> {
    let n = ctx.plan.collapse_n;
    let mut idxs = vec![0i64; n];
    let mut overlay: Vec<(BufferId, usize, Value)> = Vec::new();
    let mut out = WorkerOut::default();
    for flat in lo..hi {
        decompose(flat, ctx.bounds, &mut idxs);
        overlay.clear();
        for st in &ctx.plan.stmts {
            out.instrs += 1; // TickDev
            let rhs = eval(ctx, &st.value, &idxs, &overlay, &mut out.instrs)?;
            let info = &ctx.arrays[st.arr as usize];
            let aflat = flat_for(info, &idxs)?;
            out.instrs += n as u64; // index block (IdxVarD per tuple var)
            let v = match st.op {
                None => rhs,
                Some(op) => {
                    out.instrs += 1; // ReadIdxD (old value, after the rhs)
                    let old = read_elem(ctx, &overlay, st.arr, aflat)?;
                    out.instrs += 1; // Binop
                    let c = apply_binop(op, old, rhs).map_err(|_| Bail)?;
                    out.instrs += n as u64; // re-evaluated index block
                    c
                }
            };
            out.instrs += 1; // WriteIdxD
            if aflat >= info.len {
                return Err(Bail); // device write out of bounds
            }
            let cv = convert(info.elem, v)?;
            overlay.push((info.buf, aflat, cv));
            out.writes.push((st.arr, aflat, cv));
        }
        out.instrs += 1; // End of the body chunk
    }
    Ok(out)
}

/// Evaluate a pure device expression for one iteration, accumulating the
/// instruction count the VM dispatch loop would have retired (including the
/// data-dependent short-circuit paths of `&&`/`||`).
fn eval(
    ctx: &ParCtx<'_>,
    e: &ParExpr,
    idxs: &[i64],
    overlay: &[(BufferId, usize, Value)],
    instrs: &mut u64,
) -> Ev<Value> {
    match e {
        ParExpr::Const(v) => {
            *instrs += 1;
            Ok(*v)
        }
        ParExpr::LoopVar(d) => {
            *instrs += 1; // ReadVarD / IdxVarD fast path
            Ok(Value::Int(idxs[*d as usize]))
        }
        ParExpr::Capture(i) => {
            *instrs += 1;
            Ok(ctx.captures[*i as usize])
        }
        ParExpr::ReadTuple(arr) => {
            *instrs += idxs.len() as u64 + 1; // index block + ReadIdxD
            let flat = flat_for(&ctx.arrays[*arr as usize], idxs)?;
            read_elem(ctx, overlay, *arr, flat)
        }
        ParExpr::Read(arr, elems) => {
            let mut vals = [0i64; MAX_IDX];
            for (k, ie) in elems.iter().enumerate() {
                let v = eval(ctx, &ie.e, idxs, overlay, instrs)?;
                *instrs += ie.extra as u64;
                vals[k] = v.as_int().map_err(|_| Bail)?;
            }
            *instrs += 1; // ReadIdxD
            let flat = flat_for(&ctx.arrays[*arr as usize], &vals[..elems.len()])?;
            read_elem(ctx, overlay, *arr, flat)
        }
        ParExpr::Unary(op, a) => {
            let v = eval(ctx, a, idxs, overlay, instrs)?;
            *instrs += 1;
            apply_unop(*op, v).map_err(|_| Bail)
        }
        ParExpr::Binary(BinOp::And, a, b) => {
            let av = eval(ctx, a, idxs, overlay, instrs)?;
            *instrs += 2; // Const(0) + JumpIfFalse
            if !av.truthy() {
                return Ok(Value::Int(0));
            }
            let bv = eval(ctx, b, idxs, overlay, instrs)?;
            *instrs += 1; // Binop
            apply_binop(BinOp::And, av, bv).map_err(|_| Bail)
        }
        ParExpr::Binary(BinOp::Or, a, b) => {
            let av = eval(ctx, a, idxs, overlay, instrs)?;
            *instrs += 2; // Const(1) + JumpIfTrue
            if av.truthy() {
                return Ok(Value::Int(1));
            }
            let bv = eval(ctx, b, idxs, overlay, instrs)?;
            *instrs += 1; // Binop
            apply_binop(BinOp::Or, av, bv).map_err(|_| Bail)
        }
        ParExpr::Binary(op, a, b) => {
            let av = eval(ctx, a, idxs, overlay, instrs)?;
            let bv = eval(ctx, b, idxs, overlay, instrs)?;
            *instrs += 1;
            apply_binop(*op, av, bv).map_err(|_| Bail)
        }
    }
}
