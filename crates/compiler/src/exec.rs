//! The execution machine: interprets a compiled test program against the
//! simulated device, under the vendor's behavioural profile.
//!
//! ## Execution model
//!
//! Host code is interpreted statement by statement. A `parallel` region
//! executes its body once per gang, gangs in deterministic sequence
//! (gang-redundant mode); `loop` directives partition iterations across
//! gangs/workers/vector lanes per the vendor mapping. A `kernels` region
//! executes its body once, auto-parallelizing annotated loops. All data
//! clause semantics run against the discrete device memory: a host variable
//! and its device copy only synchronize at transfer points, so wrong-code
//! defects surface exactly the way the paper's tests observe them.
//!
//! ## Outcomes
//!
//! [`RunOutcome`] mirrors the paper's runtime-error classes (§V): a
//! completed run with the program's return value, a crash (bad device
//! address, `present` miss, pointer misuse, runtime-routine failure), or a
//! timeout (step budget exhausted — "the code executes forever").

use acc_ast::{
    AccClause, AccDirective, BinOp, Expr, ForLoop, Function, LValue, ParamKind, Program,
    ScalarType, Stmt, Type, UnOp,
};
use acc_device::memory::ExitAction;
use acc_device::queue::AsyncTag;
use acc_device::{ArrayData, BufferId, Defect, ExecProfile, PresentEntry, Value, WorkerLoopPolicy};
use acc_frontend::{FrameLayout, ResolvedProgram};
use acc_runtime::routines::dispatch;
use acc_runtime::World;
use acc_spec::envvar::EnvConfig;
use acc_spec::{ClauseKind, DeviceType, DirectiveKind, RuntimeRoutine};
use std::collections::{BTreeSet, HashMap};

use crate::driver::Executable;

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The program ran to completion and `main` returned this value
    /// (1 = the test's pass convention).
    Completed(i64),
    /// A runtime crash with its message.
    Crash(String),
    /// The step budget was exhausted (simulated hang).
    Timeout,
}

impl RunOutcome {
    /// Did the run complete with a nonzero (pass) result?
    pub fn passed(&self) -> bool {
        matches!(self, RunOutcome::Completed(v) if *v != 0)
    }
}

/// Result of one program execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Outcome.
    pub outcome: RunOutcome,
    /// Device metrics.
    pub metrics: acc_device::Metrics,
}

/// Which execution engine runs the compiled program.
///
/// Both engines share every piece of machine state (frames, device memory,
/// clocks, fault draws) and must produce byte-identical results; the walker
/// is kept as the reference oracle behind `--exec-mode=walk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The register-based bytecode VM (default; see `bytecode`/`vm`).
    #[default]
    Vm,
    /// The original AST tree-walker, kept as the reference oracle.
    Walk,
    /// The bytecode VM with the parallel gang engine enabled: provably
    /// race-free partitioned loops execute as data-parallel element
    /// kernels over a worker pool (see `par`); everything else falls back
    /// to the serial VM. `threads == 0` means auto (one per core).
    Par {
        /// Worker threads (0 = auto).
        threads: u16,
    },
}

impl ExecMode {
    /// Parse the `--exec-mode` CLI spelling (`vm`, `walk`, `par`,
    /// `par:<threads>`).
    pub fn from_cli(s: &str) -> Option<ExecMode> {
        match s {
            "vm" => Some(ExecMode::Vm),
            "walk" => Some(ExecMode::Walk),
            "par" => Some(ExecMode::Par { threads: 0 }),
            _ => {
                let t = s.strip_prefix("par:")?.parse().ok()?;
                Some(ExecMode::Par { threads: t })
            }
        }
    }

    /// The engine family name (thread count elided).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Vm => "vm",
            ExecMode::Walk => "walk",
            ExecMode::Par { .. } => "par",
        }
    }

    /// The exact CLI spelling that round-trips through [`from_cli`].
    pub fn cli_string(self) -> String {
        match self {
            ExecMode::Par { threads } if threads != 0 => format!("par:{threads}"),
            m => m.name().to_string(),
        }
    }
}

/// Per-run execution knobs the fault-tolerant executor threads through.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunKnobs {
    /// Override of the interpreter's step budget (`None` = the default
    /// 20M-step limit). The executor's watchdog shrinks this so hang-class
    /// defects classify as timeouts quickly.
    pub step_limit: Option<u64>,
    /// Which attempt this is (0 for the first run). Transient-fault draws
    /// mix this in so retries see fresh, but still deterministic, faults.
    pub run_index: u64,
    /// Which engine executes the program (bytecode VM by default).
    pub exec_mode: ExecMode,
    /// Memoize the run result on the executable, keyed by `(env, knobs)`.
    /// Execution is a pure function of those inputs (fault draws included —
    /// they are seeded by `run_index`, never by wall clock or scheduling),
    /// so campaign paths that re-execute a cached executable under identical
    /// knobs can reuse the result. Off by default so throughput benchmarks
    /// and one-shot runs still measure the engine; bypassed entirely while
    /// observability is recording so traces stay faithful.
    pub memo: bool,
}

impl Executable {
    /// Run the program with an empty environment.
    pub fn run(&self) -> RunResult {
        self.run_with_env(&EnvConfig::empty())
    }

    /// Run the program honoring ACC_* environment variables.
    pub fn run_with_env(&self, env: &EnvConfig) -> RunResult {
        self.run_with_knobs(env, RunKnobs::default())
    }

    /// Run with explicit execution knobs (step budget, attempt index).
    ///
    /// When `knobs.memo` is set (and observability is not recording), the
    /// result is memoized on the executable keyed by the full input tuple
    /// `(step_limit, run_index, exec_mode, env)` — sound because execution
    /// is a pure function of those inputs (DESIGN.md §15.4).
    pub fn run_with_knobs(&self, env: &EnvConfig, knobs: RunKnobs) -> RunResult {
        if !knobs.memo || acc_obs::active() {
            return self.run_uncached(env, knobs, false).0;
        }
        let key = format!(
            "{:?}|{}|{}|{:?}",
            knobs.step_limit,
            knobs.run_index,
            knobs.exec_mode.cli_string(),
            env
        );
        if let Some(hit) = self.run_memo.lock().expect("run memo poisoned").get(&key) {
            return hit.clone();
        }
        let result = self.run_uncached(env, knobs, false).0;
        self.run_memo
            .lock()
            .expect("run memo poisoned")
            .insert(key, result.clone());
        result
    }

    /// Run with the VM's opcode-pair profiler enabled and return the
    /// profile alongside the result (drives `accvv disasm --hot`).
    pub fn run_profiled(&self, env: &EnvConfig, knobs: RunKnobs) -> (RunResult, VmProfile) {
        self.run_uncached(env, knobs, true)
    }

    fn run_uncached(
        &self,
        env: &EnvConfig,
        knobs: RunKnobs,
        profile_pairs: bool,
    ) -> (RunResult, VmProfile) {
        let mut m = Machine::new(
            &self.program,
            &self.resolved,
            &self.profile,
            self.concrete_device,
            env,
        );
        match knobs.exec_mode {
            ExecMode::Walk => {}
            ExecMode::Vm => {
                m.code = Some(&self.code);
                m.use_vm = true;
            }
            ExecMode::Par { threads } => {
                m.code = Some(&self.code);
                m.use_vm = true;
                m.par_threads = Some(threads);
            }
        }
        if profile_pairs {
            m.pair_profile = Some(
                vec![0u64; (crate::bytecode::OPCODE_COUNT + 1) * crate::bytecode::OPCODE_COUNT]
                    .into_boxed_slice(),
            );
        }
        if let Some(limit) = knobs.step_limit {
            m.step_limit = limit;
        }
        m.run_index = knobs.run_index;
        let outcome = m.run_main();
        if acc_obs::active() {
            let met = &m.world.metrics;
            acc_obs::counter("kernel_launches", met.kernels_launched as i64);
            acc_obs::counter("memcpy_h2d_bytes", met.bytes_to_device as i64);
            acc_obs::counter("memcpy_d2h_bytes", met.bytes_to_host as i64);
            if m.use_vm {
                acc_obs::counter("vm_instructions", m.vm_instructions as i64);
                acc_obs::counter("vm_dispatches_fused", m.vm_fused_saved as i64);
                if m.par_threads.is_some() {
                    acc_obs::counter("vm_par_launches", m.par_launches as i64);
                }
            }
        }
        let profile = VmProfile {
            instructions: m.vm_instructions,
            fused_saved: m.vm_fused_saved,
            pairs: m.pair_profile.take().map(Vec::from).unwrap_or_default(),
        };
        (
            RunResult {
                outcome,
                metrics: m.world.metrics.clone(),
            },
            profile,
        )
    }
}

/// Telemetry from a profiled VM run (see [`Executable::run_profiled`]).
#[derive(Debug, Clone, Default)]
pub struct VmProfile {
    /// Raw instructions retired — fused superinstructions count as the
    /// number of constituent instructions they replace, so this number is
    /// comparable across fused/unfused images and across PRs.
    pub instructions: u64,
    /// Dispatches saved by superinstruction fusion (one per fused pair
    /// executed). `instructions - fused_saved` = actual dispatch count.
    pub fused_saved: u64,
    /// Row-major `(prev, next)` opcode-pair execution counts, with one
    /// extra leading row for chunk entry. Dimensions
    /// `(OPCODE_COUNT + 1) x OPCODE_COUNT`; empty unless profiling ran.
    pub pairs: Vec<u64>,
}

impl VmProfile {
    /// The `n` hottest adjacent `(prev, next)` opcode pairs, as
    /// `(prev_name, next_name, count)` descending — the histogram that
    /// drives superinstruction selection. Chunk-entry pseudo-pairs (an
    /// instruction with no predecessor) are excluded.
    pub fn top_pairs(&self, n: usize) -> Vec<(&'static str, &'static str, u64)> {
        use crate::bytecode::{opcode_name, OPCODE_COUNT};
        let mut v: Vec<(usize, usize, u64)> = Vec::new();
        for prev in 0..OPCODE_COUNT {
            for next in 0..OPCODE_COUNT {
                let c = self
                    .pairs
                    .get(prev * OPCODE_COUNT + next)
                    .copied()
                    .unwrap_or(0);
                if c > 0 {
                    v.push((prev, next, c));
                }
            }
        }
        v.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        v.truncate(n);
        v.into_iter()
            .map(|(p, q, c)| (opcode_name(p as u8), opcode_name(q as u8), c))
            .collect()
    }
}

const DEFAULT_STEP_LIMIT: u64 = 20_000_000;

/// Abnormal termination signal threaded through the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Abort {
    Crash(String),
    Timeout,
}

pub(crate) type Exec<T> = Result<T, Abort>;

/// Control flow result of executing statements.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Flow {
    Normal,
    Return(Value),
}

/// A host array (the arena makes pass-by-reference aliasing trivial).
#[derive(Debug)]
pub(crate) struct HostArray {
    pub(crate) data: ArrayData,
    pub(crate) dims: Vec<usize>,
}

/// What an array name is bound to in a frame.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArrBinding {
    /// A host array in the arena.
    Host(usize),
    /// A device buffer (parameter bound through `host_data use_device` or a
    /// device pointer — models calling a device kernel).
    Device(BufferId),
}

/// One frame slot: the merged scalar/type/array binding of a resolved name.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Slot {
    pub(crate) val: Option<Value>,
    pub(crate) ty: Option<Type>,
    pub(crate) arr: Option<ArrBinding>,
}

/// A host call frame, backed by the function's [`FrameLayout`]: every name
/// the function can touch was assigned a dense slot index at compile time,
/// so reads and writes are vector accesses instead of `HashMap<String, _>`
/// operations cloning keys.
#[derive(Debug)]
pub(crate) struct Frame<'a> {
    layout: &'a FrameLayout,
    pub(crate) slots: Vec<Slot>,
    /// Present-table names entered by `declare`, exited at function return.
    declare_entries: Vec<String>,
    /// `host_data use_device` overlays (innermost last).
    pub(crate) host_data: Vec<HashMap<String, BufferId>>,
}

impl<'a> Frame<'a> {
    fn new(layout: &'a FrameLayout) -> Self {
        Frame {
            layout,
            slots: crate::arena::take_frame_slots(layout.len()),
            declare_entries: Vec::new(),
            host_data: Vec::new(),
        }
    }

    pub(crate) fn idx(&self, name: &str) -> Option<usize> {
        self.layout.slot(name)
    }

    fn val(&self, name: &str) -> Option<Value> {
        self.idx(name).and_then(|i| self.slots[i].val)
    }

    fn ty(&self, name: &str) -> Option<Type> {
        self.idx(name).and_then(|i| self.slots[i].ty)
    }

    fn arr(&self, name: &str) -> Option<ArrBinding> {
        self.idx(name).and_then(|i| self.slots[i].arr)
    }

    /// Write a scalar value; false when the name has no slot (a resolver
    /// gap — the caller escalates to an internal-error crash).
    #[must_use]
    fn set_val(&mut self, name: &str, v: Value) -> bool {
        match self.idx(name) {
            Some(i) => {
                self.slots[i].val = Some(v);
                true
            }
            None => false,
        }
    }

    #[must_use]
    fn set_arr(&mut self, name: &str, b: ArrBinding) -> bool {
        match self.idx(name) {
            Some(i) => {
                self.slots[i].arr = Some(b);
                true
            }
            None => false,
        }
    }
}

/// Device execution context for one gang.
///
/// Bindings live in a flat slot vector indexed by the same [`FrameLayout`]
/// as the host frame. Scope nesting is modeled with an ownership depth per
/// slot plus a per-scope undo journal: entering a scope is free, a first
/// write inside a scope journals the shadowed binding, and popping the
/// scope replays the journal — so the hot per-iteration writes are plain
/// vector stores.
#[derive(Debug)]
pub(crate) struct DevCtx<'m> {
    num_gangs: u32,
    num_workers: u32,
    vector_len: u32,
    gang: u32,
    /// Inside a gang-partitioned loop body.
    in_gang_loop: bool,
    /// `kernels` region (body runs once; loops auto-partition).
    kernels_mode: bool,
    layout: &'m FrameLayout,
    /// Current visible binding per slot (`None` = unbound).
    slots: Vec<Option<Value>>,
    /// Scope depth owning each slot's current binding (0 = gang scope).
    owner: Vec<u32>,
    /// Undo journal per open scope (gang scope 0 has none): the shadowed
    /// `(slot, value, owner)` to restore on pop.
    journals: Vec<Vec<(u32, Option<Value>, u32)>>,
    /// Names bound by a `deviceptr` clause to device buffers (borrowed from
    /// the region — one map shared by all gangs).
    pub(crate) devptr: &'m HashMap<String, BufferId>,
}

impl<'m> DevCtx<'m> {
    /// A fresh gang-scope context, as constructed once per gang by the
    /// serial gang loop (also the parallel engine's scratch context for
    /// capture/bounds evaluation — see `par`).
    pub(crate) fn for_gang(
        num_gangs: u32,
        num_workers: u32,
        vector_len: u32,
        gang: u32,
        kernels_mode: bool,
        layout: &'m FrameLayout,
        devptr: &'m HashMap<String, BufferId>,
    ) -> DevCtx<'m> {
        DevCtx {
            num_gangs,
            num_workers,
            vector_len,
            gang,
            in_gang_loop: false,
            kernels_mode,
            layout,
            slots: crate::arena::take_slots(layout.len()),
            owner: crate::arena::take_owners(layout.len()),
            journals: Vec::new(),
            devptr,
        }
    }

    /// Resolve a name to its frame-layout slot.
    pub(crate) fn slot(&self, name: &str) -> Option<usize> {
        self.layout.slot(name)
    }

    pub(crate) fn value(&self, slot: usize) -> Option<Value> {
        self.slots[slot]
    }

    /// Write the visible binding if one exists (wherever it lives —
    /// ownership is unchanged, matching write-where-found semantics).
    pub(crate) fn assign_existing(&mut self, slot: usize, v: Value) -> bool {
        match &mut self.slots[slot] {
            Some(b) => {
                *b = v;
                true
            }
            None => false,
        }
    }

    /// Bind in the innermost scope, shadowing (and journaling) any outer
    /// binding on the first write per scope.
    pub(crate) fn set_local(&mut self, slot: usize, v: Value) {
        let depth = self.journals.len() as u32;
        if depth > 0 && self.owner[slot] != depth {
            self.journals
                .last_mut()
                .expect("depth > 0 implies a journal")
                .push((slot as u32, self.slots[slot], self.owner[slot]));
            self.owner[slot] = depth;
        }
        self.slots[slot] = Some(v);
    }

    /// Bind directly in the gang scope (depth 0) — used for region-entry
    /// setup and implicit firstprivate snapshots, which persist across
    /// inner scope pops. Only sound for slots currently owned by the gang
    /// scope (region setup runs before any scope is pushed; implicit
    /// binds only happen on unbound slots, which are gang-owned).
    pub(crate) fn bind_gang(&mut self, slot: usize, v: Value) {
        debug_assert_eq!(self.owner[slot], 0, "bind_gang on a shadowed slot");
        self.slots[slot] = Some(v);
    }

    fn push_scope(&mut self) {
        self.journals.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        let journal = self.journals.pop().expect("pop without open scope");
        for (slot, old_val, old_owner) in journal.into_iter().rev() {
            self.slots[slot as usize] = old_val;
            self.owner[slot as usize] = old_owner;
        }
    }
}

impl Drop for DevCtx<'_> {
    fn drop(&mut self) {
        crate::arena::give_slots(std::mem::take(&mut self.slots));
        crate::arena::give_owners(std::mem::take(&mut self.owner));
    }
}

/// A deferred host-visible effect of an async activity.
#[derive(Debug)]
enum DeferredEffect {
    Download {
        buf: BufferId,
        dest: usize,
        start: usize,
        len: usize,
    },
    ScalarDownload {
        buf: BufferId,
        frame: usize,
        name: String,
    },
    Free(BufferId),
}

/// The machine.
pub(crate) struct Machine<'a> {
    prog: &'a Program,
    resolved: &'a ResolvedProgram,
    pub(crate) profile: &'a ExecProfile,
    pub(crate) world: World,
    pub(crate) host_arrays: Vec<HostArray>,
    pub(crate) frames: Vec<Frame<'a>>,
    deferred: Vec<Vec<DeferredEffect>>,
    pub(crate) steps: u64,
    pub(crate) step_limit: u64,
    /// Attempt number (0-based) — input to transient-fault draws.
    run_index: u64,
    /// Monotone counter of transient-fault decision points this run.
    fault_event: u64,
    /// FNV hash of the program name, fixed per program.
    program_hash: u64,
    garbage_counter: i64,
    /// Count of device statements in the current region (kernel cost).
    pub(crate) region_cost: u64,
    /// `deviceptr` bindings contributed by enclosing `data` regions and
    /// inherited by nested compute constructs.
    data_devptr: Vec<HashMap<String, BufferId>>,
    /// The lowered bytecode image (present when running under the VM).
    pub(crate) code: Option<&'a crate::bytecode::BytecodeProgram>,
    /// Dispatch through the bytecode VM instead of the tree walker.
    pub(crate) use_vm: bool,
    /// Bytecode instructions retired this run (VM engine only; telemetry).
    /// Lives on the machine, NOT in [`acc_device::Metrics`], because the
    /// walker/VM engine-equivalence invariant compares `Metrics` verbatim.
    pub(crate) vm_instructions: u64,
    /// Worker-thread count for the parallel gang engine (`Some` iff
    /// `--exec-mode par[:N]`; 0 = auto). See `par`.
    pub(crate) par_threads: Option<u16>,
    /// Dispatches saved by superinstruction fusion (telemetry; see
    /// `vm_instructions` for why this is not in `Metrics`).
    pub(crate) vm_fused_saved: u64,
    /// Regions actually executed by the parallel gang engine this run
    /// (telemetry; stays 0 whenever a plan bails to the serial path).
    pub(crate) par_launches: u64,
    /// Opcode-pair execution counts when profiling (see
    /// [`Executable::run_profiled`]): `(OPCODE_COUNT + 1) * OPCODE_COUNT`
    /// slots, leading row = chunk entry.
    pub(crate) pair_profile: Option<Box<[u64]>>,
    /// Scratch register files recycled across chunk activations.
    pub(crate) reg_pool: Vec<Vec<Value>>,
    /// Per-device-chunk cache of name-id → resolved buffer (the present
    /// table cannot change while device code runs, so the VM resolves each
    /// array once per chunk activation instead of per element access).
    pub(crate) dev_bufs: Vec<Option<BufferId>>,
}

impl<'a> Machine<'a> {
    pub(crate) fn new(
        prog: &'a Program,
        resolved: &'a ResolvedProgram,
        profile: &'a ExecProfile,
        concrete: DeviceType,
        env: &EnvConfig,
    ) -> Self {
        Machine {
            prog,
            resolved,
            profile,
            world: World::new(concrete, env),
            host_arrays: Vec::new(),
            frames: Vec::new(),
            deferred: Vec::new(),
            steps: 0,
            step_limit: DEFAULT_STEP_LIMIT,
            run_index: 0,
            fault_event: 0,
            program_hash: acc_device::profile::stable_name_hash(&prog.name),
            garbage_counter: 0,
            region_cost: 0,
            data_devptr: Vec::new(),
            code: None,
            use_vm: false,
            vm_instructions: 0,
            par_threads: None,
            vm_fused_saved: 0,
            par_launches: 0,
            pair_profile: None,
            reg_pool: Vec::new(),
            dev_bufs: Vec::new(),
        }
    }

    /// Return this run's register files to the thread-local arena so the
    /// next machine on this thread starts with warm capacity.
    fn drain_reg_pool(&mut self) {
        for regs in self.reg_pool.drain(..) {
            crate::arena::give_regs(regs);
        }
    }

    pub(crate) fn run_main(&mut self) -> RunOutcome {
        let main = match self.prog.entry() {
            Some(f) => f,
            None => return RunOutcome::Crash("program has no main function".into()),
        };
        match self.call_function(main, Vec::new(), Vec::new()) {
            Ok(v) => match v.as_int() {
                Ok(i) => RunOutcome::Completed(i),
                Err(e) => RunOutcome::Crash(e.to_string()),
            },
            Err(Abort::Crash(m)) => RunOutcome::Crash(m),
            Err(Abort::Timeout) => RunOutcome::Timeout,
        }
    }

    /// Draw one transient-fault decision for the defect selected by
    /// `pick` out of the active profile. Deterministic: the decision is a
    /// pure function of the defect seed, the program name, the attempt
    /// index, and a per-run event counter — never of thread scheduling.
    fn transient_fires(&mut self, pick: fn(&Defect) -> Option<(u8, u64)>) -> bool {
        let params = self.profile.defects().find_map(pick);
        let Some((rate_pct, seed)) = params else {
            return false;
        };
        let event = self.fault_event;
        self.fault_event += 1;
        acc_device::profile::transient_fault_fires(
            rate_pct,
            seed,
            self.program_hash,
            self.run_index,
            event,
        )
    }

    fn transient_memcpy_fires(&mut self) -> bool {
        let fired = self.transient_fires(|d| match d {
            Defect::TransientMemcpyFault { rate_pct, seed } => Some((*rate_pct, *seed)),
            _ => None,
        });
        if fired {
            // Logical: the draw is a pure function of (seed, program,
            // run index, event counter) — schedule-independent.
            acc_obs::instant("fault", "transient_memcpy", vec![]);
        }
        fired
    }

    fn transient_stall_fires(&mut self) -> bool {
        let fired = self.transient_fires(|d| match d {
            Defect::IntermittentAsyncStall { rate_pct, seed } => Some((*rate_pct, *seed)),
            _ => None,
        });
        if fired {
            acc_obs::instant("fault", "async_stall", vec![]);
        }
        fired
    }

    pub(crate) fn tick(&mut self) -> Exec<()> {
        self.steps += 1;
        self.world.metrics.statements_executed += 1;
        if self.steps > self.step_limit {
            return Err(Abort::Timeout);
        }
        Ok(())
    }

    pub(crate) fn garbage_value(&mut self, ty: ScalarType) -> Value {
        self.garbage_counter += 1;
        match ty {
            ScalarType::Int => Value::Int(-987_654_321 - self.garbage_counter),
            ScalarType::Float => Value::F32(-1.0e30 - self.garbage_counter as f32),
            ScalarType::Double => Value::F64(-1.0e300 - self.garbage_counter as f64),
        }
    }

    pub(crate) fn frame(&self) -> &Frame<'a> {
        self.frames.last().expect("no active frame")
    }

    pub(crate) fn frame_mut(&mut self) -> &mut Frame<'a> {
        self.frames.last_mut().expect("no active frame")
    }

    /// The current frame's layout, projected at the machine's lifetime (the
    /// layout lives in the executable, not the frame).
    fn cur_layout(&self) -> &'a FrameLayout {
        self.frame().layout
    }

    fn set_var(&mut self, name: &str, v: Value) -> Exec<()> {
        if self.frame_mut().set_val(name, v) {
            Ok(())
        } else {
            Err(unresolved(name))
        }
    }

    // ------------------------------------------------------------------
    // Function calls
    // ------------------------------------------------------------------

    /// Call a user function with already-evaluated scalar args / array
    /// bindings (positional, aligned with params).
    fn call_function(
        &mut self,
        f: &'a Function,
        scalar_args: Vec<(String, Value)>,
        array_args: Vec<(String, ArrBinding)>,
    ) -> Exec<Value> {
        if self.frames.len() > 64 {
            return Err(Abort::Crash("call stack overflow".into()));
        }
        let layout = self
            .resolved
            .layout(&f.name)
            .ok_or_else(|| unresolved(&f.name))?;
        let mut frame = Frame::new(layout);
        for (n, v) in scalar_args {
            if !frame.set_val(&n, v) {
                return Err(unresolved(&n));
            }
        }
        for (n, b) in array_args {
            if !frame.set_arr(&n, b) {
                return Err(unresolved(&n));
            }
        }
        self.frames.push(frame);
        let flow = if self.use_vm {
            self.vm_function(&f.name)
        } else {
            self.exec_body(&f.body, None)
        };
        // Exit any `declare` data regions opened by this frame.
        let declare_entries = std::mem::take(&mut self.frame_mut().declare_entries);
        let mut declare_result = Ok(());
        for name in declare_entries.into_iter().rev() {
            if let Err(e) = self.exit_mapping(&name, false) {
                declare_result = Err(e);
                break;
            }
        }
        if let Some(f) = self.frames.pop() {
            crate::arena::give_frame_slots(f.slots);
        }
        let flow = flow?;
        declare_result?;
        Ok(match flow {
            Flow::Return(v) => v,
            Flow::Normal => Value::Int(0),
        })
    }

    /// Resolve a call argument for an ArrayPtr parameter.
    fn array_arg_binding(&mut self, e: &Expr) -> Exec<ArrBinding> {
        match e {
            Expr::Var(n) => {
                // host_data overlay first: the name denotes a device pointer.
                if let Some(buf) = self.host_data_lookup(n) {
                    return Ok(ArrBinding::Device(buf));
                }
                if let Some(b) = self.frame().arr(n) {
                    return Ok(b);
                }
                // A pointer-typed scalar holding a device address.
                if let Some(Value::DevPtr(buf)) = self.frame().val(n) {
                    return Ok(ArrBinding::Device(buf));
                }
                Err(Abort::Crash(format!(
                    "`{n}` is not an array or device pointer"
                )))
            }
            other => {
                let v = self.eval_host(other)?;
                match v {
                    Value::DevPtr(buf) => Ok(ArrBinding::Device(buf)),
                    _ => Err(Abort::Crash(
                        "array argument must be an array name or device pointer".into(),
                    )),
                }
            }
        }
    }

    pub(crate) fn host_data_lookup(&self, name: &str) -> Option<BufferId> {
        self.frame()
            .host_data
            .iter()
            .rev()
            .find_map(|m| m.get(name).copied())
    }

    fn call_user_or_runtime(
        &mut self,
        name: &str,
        args: &[Expr],
        on_device: bool,
        malloc_elem: ScalarType,
    ) -> Exec<Value> {
        // Runtime library.
        if let Some(r) = RuntimeRoutine::from_symbol(name) {
            return self.call_runtime(r, args, on_device, malloc_elem);
        }
        // Math intrinsics.
        if let Some(v) = self.try_intrinsic(name, args, on_device)? {
            return Ok(v);
        }
        // User function.
        let f = match self.prog.function(name) {
            Some(f) => f,
            None => return Err(Abort::Crash(format!("call to undefined function `{name}`"))),
        };
        if on_device {
            // OpenACC 1.0 has no `routine` directive; procedure calls inside
            // compute regions are unsupported (§V-C "Procedure calls").
            return Err(Abort::Crash(format!(
                "procedure call `{name}` inside a compute region is not supported by OpenACC 1.0"
            )));
        }
        if args.len() != f.params.len() {
            return Err(Abort::Crash(format!(
                "`{name}` expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut scalars = Vec::new();
        let mut arrays = Vec::new();
        for (p, a) in f.params.iter().zip(args) {
            match p.kind {
                ParamKind::Scalar(ty) => {
                    let v = self.eval_host(a)?.convert_to(ty).map_err(crash)?;
                    scalars.push((p.name.clone(), v));
                }
                ParamKind::ArrayPtr(_) => {
                    arrays.push((p.name.clone(), self.array_arg_binding(a)?));
                }
            }
        }
        self.call_function(f, scalars, arrays)
    }

    fn call_runtime(
        &mut self,
        r: RuntimeRoutine,
        args: &[Expr],
        on_device: bool,
        malloc_elem: ScalarType,
    ) -> Exec<Value> {
        // Defect overrides first.
        if let Some(c) = self.profile.routine_override(r) {
            // Still evaluate args for side effects / crashes.
            for a in args {
                self.eval_host(a)?;
            }
            return Ok(Value::Int(c));
        }
        if self.profile.has(&Defect::AsyncFamilyBroken) && r.is_async_family() {
            for a in args {
                self.eval_host(a)?;
            }
            return Ok(match r {
                RuntimeRoutine::AsyncTest | RuntimeRoutine::AsyncTestAll => Value::Int(-1),
                _ => Value::Int(0), // waits silently do nothing
            });
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval_host(a)?);
        }
        let (v, due) = dispatch(r, &vals, &mut self.world, on_device, malloc_elem)
            .map_err(|e| Abort::Crash(e.to_string()))?;
        self.apply_deferred(due)?;
        Ok(v)
    }

    fn try_intrinsic(&mut self, name: &str, args: &[Expr], on_device: bool) -> Exec<Option<Value>> {
        let bin = |m: &mut Self, args: &[Expr], f: fn(f64, f64) -> f64| -> Exec<Value> {
            let a = m.eval_in(args.first(), on_device)?;
            let b = m.eval_in(args.get(1), on_device)?;
            Ok(Value::F64(f(
                a.as_f64().map_err(crash)?,
                b.as_f64().map_err(crash)?,
            )))
        };
        let v = match name {
            "powf" => Some(
                bin(self, args, f64::powf)?
                    .convert_to(ScalarType::Float)
                    .map_err(crash)?,
            ),
            "pow" => Some(bin(self, args, f64::powf)?),
            "fabsf" => {
                let a = self.eval_in(args.first(), on_device)?;
                Some(Value::F32(a.as_f64().map_err(crash)?.abs() as f32))
            }
            "fabs" => {
                let a = self.eval_in(args.first(), on_device)?;
                Some(Value::F64(a.as_f64().map_err(crash)?.abs()))
            }
            "sqrtf" => {
                let a = self.eval_in(args.first(), on_device)?;
                Some(Value::F32(a.as_f64().map_err(crash)?.sqrt() as f32))
            }
            "sqrt" => {
                let a = self.eval_in(args.first(), on_device)?;
                Some(Value::F64(a.as_f64().map_err(crash)?.sqrt()))
            }
            "abs" => {
                let a = self.eval_in(args.first(), on_device)?;
                Some(Value::Int(a.as_int().map_err(crash)?.abs()))
            }
            "mod" => {
                let a = self
                    .eval_in(args.first(), on_device)?
                    .as_int()
                    .map_err(crash)?;
                let b = self
                    .eval_in(args.get(1), on_device)?
                    .as_int()
                    .map_err(crash)?;
                if b == 0 {
                    return Err(Abort::Crash("mod by zero".into()));
                }
                Some(Value::Int(a % b))
            }
            "iand" => Some(self.int_bin(args, on_device, |a, b| a & b)?),
            "ior" => Some(self.int_bin(args, on_device, |a, b| a | b)?),
            "ieor" => Some(self.int_bin(args, on_device, |a, b| a ^ b)?),
            "min" => {
                let a = self.eval_in(args.first(), on_device)?;
                let b = self.eval_in(args.get(1), on_device)?;
                Some(num_min_max(a, b, true).map_err(crash)?)
            }
            "max" => {
                let a = self.eval_in(args.first(), on_device)?;
                let b = self.eval_in(args.get(1), on_device)?;
                Some(num_min_max(a, b, false).map_err(crash)?)
            }
            "malloc" => {
                // Host malloc is not modeled; tests use declared arrays.
                return Err(Abort::Crash(
                    "host malloc is not supported by the machine".into(),
                ));
            }
            _ => None,
        };
        Ok(v)
    }

    fn int_bin(&mut self, args: &[Expr], on_device: bool, f: fn(i64, i64) -> i64) -> Exec<Value> {
        let a = self
            .eval_in(args.first(), on_device)?
            .as_int()
            .map_err(crash)?;
        let b = self
            .eval_in(args.get(1), on_device)?
            .as_int()
            .map_err(crash)?;
        Ok(Value::Int(f(a, b)))
    }

    fn eval_in(&mut self, e: Option<&Expr>, _on_device: bool) -> Exec<Value> {
        // Intrinsic argument evaluation happens in host context here; device
        // contexts evaluate their arguments before calling intrinsics. The
        // corpus keeps intrinsic calls on host expressions and in reduction
        // kernels where arguments are loop-local scalars, so host resolution
        // with the current frame suffices. Device-side calls are routed
        // through eval_device instead.
        match e {
            Some(e) => self.eval_host(e),
            None => Err(Abort::Crash(
                "intrinsic called with too few arguments".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Host execution
    // ------------------------------------------------------------------

    fn exec_body(&mut self, body: &'a [Stmt], mut dev: Option<&mut DevCtx>) -> Exec<Flow> {
        for s in body {
            let flow = match dev.as_deref_mut() {
                Some(ctx) => self.exec_stmt_device(s, ctx)?,
                None => self.exec_stmt_host(s)?,
            };
            if let Flow::Return(v) = flow {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    pub(crate) fn exec_stmt_host(&mut self, s: &'a Stmt) -> Exec<Flow> {
        self.tick()?;
        self.world.clock.advance(1);
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                let v = match init {
                    Some(e) => {
                        let hint = ty.scalar();
                        let raw = self.eval_host_with_hint(e, hint)?;
                        match ty {
                            Type::Ptr(_) => raw, // keep DevPtr / null int
                            Type::Scalar(t) => raw.convert_to(*t).map_err(crash)?,
                        }
                    }
                    None => self.garbage_value(ty.scalar()),
                };
                let f = self.frame_mut();
                match f.idx(name) {
                    Some(i) => {
                        f.slots[i].val = Some(v);
                        f.slots[i].ty = Some(*ty);
                    }
                    None => return Err(unresolved(name)),
                }
                Ok(Flow::Normal)
            }
            Stmt::DeclArray { name, elem, dims } => {
                let id = self.host_arrays.len();
                // C/Fortran locals are uninitialized; model with the host
                // garbage pattern so tests that forget to initialize fail
                // loudly rather than silently seeing zeros.
                self.garbage_counter += 1;
                let data = ArrayData::garbage(
                    *elem,
                    dims.iter().product::<usize>().max(1),
                    self.garbage_counter as u64,
                );
                self.host_arrays.push(HostArray {
                    data,
                    dims: dims.clone(),
                });
                if !self.frame_mut().set_arr(name, ArrBinding::Host(id)) {
                    return Err(unresolved(name));
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let hint = self.lvalue_hint(target);
                let rhs = self.eval_host_with_hint(value, hint)?;
                let newv = match op {
                    None => rhs,
                    Some(op) => {
                        let old = self.read_lvalue_host(target)?;
                        apply_binop(*op, old, rhs).map_err(crash)?
                    }
                };
                self.write_lvalue_host(target, newv)?;
                Ok(Flow::Normal)
            }
            Stmt::For(l) => self.exec_for_host(l),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval_host(cond)?;
                if c.truthy() {
                    self.exec_body(then_body, None)
                } else {
                    self.exec_body(else_body, None)
                }
            }
            Stmt::Call { name, args } => {
                self.call_user_or_runtime(name, args, false, ScalarType::Float)?;
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = self.eval_host(e)?;
                Ok(Flow::Return(v))
            }
            Stmt::AccBlock { dir, body } => {
                self.exec_acc_block(dir, body)?;
                Ok(Flow::Normal)
            }
            Stmt::AccLoop { dir, l } => {
                self.exec_acc_loop_toplevel(dir, l)?;
                Ok(Flow::Normal)
            }
            Stmt::AccStandalone { dir } => {
                self.exec_standalone(dir)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn exec_for_host(&mut self, l: &'a ForLoop) -> Exec<Flow> {
        let from = self.eval_host(&l.from)?.as_int().map_err(crash)?;
        let step = self.eval_host(&l.step)?.as_int().map_err(crash)?;
        if step <= 0 {
            return Err(Abort::Crash(format!(
                "loop step must be positive, got {step}"
            )));
        }
        // The induction variable's slot is fixed: resolve it once, write by
        // index every iteration (no key hash, no `String` clone).
        let var_slot = self.frame().idx(&l.var).ok_or_else(|| unresolved(&l.var))?;
        let mut i = from;
        loop {
            // C semantics: the condition re-evaluates every iteration (a
            // body that keeps moving the bound loops forever — and trips the
            // machine's step budget, the simulated hang).
            self.tick()?;
            let to = self.eval_host(&l.to)?.as_int().map_err(crash)?;
            if i >= to {
                break;
            }
            self.frame_mut().slots[var_slot].val = Some(Value::Int(i));
            let flow = self.exec_body(&l.body, None)?;
            if let Flow::Return(v) = flow {
                return Ok(Flow::Return(v));
            }
            i += step;
        }
        Ok(Flow::Normal)
    }

    fn lvalue_hint(&self, lv: &LValue) -> ScalarType {
        match lv {
            LValue::Var(n) => self
                .frame()
                .ty(n)
                .map(|t| t.scalar())
                .unwrap_or(ScalarType::Float),
            LValue::Index { .. } => ScalarType::Float,
        }
    }

    fn read_lvalue_host(&mut self, lv: &LValue) -> Exec<Value> {
        match lv {
            LValue::Var(n) => self.read_var_host(n),
            LValue::Index { base, indices } => {
                let (binding, i) = self.flat_index_host(base, indices)?;
                match binding {
                    ArrBinding::Host(id) => self.host_arrays[id].data.get(i).ok_or_else(|| {
                        Abort::Crash(format!("host read out of bounds: {base}[{i}]"))
                    }),
                    ArrBinding::Device(buf) => self
                        .world
                        .mem
                        .read(buf, i)
                        .map_err(|e| Abort::Crash(e.to_string())),
                }
            }
        }
    }

    fn read_var_host(&mut self, n: &str) -> Exec<Value> {
        self.read_var_host_at(n, self.frame().idx(n))
    }

    /// [`Self::read_var_host`] with the slot pre-resolved at compile time
    /// (the VM's fast path — same lookup order, no name hashing).
    pub(crate) fn read_var_host_at(&mut self, n: &str, slot: Option<usize>) -> Exec<Value> {
        if let Some(buf) = self.host_data_lookup(n) {
            return Ok(Value::DevPtr(buf));
        }
        if let Some(v) = slot.and_then(|i| self.frame().slots[i].val) {
            return Ok(v);
        }
        if let Some(v) = device_constant(n) {
            return Ok(v);
        }
        Err(Abort::Crash(format!("read of undefined variable `{n}`")))
    }

    /// Scalar store with the slot pre-resolved: converts through the
    /// declared type exactly like [`Self::write_lvalue_host`]'s `Var` arm.
    pub(crate) fn write_var_host_at(&mut self, n: &str, slot: Option<usize>, v: Value) -> Exec<()> {
        let Some(i) = slot else {
            return Err(unresolved(n));
        };
        let converted = match self.frame().slots[i].ty {
            Some(Type::Scalar(t)) => v.convert_to(t).map_err(crash)?,
            _ => v,
        };
        self.frame_mut().slots[i].val = Some(converted);
        Ok(())
    }

    fn write_lvalue_host(&mut self, lv: &LValue, v: Value) -> Exec<()> {
        match lv {
            LValue::Var(n) => {
                // Writing through declared type conversion.
                let converted = match self.frame().ty(n) {
                    Some(Type::Scalar(t)) => v.convert_to(t).map_err(crash)?,
                    _ => v,
                };
                self.set_var(n, converted)
            }
            LValue::Index { base, indices } => {
                let flat = self.flat_index_host(base, indices)?;
                match flat {
                    (ArrBinding::Host(id), i) => {
                        let arr = &mut self.host_arrays[id];
                        if !arr.data.set(i, v).map_err(crash)? {
                            return Err(Abort::Crash(format!(
                                "host write out of bounds: {base}[{i}]"
                            )));
                        }
                        Ok(())
                    }
                    (ArrBinding::Device(buf), i) => {
                        // Host code writing through a device binding models a
                        // device-side helper routine (host_data call).
                        self.world
                            .mem
                            .write(buf, i, v)
                            .map_err(|e| Abort::Crash(e.to_string()))
                    }
                }
            }
        }
    }

    /// Resolve an index expression on the host: the binding plus the flat
    /// element offset (multi-dim row-major).
    fn flat_index_host(&mut self, base: &str, indices: &[Expr]) -> Exec<(ArrBinding, usize)> {
        let mut vals = Vec::with_capacity(indices.len());
        for e in indices {
            vals.push(self.eval_host(e)?.as_int().map_err(crash)?);
        }
        let binding = self.lookup_array_host(base)?;
        let dims: Vec<usize> = match binding {
            ArrBinding::Host(id) => self.host_arrays[id].dims.clone(),
            ArrBinding::Device(buf) => self
                .world
                .mem
                .get(buf)
                .map_err(|e| Abort::Crash(e.to_string()))?
                .dims
                .clone(),
        };
        let flat = flatten(base, &vals, &dims)?;
        Ok((binding, flat))
    }

    fn lookup_array_host(&mut self, base: &str) -> Exec<ArrBinding> {
        if let Some(b) = self.frame().arr(base) {
            return Ok(b);
        }
        // A pointer variable holding a device address: dereferencing on the
        // host is a crash (models a segfault), EXCEPT when bound through
        // host_data (handled by array bindings in callee frames).
        if let Some(Value::DevPtr(_)) = self.frame().val(base) {
            return Err(Abort::Crash(format!(
                "host dereference of device pointer `{base}` (segmentation fault)"
            )));
        }
        Err(Abort::Crash(format!("`{base}` is not an array")))
    }

    fn eval_host(&mut self, e: &Expr) -> Exec<Value> {
        self.eval_host_with_hint(e, ScalarType::Float)
    }

    pub(crate) fn eval_host_with_hint(&mut self, e: &Expr, malloc_hint: ScalarType) -> Exec<Value> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v, t) => Ok(match t {
                ScalarType::Float => Value::F32(*v as f32),
                _ => Value::F64(*v),
            }),
            Expr::Var(n) => self.read_var_host(n),
            Expr::Index { base, indices } => {
                let (binding, i) = self.flat_index_host(base, indices)?;
                match binding {
                    ArrBinding::Host(id) => self.host_arrays[id].data.get(i).ok_or_else(|| {
                        Abort::Crash(format!("host read out of bounds: {base}[{i}]"))
                    }),
                    ArrBinding::Device(buf) => self
                        .world
                        .mem
                        .read(buf, i)
                        .map_err(|e| Abort::Crash(e.to_string())),
                }
            }
            Expr::Unary(op, inner) => {
                let v = self.eval_host_with_hint(inner, malloc_hint)?;
                apply_unop(*op, v).map_err(crash)
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval_host_with_hint(l, malloc_hint)?;
                // Short-circuit evaluation.
                if *op == BinOp::And && !a.truthy() {
                    return Ok(Value::Int(0));
                }
                if *op == BinOp::Or && a.truthy() {
                    return Ok(Value::Int(1));
                }
                let b = self.eval_host_with_hint(r, malloc_hint)?;
                apply_binop(*op, a, b).map_err(crash)
            }
            Expr::Call { name, args } => self.call_user_or_runtime(name, args, false, malloc_hint),
            Expr::SizeOf(t) => Ok(Value::Int(t.size_bytes() as i64)),
        }
    }

    // ------------------------------------------------------------------
    // Directive execution (host level)
    // ------------------------------------------------------------------

    pub(crate) fn exec_standalone(&mut self, dir: &'a AccDirective) -> Exec<()> {
        match dir.kind {
            DirectiveKind::Update => self.exec_update(dir),
            DirectiveKind::Wait => {
                if self.profile.has(&Defect::AsyncFamilyBroken)
                    || self.profile.ignores_directive(DirectiveKind::Wait)
                {
                    return Ok(());
                }
                if self.transient_stall_fires() {
                    // The wait never returns: an intermittent queue stall,
                    // observed exactly as the "executes forever" class.
                    return Err(Abort::Timeout);
                }
                match &dir.wait_arg {
                    Some(e) => {
                        let tag = AsyncTag::Numbered(self.eval_host(e)?.as_int().map_err(crash)?);
                        if let Some(t) = self.world.queues.tag_completion(tag) {
                            self.world.clock.advance_to(t);
                        }
                        let due = self
                            .world
                            .queues
                            .drain_complete(tag, self.world.clock.now());
                        self.apply_deferred(due)
                    }
                    None => {
                        if let Some(t) = self.world.queues.all_completion() {
                            self.world.clock.advance_to(t);
                        }
                        let due = self.world.queues.drain_all_complete(self.world.clock.now());
                        self.apply_deferred(due)
                    }
                }
            }
            DirectiveKind::Declare => {
                if self.profile.ignores_directive(DirectiveKind::Declare) {
                    return Ok(());
                }
                let entered = self.enter_data_clauses(&dir.clauses, DirectiveKind::Declare)?;
                self.frame_mut().declare_entries.extend(entered);
                Ok(())
            }
            DirectiveKind::Cache => Ok(()), // performance hint only
            DirectiveKind::EnterData | DirectiveKind::ExitData | DirectiveKind::Routine => {
                Err(Abort::Crash(format!(
                    "`{}` is OpenACC 2.0 syntax; this machine executes 1.0 programs",
                    dir.kind.name()
                )))
            }
            other => Err(Abort::Crash(format!(
                "`{}` is not a standalone directive",
                other.name()
            ))),
        }
    }

    fn exec_update(&mut self, dir: &'a AccDirective) -> Exec<()> {
        if self.profile.ignores_directive(DirectiveKind::Update)
            || self.profile.has(&Defect::UpdateNoop)
        {
            return Ok(());
        }
        if !self
            .profile
            .ignores_clause(DirectiveKind::Update, ClauseKind::If)
        {
            if let Some(AccClause::If(e)) = dir.find(ClauseKind::If) {
                if !self.eval_host(e)?.truthy() {
                    return Ok(());
                }
            }
        }
        let is_async = dir.find(ClauseKind::Async).is_some()
            && !self
                .profile
                .ignores_clause(DirectiveKind::Update, ClauseKind::Async);
        let mut effects = Vec::new();
        let mut cost = 1u64;
        for c in &dir.clauses {
            let (to_host, refs) = match c {
                AccClause::Data(ClauseKind::HostClause, refs) => (true, refs),
                AccClause::Data(ClauseKind::DeviceClause, refs) => (false, refs),
                _ => continue,
            };
            if self.profile.ignores_clause(
                DirectiveKind::Update,
                if to_host {
                    ClauseKind::HostClause
                } else {
                    ClauseKind::DeviceClause
                },
            ) {
                continue;
            }
            for r in refs {
                let entry = match self.world.present.get(&r.name) {
                    Some(e) => e.clone(),
                    None => {
                        return Err(Abort::Crash(format!(
                            "update of `{}` which is not present on the device",
                            r.name
                        )))
                    }
                };
                let (start, len) = self.resolve_section(&r.name, &r.section)?;
                cost += len as u64;
                if to_host {
                    if is_async {
                        if let Some(dest) = self.host_array_id(&r.name) {
                            effects.push(DeferredEffect::Download {
                                buf: entry.buffer,
                                dest,
                                start,
                                len,
                            });
                        } else {
                            let fi = self.frames.len() - 1;
                            effects.push(DeferredEffect::ScalarDownload {
                                buf: entry.buffer,
                                frame: fi,
                                name: r.name.clone(),
                            });
                        }
                    } else {
                        self.download_now(&r.name, entry.buffer, start, len)?;
                    }
                } else {
                    self.upload_now(&r.name, entry.buffer, start, len)?;
                }
            }
        }
        if is_async {
            let tag = self.async_tag(dir)?;
            let payload = self.stash_deferred(effects);
            self.world
                .queues
                .enqueue(tag, self.world.clock.now() + cost, payload);
            self.world.metrics.async_launches += 1;
        } else {
            self.world.clock.advance(cost);
        }
        Ok(())
    }

    fn async_tag(&mut self, dir: &AccDirective) -> Exec<AsyncTag> {
        match dir.find(ClauseKind::Async) {
            Some(AccClause::Async(Some(e))) => {
                let v = self.eval_host(e)?.as_int().map_err(crash)?;
                Ok(AsyncTag::Numbered(v))
            }
            _ => Ok(AsyncTag::Default),
        }
    }

    fn stash_deferred(&mut self, effects: Vec<DeferredEffect>) -> u64 {
        self.deferred.push(effects);
        (self.deferred.len() - 1) as u64
    }

    fn apply_deferred(&mut self, payloads: Vec<u64>) -> Exec<()> {
        for p in payloads {
            let effects = std::mem::take(&mut self.deferred[p as usize]);
            for eff in effects {
                match eff {
                    DeferredEffect::Download {
                        buf,
                        dest,
                        start,
                        len,
                    } => {
                        let arr = &mut self.host_arrays[dest];
                        let bytes = self
                            .world
                            .mem
                            .download(buf, &mut arr.data, start, len)
                            .map_err(|e| Abort::Crash(e.to_string()))?;
                        self.world.metrics.bytes_to_host += bytes as u64;
                    }
                    DeferredEffect::ScalarDownload { buf, frame, name } => {
                        let v = self
                            .world
                            .mem
                            .read(buf, 0)
                            .map_err(|e| Abort::Crash(e.to_string()))?;
                        if let Some(f) = self.frames.get_mut(frame) {
                            if !f.set_val(&name, v) {
                                return Err(unresolved(&name));
                            }
                        }
                        self.world.metrics.bytes_to_host += 8;
                    }
                    DeferredEffect::Free(buf) => {
                        self.world
                            .mem
                            .free(buf)
                            .map_err(|e| Abort::Crash(e.to_string()))?;
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data environment
    // ------------------------------------------------------------------

    pub(crate) fn host_array_id(&self, name: &str) -> Option<usize> {
        match self.frame().arr(name) {
            Some(ArrBinding::Host(id)) => Some(id),
            _ => None,
        }
    }

    /// Resolve a data-ref section to (start, len) in elements.
    fn resolve_section(
        &mut self,
        name: &str,
        section: &Option<(Expr, Expr)>,
    ) -> Exec<(usize, usize)> {
        match section {
            Some((s, l)) => {
                let start = self.eval_host(s)?.as_int().map_err(crash)?;
                let len = self.eval_host(l)?.as_int().map_err(crash)?;
                if start < 0 || len < 0 {
                    return Err(Abort::Crash(format!(
                        "negative array section on `{name}`: [{start}:{len}]"
                    )));
                }
                Ok((start as usize, len as usize))
            }
            None => match self.host_array_id(name) {
                Some(id) => Ok((0, self.host_arrays[id].data.len())),
                None => Ok((0, 1)), // scalar
            },
        }
    }

    fn upload_now(&mut self, name: &str, buf: BufferId, start: usize, len: usize) -> Exec<()> {
        if self.transient_memcpy_fires() {
            return Err(Abort::Crash(format!(
                "transient fault: host-to-device memcpy of '{name}' failed"
            )));
        }
        if let Some(id) = self.host_array_id(name) {
            let arr = &self.host_arrays[id];
            let bytes = self
                .world
                .mem
                .upload(buf, &arr.data, start, len)
                .map_err(|e| Abort::Crash(e.to_string()))?;
            self.world.metrics.bytes_to_device += bytes as u64;
        } else {
            let v = self.read_var_host(name)?;
            self.world
                .mem
                .write(buf, 0, v)
                .map_err(|e| Abort::Crash(e.to_string()))?;
            self.world.metrics.bytes_to_device += 8;
        }
        Ok(())
    }

    fn download_now(&mut self, name: &str, buf: BufferId, start: usize, len: usize) -> Exec<()> {
        if self.transient_memcpy_fires() {
            return Err(Abort::Crash(format!(
                "transient fault: device-to-host memcpy of '{name}' failed"
            )));
        }
        if let Some(id) = self.host_array_id(name) {
            let arr = &mut self.host_arrays[id];
            let bytes = self
                .world
                .mem
                .download(buf, &mut arr.data, start, len)
                .map_err(|e| Abort::Crash(e.to_string()))?;
            self.world.metrics.bytes_to_host += bytes as u64;
        } else {
            let v = self
                .world
                .mem
                .read(buf, 0)
                .map_err(|e| Abort::Crash(e.to_string()))?;
            self.set_var(name, v)?;
            self.world.metrics.bytes_to_host += 8;
        }
        Ok(())
    }

    /// Process the data clauses of a directive; returns the names entered
    /// (to exit at region end, in reverse order).
    fn enter_data_clauses(
        &mut self,
        clauses: &[AccClause],
        dir_kind: DirectiveKind,
    ) -> Exec<Vec<String>> {
        let mut entered = Vec::new();
        for c in clauses {
            let (kind, refs) = match c {
                AccClause::Data(k, refs) if is_mapping_clause(*k) => (*k, refs),
                _ => continue,
            };
            if self.profile.ignores_clause(dir_kind, kind) {
                continue;
            }
            for r in refs {
                self.enter_mapping(&r.name, &r.section, kind)?;
                entered.push(r.name.clone());
            }
        }
        Ok(entered)
    }

    fn enter_mapping(
        &mut self,
        name: &str,
        section: &Option<(Expr, Expr)>,
        kind: ClauseKind,
    ) -> Exec<()> {
        let (start, len) = self.resolve_section(name, section)?;
        let already = self.world.present.contains(name);
        if kind == ClauseKind::Present {
            if already {
                self.world.present.reenter(name);
                self.world.metrics.present_hits += 1;
                return Ok(());
            }
            return Err(Abort::Crash(format!(
                "present clause: `{name}` is not present on the device"
            )));
        }
        if already {
            // present_or_* hit, or re-entry of a structured mapping.
            self.world.present.reenter(name);
            if kind.is_present_or() {
                self.world.metrics.present_hits += 1;
            }
            return Ok(());
        }
        if kind.is_present_or() {
            self.world.metrics.present_misses += 1;
        }
        // Fresh mapping.
        let is_scalar = self.host_array_id(name).is_none();
        let elem = if let Some(id) = self.host_array_id(name) {
            self.host_arrays[id].data.elem_type()
        } else {
            match self.read_var_host(name)? {
                Value::Int(_) => ScalarType::Int,
                Value::F32(_) => ScalarType::Float,
                Value::F64(_) => ScalarType::Double,
                Value::DevPtr(_) => {
                    return Err(Abort::Crash(format!(
                        "device pointer `{name}` cannot appear in a data clause"
                    )))
                }
            }
        };
        let total = if let Some(id) = self.host_array_id(name) {
            self.host_arrays[id].data.len()
        } else {
            1
        };
        if start + len > total {
            return Err(Abort::Crash(format!(
                "data clause section out of bounds on `{name}`: [{start}:{len}] of {total}"
            )));
        }
        let dims = if let Some(id) = self.host_array_id(name) {
            self.host_arrays[id].dims.clone()
        } else {
            vec![]
        };
        let buf = self.world.mem.alloc(elem, dims);
        self.world.metrics.allocations += 1;
        let base = base_clause(kind);
        let uploads = matches!(base, ClauseKind::Copy | ClauseKind::Copyin);
        let downloads = matches!(base, ClauseKind::Copy | ClauseKind::Copyout);
        let scalar_omitted = is_scalar && self.profile.has(&Defect::ScalarCopyOmitted);
        if uploads && !scalar_omitted {
            self.upload_now(name, buf, start, len)?;
        }
        let exit_action = if downloads && !scalar_omitted {
            ExitAction::CopyOut
        } else {
            ExitAction::Release
        };
        self.world.present.insert(
            name,
            PresentEntry {
                buffer: buf,
                start,
                len,
                exit_action,
                refcount: 1,
            },
        );
        Ok(())
    }

    /// Exit one mapping; performs the exit action. When `defer_to` is true
    /// the download/free are deferred (async region) — caller stashes them.
    fn exit_mapping(&mut self, name: &str, collect_deferred: bool) -> Exec<Vec<DeferredEffect>> {
        let released = self
            .world
            .present
            .exit(name)
            .map_err(|e| Abort::Crash(e.to_string()))?;
        let mut effects = Vec::new();
        if let Some(entry) = released {
            if entry.exit_action == ExitAction::CopyOut {
                if collect_deferred {
                    if let Some(dest) = self.host_array_id(name) {
                        effects.push(DeferredEffect::Download {
                            buf: entry.buffer,
                            dest,
                            start: entry.start,
                            len: entry.len,
                        });
                    } else {
                        effects.push(DeferredEffect::ScalarDownload {
                            buf: entry.buffer,
                            frame: self.frames.len() - 1,
                            name: name.to_string(),
                        });
                    }
                } else {
                    self.download_now(name, entry.buffer, entry.start, entry.len)?;
                }
            }
            if collect_deferred {
                effects.push(DeferredEffect::Free(entry.buffer));
            } else {
                self.world
                    .mem
                    .free(entry.buffer)
                    .map_err(|e| Abort::Crash(e.to_string()))?;
            }
        }
        Ok(effects)
    }

    // ------------------------------------------------------------------
    // Compute regions
    // ------------------------------------------------------------------

    fn exec_acc_block(&mut self, dir: &'a AccDirective, body: &'a [Stmt]) -> Exec<()> {
        match dir.kind {
            DirectiveKind::Parallel | DirectiveKind::Kernels => {
                self.exec_compute_region(dir, RegionBody::Block(body))
            }
            DirectiveKind::Data => self.exec_data_region(dir, HostRef::Ast(body)),
            DirectiveKind::HostData => self.exec_hostdata_region(dir, HostRef::Ast(body)),
            other => Err(Abort::Crash(format!(
                "`{}` cannot open a block",
                other.name()
            ))),
        }
    }

    /// Run a host-level body in either representation. Both engines share
    /// every directive handler through this dispatch, so data/host_data
    /// clause semantics are identical by construction.
    fn exec_host_ref(&mut self, body: HostRef<'a>) -> Exec<Flow> {
        match body {
            HostRef::Ast(b) => self.exec_body(b, None),
            HostRef::Code(c) => self.vm_host_chunk(c),
        }
    }

    pub(crate) fn exec_data_region(&mut self, dir: &'a AccDirective, body: HostRef<'a>) -> Exec<()> {
        if self.profile.ignores_directive(DirectiveKind::Data) {
            return self.exec_host_ref(body).map(|_| ());
        }
        if let Some(AccClause::If(e)) = dir.find(ClauseKind::If) {
            if !self.eval_host(e)?.truthy() {
                // if(false): no data movement; the region body still
                // executes (its compute constructs will map data
                // themselves).
                return self.exec_host_ref(body).map(|_| ());
            }
        }
        let entered = self.enter_data_clauses(&dir.clauses, DirectiveKind::Data)?;
        // `deviceptr` on a data construct makes the pointers
        // available to nested compute regions.
        let mut dp = HashMap::new();
        for c in &dir.clauses {
            if let AccClause::Deviceptr(names) = c {
                if self
                    .profile
                    .ignores_clause(DirectiveKind::Data, ClauseKind::Deviceptr)
                {
                    continue;
                }
                for n in names {
                    match self.read_var_host(n)? {
                        Value::DevPtr(buf) => {
                            dp.insert(n.clone(), buf);
                        }
                        other => {
                            return Err(Abort::Crash(format!(
                                "deviceptr `{n}` does not hold a device address (got {other})"
                            )))
                        }
                    }
                }
            }
        }
        self.data_devptr.push(dp);
        let flow = self.exec_host_ref(body);
        self.data_devptr.pop();
        for name in entered.iter().rev() {
            self.exit_mapping(name, false)?;
        }
        flow.map(|_| ())
    }

    pub(crate) fn exec_hostdata_region(
        &mut self,
        dir: &'a AccDirective,
        body: HostRef<'a>,
    ) -> Exec<()> {
        let mut overlay = HashMap::new();
        for c in &dir.clauses {
            if let AccClause::UseDevice(names) = c {
                if self
                    .profile
                    .ignores_clause(DirectiveKind::HostData, ClauseKind::UseDevice)
                {
                    continue;
                }
                for n in names {
                    match self.world.present.get(n) {
                        Some(e) => {
                            overlay.insert(n.clone(), e.buffer);
                        }
                        None => {
                            return Err(Abort::Crash(format!(
                                "use_device of `{n}` which is not present on the device"
                            )))
                        }
                    }
                }
            }
        }
        self.frame_mut().host_data.push(overlay);
        let flow = self.exec_host_ref(body);
        self.frame_mut().host_data.pop();
        flow.map(|_| ())
    }

    fn exec_acc_loop_toplevel(&mut self, dir: &'a AccDirective, l: &'a ForLoop) -> Exec<()> {
        match dir.kind {
            DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop => {
                self.exec_compute_region(dir, RegionBody::Loop(dir, l))
            }
            DirectiveKind::Loop => {
                // A loop directive outside any compute construct: executes
                // sequentially on the host (its scheduling clauses are
                // meaningless there).
                self.exec_for_host(l).map(|_| ())
            }
            other => Err(Abort::Crash(format!(
                "`{}` cannot annotate a loop",
                other.name()
            ))),
        }
    }

    pub(crate) fn exec_compute_region(
        &mut self,
        dir: &'a AccDirective,
        body: RegionBody<'a>,
    ) -> Exec<()> {
        let kernels_mode = matches!(
            dir.kind,
            DirectiveKind::Kernels | DirectiveKind::KernelsLoop
        );
        // A broken compute construct that has no effect leaves the region
        // running on the host.
        if self.profile.ignores_directive(dir.kind) {
            return self.region_host_fallback(&body);
        }
        // Hang defect?
        for c in &dir.clauses {
            if self.profile.hangs_on(dir.kind, c.kind()) {
                return Err(Abort::Timeout);
            }
        }
        // if(false): execute on the host, no data movement.
        if let Some(AccClause::If(e)) = dir.find(ClauseKind::If) {
            if !self.profile.ignores_clause(dir.kind, ClauseKind::If)
                && !self.eval_host(e)?.truthy()
            {
                return self.region_host_fallback(&body);
            }
        }
        // Dead-region elimination defect (§V-B Cray, Fig. 11).
        if self.profile.has(&Defect::EliminateDeadComputeRegions) && region_is_dead(&body) {
            return Ok(());
        }
        // Launch configuration.
        let g = self.sizing(dir, ClauseKind::NumGangs, self.profile.default_gangs)?;
        let w = self.sizing(dir, ClauseKind::NumWorkers, self.profile.default_workers)?;
        let v = self.sizing(dir, ClauseKind::VectorLength, self.profile.default_vector)?;
        use acc_spec::ParallelismLevel as PL;
        let num_gangs = if kernels_mode {
            1 // kernels body is single-gang; loops auto-partition
        } else {
            self.profile.mapping.effective_width(PL::Gang, g)
        };
        let num_workers = self.profile.mapping.effective_width(PL::Worker, w);
        let vector_len = self.profile.mapping.effective_width(PL::Vector, v);

        // Data environment.
        let mut entered = self.enter_data_clauses(&dir.clauses, dir.kind)?;
        // deviceptr bindings (inherited from enclosing data regions, then
        // this directive's own clause).
        let mut devptr: HashMap<String, BufferId> = HashMap::new();
        for m in &self.data_devptr {
            devptr.extend(m.iter().map(|(k, v)| (k.clone(), *v)));
        }
        for c in &dir.clauses {
            if let AccClause::Deviceptr(names) = c {
                if self.profile.ignores_clause(dir.kind, ClauseKind::Deviceptr) {
                    continue;
                }
                for n in names {
                    match self.read_var_host(n)? {
                        Value::DevPtr(buf) => {
                            devptr.insert(n.clone(), buf);
                        }
                        other => {
                            return Err(Abort::Crash(format!(
                                "deviceptr `{n}` does not hold a device address (got {other})"
                            )))
                        }
                    }
                }
            }
        }
        // Implicit mappings for referenced arrays (1.0's present_or_copy
        // default, §V-C "Default behavior").
        for name in self.referenced_arrays(&body) {
            if self.world.present.contains(&name) {
                self.world.present.reenter(&name);
                entered.push(name);
            } else if !devptr.contains_key(&name) && self.host_array_id(&name).is_some() {
                self.enter_mapping(&name, &None, ClauseKind::PresentOrCopy)?;
                entered.push(name);
            }
        }

        // Reduction / privatization setup. Names resolve to frame slots
        // once here; the per-gang setup below is pure slot writes.
        let layout = self.cur_layout();
        let mut reductions: Vec<(acc_spec::ReductionOp, &'a str, Value, usize)> = Vec::new();
        for c in &dir.clauses {
            if let AccClause::Reduction(op, vars) = c {
                if self.profile.ignores_clause(dir.kind, ClauseKind::Reduction) {
                    continue;
                }
                for var in vars {
                    let initial = self.region_scalar_read(var)?;
                    let slot = layout.slot(var).ok_or_else(|| unresolved(var))?;
                    reductions.push((*op, var, initial, slot));
                }
            }
        }
        let mut private: Vec<(usize, &'a str)> = Vec::new();
        let mut firstprivate: Vec<(usize, &'a str)> = Vec::new();
        for c in &dir.clauses {
            match c {
                AccClause::Private(vs)
                    if !self.profile.ignores_clause(dir.kind, ClauseKind::Private) =>
                {
                    if self.profile.has(&Defect::PrivateAliasesShared) {
                        // Defective privatization: the "private" variables
                        // share one device copy across all gangs.
                        for name in vs {
                            if !self.world.present.contains(name) {
                                self.enter_mapping(name, &None, ClauseKind::Create)?;
                            } else {
                                self.world.present.reenter(name);
                            }
                            entered.push(name.clone());
                        }
                    } else {
                        for name in vs {
                            let slot = layout.slot(name).ok_or_else(|| unresolved(name))?;
                            private.push((slot, name));
                        }
                    }
                }
                AccClause::Firstprivate(vs)
                    if !self
                        .profile
                        .ignores_clause(dir.kind, ClauseKind::Firstprivate) =>
                {
                    for name in vs {
                        let slot = layout.slot(name).ok_or_else(|| unresolved(name))?;
                        firstprivate.push((slot, name));
                    }
                }
                _ => {}
            }
        }

        // Execute gangs in deterministic sequence.
        self.world.metrics.kernels_launched += 1;
        if acc_obs::active() {
            acc_obs::instant(
                "launch",
                "kernel",
                vec![acc_obs::i("gangs", num_gangs as i64)],
            );
        }
        let cost_before = self.region_cost;
        let mut reduction_acc: Vec<Value> = reductions
            .iter()
            .map(|(op, _, init, _)| identity_like(*op, *init))
            .collect();
        // Parallel gang engine fast path: when the region body is a single
        // provably race-free partitioned nest, execute it as a data-parallel
        // element kernel over the worker pool instead of the serial gang
        // loop. `Ok(false)` means the launch declined with no observable
        // effects — the serial loop below reproduces the exact semantics.
        let par_done = if let RegionBody::Code(rc) = &body {
            let has_region_state =
                !reductions.is_empty() || !private.is_empty() || !firstprivate.is_empty();
            self.try_par_region(
                rc,
                num_gangs,
                num_workers,
                vector_len,
                kernels_mode,
                layout,
                &devptr,
                has_region_state,
            )?
        } else {
            false
        };
        for gang in 0..if par_done { 0 } else { num_gangs } {
            let mut ctx = DevCtx::for_gang(
                num_gangs,
                num_workers,
                vector_len,
                gang,
                kernels_mode,
                layout,
                &devptr,
            );
            for (slot, name) in &private {
                let ty = self.host_scalar_type(name);
                let gv = self.garbage_value(ty);
                ctx.bind_gang(*slot, gv);
            }
            for (slot, name) in &firstprivate {
                let val = if self.profile.has(&Defect::FirstprivateUninitialized) {
                    let ty = self.host_scalar_type(name);
                    self.garbage_value(ty)
                } else {
                    self.region_scalar_read(name)?
                };
                ctx.bind_gang(*slot, val);
            }
            for (op, _, init, slot) in &reductions {
                ctx.bind_gang(*slot, identity_like(*op, *init));
            }
            match &body {
                RegionBody::Block(b) => {
                    self.exec_body(b, Some(&mut ctx))?;
                }
                RegionBody::Loop(dir, l) => {
                    self.exec_acc_loop_device(dir, DevLoopRef::Ast(l), &mut ctx)?;
                }
                RegionBody::Code(rc) => match rc.dev {
                    crate::bytecode::RegionDev::Block(chunk) => {
                        self.vm_dev_chunk(chunk, &mut ctx)?;
                    }
                    crate::bytecode::RegionDev::Loop(nid) => {
                        let nest = &self.code.expect("region code without bytecode").nests
                            [nid as usize];
                        self.exec_acc_loop_device(dir, DevLoopRef::Code(nest), &mut ctx)?;
                    }
                },
            }
            // Fold this gang's reduction copies.
            for (i, (op, _, _, slot)) in reductions.iter().enumerate() {
                let copy = ctx.value(*slot).unwrap_or(Value::Int(0));
                if self.profile.has(&Defect::WrongReduction(*op)) && gang == 0 {
                    continue; // drop gang 0's contribution: silent wrong code
                }
                reduction_acc[i] = combine(*op, reduction_acc[i], copy).map_err(crash)?;
                self.world.metrics.reductions += 1;
            }
        }
        // Write back reduction results (combined with the pre-region value).
        for ((op, name, init, _), acc) in reductions.iter().zip(reduction_acc) {
            let final_v = combine(*op, *init, acc).map_err(crash)?;
            self.region_scalar_write(name, final_v)?;
        }

        // Cost/async accounting and exit data movement.
        let cost = (self.region_cost - cost_before).max(1) + 10;
        let is_async = dir.find(ClauseKind::Async).is_some()
            && !self.profile.ignores_clause(dir.kind, ClauseKind::Async);
        if is_async {
            let tag = self.async_tag(dir)?;
            let mut effects = Vec::new();
            for name in entered.iter().rev() {
                effects.extend(self.exit_mapping(name, true)?);
            }
            let payload = self.stash_deferred(effects);
            self.world
                .queues
                .enqueue(tag, self.world.clock.now() + cost, payload);
            self.world.metrics.async_launches += 1;
            self.world.clock.advance(1); // launch overhead only
        } else {
            for name in entered.iter().rev() {
                self.exit_mapping(name, false)?;
            }
            self.world.clock.advance(cost);
        }
        Ok(())
    }

    fn sizing(&mut self, dir: &AccDirective, kind: ClauseKind, default: u32) -> Exec<u32> {
        if self.profile.ignores_clause(dir.kind, kind) {
            return Ok(default);
        }
        let e = match dir.find(kind) {
            Some(AccClause::NumGangs(e))
            | Some(AccClause::NumWorkers(e))
            | Some(AccClause::VectorLength(e)) => e,
            _ => return Ok(default),
        };
        let v = self.eval_host(e)?.as_int().map_err(crash)?;
        if !(1..=1_000_000).contains(&v) {
            return Err(Abort::Crash(format!("invalid {} value {v}", kind.name())));
        }
        Ok(v as u32)
    }

    /// Read a scalar that may be device-mapped (for reductions and
    /// firstprivate initialization).
    fn region_scalar_read(&mut self, name: &str) -> Exec<Value> {
        if let Some(e) = self.world.present.get(name) {
            let buf = e.buffer;
            return self
                .world
                .mem
                .read(buf, 0)
                .map_err(|e| Abort::Crash(e.to_string()));
        }
        self.read_var_host(name)
    }

    fn region_scalar_write(&mut self, name: &str, v: Value) -> Exec<()> {
        if let Some(e) = self.world.present.get(name) {
            let buf = e.buffer;
            self.world
                .mem
                .write(buf, 0, v)
                .map_err(|e| Abort::Crash(e.to_string()))?;
        }
        // Reduction results are also visible on the host after the region.
        if self.frame().val(name).is_some() && !self.frame_mut().set_val(name, v) {
            return Err(unresolved(name));
        }
        Ok(())
    }

    fn host_scalar_type(&self, name: &str) -> ScalarType {
        match self.frame().ty(name) {
            Some(t) => t.scalar(),
            None => ScalarType::Int,
        }
    }

    /// The host fallback of a compute region (broken directive, `if(false)`):
    /// the body executes sequentially with no data movement. For lowered
    /// regions the pre-compiled host chunk is the exact equivalent of the
    /// walker's `exec_body`/`exec_for_host` on the same statements.
    fn region_host_fallback(&mut self, body: &RegionBody<'a>) -> Exec<()> {
        match body {
            RegionBody::Block(b) => self.exec_body(b, None).map(|_| ()),
            RegionBody::Loop(_, l) => self.exec_for_host(l).map(|_| ()),
            RegionBody::Code(rc) => self.vm_host_chunk(rc.host).map(|_| ()),
        }
    }

    /// Array names referenced anywhere in the region body (sorted — the
    /// implicit-mapping order is part of observable behaviour). Lowered
    /// regions carry the same set precomputed at compile time.
    fn referenced_arrays(&self, body: &RegionBody<'a>) -> Vec<String> {
        let mut names = BTreeSet::new();
        match body {
            RegionBody::Block(b) => collect_index_bases(b, &mut names),
            RegionBody::Loop(_, l) => {
                collect_expr_bases(&l.from, &mut names);
                collect_expr_bases(&l.to, &mut names);
                collect_index_bases(&l.body, &mut names);
            }
            RegionBody::Code(rc) => return rc.referenced.clone(),
        }
        names.into_iter().collect()
    }

    // ------------------------------------------------------------------
    // Device execution
    // ------------------------------------------------------------------

    pub(crate) fn exec_stmt_device(&mut self, s: &'a Stmt, ctx: &mut DevCtx) -> Exec<Flow> {
        self.tick()?;
        self.region_cost += 1;
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                let v = match init {
                    Some(e) => self
                        .eval_device(e, ctx)?
                        .convert_to(ty.scalar())
                        .map_err(crash)?,
                    None => self.garbage_value(ty.scalar()),
                };
                let slot = ctx.slot(name).ok_or_else(|| unresolved(name))?;
                ctx.set_local(slot, v);
                Ok(Flow::Normal)
            }
            Stmt::DeclArray { .. } => Err(Abort::Crash(
                "array declarations inside compute regions are not supported".into(),
            )),
            Stmt::Assign { target, op, value } => {
                let rhs = self.eval_device(value, ctx)?;
                let newv = match op {
                    None => rhs,
                    Some(op) => {
                        let old = self.read_lvalue_device(target, ctx)?;
                        apply_binop(*op, old, rhs).map_err(crash)?
                    }
                };
                self.write_lvalue_device(target, newv, ctx)?;
                Ok(Flow::Normal)
            }
            Stmt::For(l) => {
                // An unannotated loop in a compute region executes in full by
                // the current execution unit (gang-redundant!) — the very
                // effect the cross tests detect.
                self.exec_for_device(l, UnitSel::All, ctx)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval_device(cond, ctx)?;
                if c.truthy() {
                    self.exec_body_device(then_body, ctx)
                } else {
                    self.exec_body_device(else_body, ctx)
                }
            }
            Stmt::Call { name, args } => {
                // Runtime routines callable from device code (acc_on_device);
                // user procedure calls are rejected (no `routine` in 1.0).
                self.call_device(name, args, ctx)?;
                Ok(Flow::Normal)
            }
            Stmt::Return(_) => Err(Abort::Crash(
                "return inside a compute region is not supported".into(),
            )),
            Stmt::AccLoop { dir, l } => {
                self.exec_acc_loop_device(dir, DevLoopRef::Ast(l), ctx)?;
                Ok(Flow::Normal)
            }
            Stmt::AccBlock { dir, .. } => Err(Abort::Crash(format!(
                "nested `{}` regions inside compute constructs are not supported in 1.0",
                dir.kind.name()
            ))),
            Stmt::AccStandalone { dir } => match dir.kind {
                DirectiveKind::Cache => Ok(Flow::Normal),
                other => Err(Abort::Crash(format!(
                    "`{}` directive inside a compute region",
                    other.name()
                ))),
            },
        }
    }

    fn exec_body_device(&mut self, body: &'a [Stmt], ctx: &mut DevCtx) -> Exec<Flow> {
        for s in body {
            if let Flow::Return(v) = self.exec_stmt_device(s, ctx)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn call_device(&mut self, name: &str, args: &[Expr], ctx: &mut DevCtx) -> Exec<Value> {
        // User procedures are rejected up front (no `routine` directive in
        // 1.0, §V-C) — before argument evaluation, like a real front-end.
        if !is_intrinsic_name(name) && self.prog.function(name).is_some() {
            return Err(Abort::Crash(format!(
                "procedure call `{name}` inside a compute region is not supported by OpenACC 1.0"
            )));
        }
        if let Some(r) = RuntimeRoutine::from_symbol(name) {
            if r == RuntimeRoutine::OnDevice {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval_device(a, ctx)?);
                }
                // Defective runtimes misreport from device code too.
                if let Some(c) = self.profile.routine_override(r) {
                    return Ok(Value::Int(c));
                }
                let (v, _) = dispatch(r, &vals, &mut self.world, true, ScalarType::Float)
                    .map_err(|e| Abort::Crash(e.to_string()))?;
                return Ok(v);
            }
            return Err(Abort::Crash(format!(
                "runtime routine `{}` cannot be called from device code",
                r.symbol()
            )));
        }
        // Intrinsics with device-context arguments.
        let mut vals = Vec::new();
        for a in args {
            vals.push(self.eval_device(a, ctx)?);
        }
        eval_pure_intrinsic(name, &vals)
            .ok_or_else(|| {
                Abort::Crash(format!(
                    "procedure call `{name}` inside a compute region is not supported by OpenACC 1.0"
                ))
            })?
            .map_err(crash)
    }

    pub(crate) fn eval_device(&mut self, e: &Expr, ctx: &mut DevCtx) -> Exec<Value> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v, t) => Ok(match t {
                ScalarType::Float => Value::F32(*v as f32),
                _ => Value::F64(*v),
            }),
            Expr::Var(n) => self.read_scalar_device(n, ctx),
            Expr::Index { base, indices } => {
                let (buf, i) = self.flat_index_device(base, indices, ctx)?;
                self.world
                    .mem
                    .read(buf, i)
                    .map_err(|e| Abort::Crash(e.to_string()))
            }
            Expr::Unary(op, inner) => {
                let v = self.eval_device(inner, ctx)?;
                apply_unop(*op, v).map_err(crash)
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval_device(l, ctx)?;
                if *op == BinOp::And && !a.truthy() {
                    return Ok(Value::Int(0));
                }
                if *op == BinOp::Or && a.truthy() {
                    return Ok(Value::Int(1));
                }
                let b = self.eval_device(r, ctx)?;
                apply_binop(*op, a, b).map_err(crash)
            }
            Expr::Call { name, args } => self.call_device(name, args, ctx),
            Expr::SizeOf(t) => Ok(Value::Int(t.size_bytes() as i64)),
        }
    }

    fn read_scalar_device(&mut self, n: &str, ctx: &mut DevCtx) -> Exec<Value> {
        let slot = ctx.slot(n);
        self.read_scalar_device_at(n, slot, ctx)
    }

    /// [`Self::read_scalar_device`] with the slot pre-resolved (VM fast
    /// path) — identical lookup order.
    pub(crate) fn read_scalar_device_at(
        &mut self,
        n: &str,
        slot: Option<usize>,
        ctx: &mut DevCtx,
    ) -> Exec<Value> {
        if let Some(v) = slot.and_then(|s| ctx.value(s)) {
            return Ok(v);
        }
        if let Some(buf) = ctx.devptr.get(n) {
            return Ok(Value::DevPtr(*buf));
        }
        if let Some(e) = self.world.present.get(n) {
            // A mapped scalar: read its device copy.
            if self.host_array_id(n).is_none() {
                let buf = e.buffer;
                return self
                    .world
                    .mem
                    .read(buf, 0)
                    .map_err(|e| Abort::Crash(e.to_string()));
            }
        }
        if let Some(v) = device_constant(n) {
            return Ok(v);
        }
        // Implicit firstprivate: snapshot the host value into the gang scope.
        if let (Some(s), Some(v)) = (slot, self.frame().val(n)) {
            ctx.bind_gang(s, v);
            return Ok(v);
        }
        Err(Abort::Crash(format!(
            "device read of undefined variable `{n}`"
        )))
    }

    fn write_scalar_device(&mut self, n: &str, v: Value, ctx: &mut DevCtx) -> Exec<()> {
        let slot = ctx.slot(n);
        self.write_scalar_device_at(n, slot, v, ctx)
    }

    /// [`Self::write_scalar_device`] with the slot pre-resolved (VM fast
    /// path) — identical lookup order.
    pub(crate) fn write_scalar_device_at(
        &mut self,
        n: &str,
        slot: Option<usize>,
        v: Value,
        ctx: &mut DevCtx,
    ) -> Exec<()> {
        if let Some(s) = slot {
            if ctx.assign_existing(s, v) {
                return Ok(());
            }
        }
        if let Some(e) = self.world.present.get(n) {
            if self.host_array_id(n).is_none() {
                let buf = e.buffer;
                return self
                    .world
                    .mem
                    .write(buf, 0, v)
                    .map_err(|e| Abort::Crash(e.to_string()));
            }
        }
        // Implicit firstprivate write: lands in the gang scope only.
        let slot = slot.ok_or_else(|| unresolved(n))?;
        ctx.bind_gang(slot, v);
        Ok(())
    }

    fn read_lvalue_device(&mut self, lv: &LValue, ctx: &mut DevCtx) -> Exec<Value> {
        match lv {
            LValue::Var(n) => self.read_scalar_device(n, ctx),
            LValue::Index { base, indices } => {
                let (buf, i) = self.flat_index_device(base, indices, ctx)?;
                self.world
                    .mem
                    .read(buf, i)
                    .map_err(|e| Abort::Crash(e.to_string()))
            }
        }
    }

    fn write_lvalue_device(&mut self, lv: &LValue, v: Value, ctx: &mut DevCtx) -> Exec<()> {
        match lv {
            LValue::Var(n) => self.write_scalar_device(n, v, ctx),
            LValue::Index { base, indices } => {
                let (buf, i) = self.flat_index_device(base, indices, ctx)?;
                self.world
                    .mem
                    .write(buf, i, v)
                    .map_err(|e| Abort::Crash(e.to_string()))
            }
        }
    }

    fn flat_index_device(
        &mut self,
        base: &str,
        indices: &[Expr],
        ctx: &mut DevCtx,
    ) -> Exec<(BufferId, usize)> {
        let mut vals = Vec::with_capacity(indices.len());
        for e in indices {
            vals.push(self.eval_device(e, ctx)?.as_int().map_err(crash)?);
        }
        // deviceptr binding?
        let buf = if let Some(b) = ctx.devptr.get(base) {
            *b
        } else if let Some(e) = self.world.present.get(base) {
            e.buffer
        } else {
            // A raw pointer without a deviceptr binding dereferenced in
            // device code: the generated kernel would fault, exactly like a
            // real compiler passing a host pointer to the device.
            return Err(Abort::Crash(format!(
                "device access to `{base}` which is not present on the device"
            )));
        };
        let dims = self
            .world
            .mem
            .get(buf)
            .map_err(|e| Abort::Crash(e.to_string()))?
            .dims
            .clone();
        let flat = if dims.is_empty() {
            // Raw acc_malloc buffer: single linear index.
            if vals.len() != 1 || vals[0] < 0 {
                return Err(Abort::Crash(format!("bad linear index on `{base}`")));
            }
            vals[0] as usize
        } else {
            flatten(base, &vals, &dims)?
        };
        Ok((buf, flat))
    }

    // ------------------------------------------------------------------
    // Device loops
    // ------------------------------------------------------------------

    pub(crate) fn exec_acc_loop_device(
        &mut self,
        dir: &'a AccDirective,
        body: DevLoopRef<'a>,
        ctx: &mut DevCtx,
    ) -> Exec<()> {
        if self.profile.ignores_directive(DirectiveKind::Loop) && dir.kind == DirectiveKind::Loop {
            // The directive has no effect: redundant full execution. (A
            // collapsed run at depth 1 selecting every iteration is the
            // same traversal as `exec_for_device(l, All)`.)
            return match body {
                DevLoopRef::Ast(l) => self.exec_for_device(l, UnitSel::All, ctx).map(|_| ()),
                DevLoopRef::Code(nest) => self.vm_nest_collapsed(nest, 1, UnitSel::All, ctx),
            };
        }
        for c in &dir.clauses {
            if self.profile.hangs_on(dir.kind, c.kind()) {
                return Err(Abort::Timeout);
            }
        }
        let clauses: Vec<&AccClause> = dir
            .clauses
            .iter()
            .filter(|c| !self.profile.ignores_clause(dir.kind, c.kind()))
            .collect();
        // collapse handling.
        let collapse_n = clauses
            .iter()
            .find_map(|c| match c {
                AccClause::Collapse(e) => e.const_int(),
                _ => None,
            })
            .unwrap_or(1)
            .max(1) as usize;
        let collapse_n = if self.profile.has(&Defect::CollapseIgnoresInner) {
            1
        } else {
            collapse_n
        };

        let has = |k: ClauseKind| clauses.iter().any(|c| c.kind() == k);
        let seq = has(ClauseKind::Seq);
        let gang_c = has(ClauseKind::Gang);
        let worker_c = has(ClauseKind::Worker);
        let vector_c = has(ClauseKind::Vector);

        // Reductions on the loop, resolved to their frame slots up front.
        let mut reductions: Vec<(acc_spec::ReductionOp, &'a str, usize)> = Vec::new();
        for c in &clauses {
            if let AccClause::Reduction(op, vars) = c {
                for v in vars {
                    let slot = ctx.slot(v).ok_or_else(|| unresolved(v))?;
                    reductions.push((*op, v, slot));
                }
            }
        }
        // Loop privates (as slots — the per-unit rebind is a vector store).
        let mut privates: Vec<usize> = Vec::new();
        for c in &clauses {
            if let AccClause::Private(vs) = c {
                if self.profile.has(&Defect::PrivateAliasesShared) {
                    // Defective privatization: one shared device copy. The
                    // mapping deliberately leaks until the run ends — the
                    // defective compiler never releases it either.
                    for name in vs {
                        if !self.world.present.contains(name) {
                            self.enter_mapping(name, &None, ClauseKind::Create)?;
                        }
                    }
                } else {
                    for name in vs {
                        privates.push(ctx.slot(name).ok_or_else(|| unresolved(name))?);
                    }
                }
            }
        }

        // Decide the unit set.
        let g = ctx.num_gangs.max(1) as u64;
        let w = ctx.num_workers.max(1) as u64;
        let v = ctx.vector_len.max(1) as u64;
        let units: Vec<UnitSel> = if seq {
            vec![UnitSel::All]
        } else if ctx.kernels_mode {
            // kernels: auto-parallelized across the auto gang count; the
            // single executing "gang" walks all partitions.
            let auto = self.profile.kernels_auto_gangs.max(1) as u64;
            (0..auto).map(|r| UnitSel::Modulo { m: auto, r }).collect()
        } else if gang_c && worker_c {
            (0..w)
                .map(|wi| UnitSel::Modulo {
                    m: g * w,
                    r: ctx.gang as u64 * w + wi,
                })
                .collect()
        } else if gang_c {
            vec![UnitSel::Modulo {
                m: g,
                r: ctx.gang as u64,
            }]
        } else if worker_c && !ctx.in_gang_loop {
            // Fig. 1 ambiguity: worker loop without an enclosing gang loop.
            match self.profile.worker_loop_policy {
                WorkerLoopPolicy::PerGangWorkers => {
                    (0..w).map(|wi| UnitSel::Modulo { m: w, r: wi }).collect()
                }
                WorkerLoopPolicy::SpreadAcrossGangs => (0..w)
                    .map(|wi| UnitSel::Modulo {
                        m: g * w,
                        r: ctx.gang as u64 * w + wi,
                    })
                    .collect(),
                WorkerLoopPolicy::SequentialPerGang => vec![UnitSel::All],
            }
        } else if worker_c {
            // Inside a gang loop: partition across this gang's workers —
            // collectively the iterations run once per owning gang iteration.
            (0..w).map(|wi| UnitSel::Modulo { m: w, r: wi }).collect()
        } else if vector_c {
            (0..v).map(|vi| UnitSel::Modulo { m: v, r: vi }).collect()
        } else {
            // Bare loop (or independent): auto-partition across gangs.
            vec![UnitSel::Modulo {
                m: g,
                r: ctx.gang as u64,
            }]
        };

        // Snapshot reduction initials.
        let mut red_state: Vec<(acc_spec::ReductionOp, &'a str, usize, Value, Value)> = Vec::new();
        for (op, name, slot) in &reductions {
            let init = match ctx.value(*slot) {
                Some(v) => v,
                None => self.read_scalar_device(name, ctx)?,
            };
            red_state.push((*op, name, *slot, init, identity_like(*op, init)));
        }

        let entering_gang_loop = gang_c;
        for (ui, unit) in units.iter().enumerate() {
            // Per-unit scope for privates and reduction copies.
            ctx.push_scope();
            for slot in &privates {
                let gv = self.garbage_value(ScalarType::Int);
                ctx.set_local(*slot, gv);
            }
            for (op, _, slot, init, _) in &red_state {
                ctx.set_local(*slot, identity_like(*op, *init));
            }
            let saved = ctx.in_gang_loop;
            if entering_gang_loop {
                ctx.in_gang_loop = true;
            }
            let res = match body {
                DevLoopRef::Ast(l) => self.exec_collapsed_loop(l, collapse_n, *unit, ctx),
                DevLoopRef::Code(nest) => self.vm_nest_collapsed(nest, collapse_n, *unit, ctx),
            };
            ctx.in_gang_loop = saved;
            if res.is_err() {
                ctx.pop_scope();
                return res;
            }
            // Fold reduction copies — read before the pop restores the
            // shadowed bindings.
            #[allow(clippy::needless_range_loop)] // split borrow of red_state[i].4
            for i in 0..red_state.len() {
                let (op, slot) = (red_state[i].0, red_state[i].2);
                let copy = ctx.value(slot).unwrap_or(Value::Int(0));
                if self.profile.has(&Defect::WrongReduction(op)) && ui == 0 {
                    continue;
                }
                red_state[i].4 = combine(op, red_state[i].4, copy).map_err(crash)?;
                self.world.metrics.reductions += 1;
            }
            ctx.pop_scope();
        }
        // Write back reductions.
        for (op, name, _, init, acc) in red_state {
            let final_v = combine(op, init, acc).map_err(crash)?;
            self.write_scalar_device(name, final_v, ctx)?;
        }
        Ok(())
    }

    /// Execute a (possibly collapsed) counted loop on the device, running
    /// the iterations selected by `unit`.
    fn exec_collapsed_loop(
        &mut self,
        l: &'a ForLoop,
        collapse_n: usize,
        unit: UnitSel,
        ctx: &mut DevCtx,
    ) -> Exec<()> {
        // Gather the collapsed nest.
        let mut loops: Vec<&ForLoop> = vec![l];
        let mut body: &'a [Stmt] = &l.body;
        for _ in 1..collapse_n {
            match body {
                [Stmt::For(inner)] => {
                    loops.push(inner);
                    body = &inner.body;
                }
                _ => {
                    return Err(Abort::Crash(
                        "collapse requires tightly nested loops".into(),
                    ))
                }
            }
        }
        // Evaluate bounds once (rectangular iteration space).
        let mut bounds = Vec::new();
        for lp in &loops {
            let from = self.eval_device(&lp.from, ctx)?.as_int().map_err(crash)?;
            let to = self.eval_device(&lp.to, ctx)?.as_int().map_err(crash)?;
            let step = self.eval_device(&lp.step, ctx)?.as_int().map_err(crash)?;
            if step <= 0 {
                return Err(Abort::Crash(format!(
                    "loop step must be positive, got {step}"
                )));
            }
            let count = if to > from {
                ((to - from) + step - 1) / step
            } else {
                0
            };
            bounds.push((from, step, count as u64));
        }
        let mut var_slots = Vec::with_capacity(loops.len());
        for lp in &loops {
            var_slots.push(ctx.slot(&lp.var).ok_or_else(|| unresolved(&lp.var))?);
        }
        let total: u64 = bounds.iter().map(|b| b.2).product();
        for flat in 0..total {
            if !unit.selects(flat) {
                continue;
            }
            // Decompose the flat index (row-major).
            let mut rem = flat;
            let mut idxs = vec![0i64; loops.len()];
            for d in (0..loops.len()).rev() {
                let c = bounds[d].2.max(1);
                let k = rem % c;
                rem /= c;
                idxs[d] = bounds[d].0 + (k as i64) * bounds[d].1;
            }
            for (slot, iv) in var_slots.iter().zip(&idxs) {
                ctx.set_local(*slot, Value::Int(*iv));
            }
            self.world.metrics.device_iterations += 1;
            self.exec_body_device(body, ctx)?;
        }
        Ok(())
    }

    fn exec_for_device(&mut self, l: &'a ForLoop, unit: UnitSel, ctx: &mut DevCtx) -> Exec<Flow> {
        let from = self.eval_device(&l.from, ctx)?.as_int().map_err(crash)?;
        let to = self.eval_device(&l.to, ctx)?.as_int().map_err(crash)?;
        let step = self.eval_device(&l.step, ctx)?.as_int().map_err(crash)?;
        if step <= 0 {
            return Err(Abort::Crash(format!(
                "loop step must be positive, got {step}"
            )));
        }
        let var_slot = ctx.slot(&l.var).ok_or_else(|| unresolved(&l.var))?;
        let mut k: u64 = 0;
        let mut i = from;
        while i < to {
            if unit.selects(k) {
                ctx.set_local(var_slot, Value::Int(i));
                self.world.metrics.device_iterations += 1;
                if let Flow::Return(v) = self.exec_body_device(&l.body, ctx)? {
                    return Ok(Flow::Return(v));
                }
            }
            i += step;
            k += 1;
        }
        Ok(Flow::Normal)
    }
}

impl Drop for Machine<'_> {
    fn drop(&mut self) {
        self.drain_reg_pool();
    }
}

pub(crate) fn collect_expr_bases(e: &Expr, names: &mut BTreeSet<String>) {
    e.visit(&mut |x| {
        if let Expr::Index { base, .. } = x {
            names.insert(base.clone());
        }
    });
}

pub(crate) fn collect_index_bases(stmts: &[Stmt], names: &mut BTreeSet<String>) {
    for s in stmts {
        s.visit(&mut |st| match st {
            Stmt::Assign { target, value, .. } => {
                if let LValue::Index { base, indices } = target {
                    names.insert(base.clone());
                    for i in indices {
                        collect_expr_bases(i, names);
                    }
                }
                collect_expr_bases(value, names);
            }
            Stmt::DeclScalar { init: Some(e), .. } => collect_expr_bases(e, names),
            Stmt::For(l) => {
                collect_expr_bases(&l.from, names);
                collect_expr_bases(&l.to, names);
            }
            Stmt::AccLoop { l, .. } => {
                collect_expr_bases(&l.from, names);
                collect_expr_bases(&l.to, names);
            }
            Stmt::Return(e) => collect_expr_bases(e, names),
            Stmt::If { cond, .. } => collect_expr_bases(cond, names),
            Stmt::Call { args, .. } => {
                for a in args {
                    collect_expr_bases(a, names);
                }
            }
            _ => {}
        });
    }
}

/// Iteration ownership predicate of one execution unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnitSel {
    All,
    Modulo { m: u64, r: u64 },
}

impl UnitSel {
    pub(crate) fn selects(self, k: u64) -> bool {
        match self {
            UnitSel::All => true,
            UnitSel::Modulo { m, r } => m <= 1 || k % m == r,
        }
    }
}

/// The body of a compute region (block or combined-loop form), in either
/// representation — both engines run through the same region handler.
pub(crate) enum RegionBody<'a> {
    Block(&'a [Stmt]),
    Loop(&'a AccDirective, &'a ForLoop),
    Code(&'a crate::bytecode::RegionCode),
}

/// A loop nest under a `loop` directive, in either representation.
#[derive(Clone, Copy)]
pub(crate) enum DevLoopRef<'a> {
    Ast(&'a ForLoop),
    Code(&'a crate::bytecode::DevLoopNest),
}

/// A host-level directive body (data / host_data), in either representation.
#[derive(Clone, Copy)]
pub(crate) enum HostRef<'a> {
    Ast(&'a [Stmt]),
    Code(crate::bytecode::Chunk),
}

pub(crate) fn crash(e: impl std::fmt::Display) -> Abort {
    Abort::Crash(e.to_string())
}

/// A name the resolver never assigned a slot — the compile-time layout pass
/// and the interpreter disagree, which is an internal invariant break, not a
/// user error.
pub(crate) fn unresolved(name: &str) -> Abort {
    Abort::Crash(format!("internal error: unresolved name `{name}`"))
}

pub(crate) fn flatten(base: &str, vals: &[i64], dims: &[usize]) -> Exec<usize> {
    let dims = if dims.is_empty() { &[1usize][..] } else { dims };
    if vals.len() != dims.len() {
        return Err(Abort::Crash(format!(
            "`{base}` has {} dimension(s), indexed with {}",
            dims.len(),
            vals.len()
        )));
    }
    let mut flat = 0usize;
    for (v, d) in vals.iter().zip(dims) {
        if *v < 0 || *v as usize >= *d {
            return Err(Abort::Crash(format!(
                "index {v} out of bounds for `{base}` (extent {d})"
            )));
        }
        flat = flat * d + *v as usize;
    }
    Ok(flat)
}

fn is_mapping_clause(k: ClauseKind) -> bool {
    matches!(
        k,
        ClauseKind::Copy
            | ClauseKind::Copyin
            | ClauseKind::Copyout
            | ClauseKind::Create
            | ClauseKind::Present
            | ClauseKind::PresentOrCopy
            | ClauseKind::PresentOrCopyin
            | ClauseKind::PresentOrCopyout
            | ClauseKind::PresentOrCreate
            | ClauseKind::DeviceResident
    )
}

/// The base action of a possibly `present_or_` clause.
fn base_clause(k: ClauseKind) -> ClauseKind {
    match k {
        ClauseKind::PresentOrCopy => ClauseKind::Copy,
        ClauseKind::PresentOrCopyin => ClauseKind::Copyin,
        ClauseKind::PresentOrCopyout => ClauseKind::Copyout,
        ClauseKind::PresentOrCreate | ClauseKind::DeviceResident => ClauseKind::Create,
        other => other,
    }
}

/// Identity element matching the dynamic type of `like`.
fn identity_like(op: acc_spec::ReductionOp, like: Value) -> Value {
    match like {
        Value::Int(_) => Value::Int(op.int_identity()),
        Value::F32(_) => Value::F32(op.float_identity() as f32),
        Value::F64(_) => Value::F64(op.float_identity()),
        Value::DevPtr(_) => Value::Int(op.int_identity()),
    }
}

/// Combine two values under a reduction operator, preserving floatness.
fn combine(
    op: acc_spec::ReductionOp,
    a: Value,
    b: Value,
) -> Result<Value, acc_device::value::ValueError> {
    use acc_device::value::ValueError;
    if op.integer_only() {
        return Ok(Value::Int(op.combine_int(a.as_int()?, b.as_int()?)));
    }
    match Value::promoted(a, b)? {
        ScalarType::Int => Ok(Value::Int(op.combine_int(a.as_int()?, b.as_int()?))),
        ScalarType::Float => {
            let r = op.combine_float(a.as_f64()?, b.as_f64()?);
            Ok(Value::F32(r as f32))
        }
        ScalarType::Double => Ok(Value::F64(op.combine_float(a.as_f64()?, b.as_f64()?))),
    }
    .map_err(|e: ValueError| e)
}

pub(crate) fn apply_unop(op: UnOp, v: Value) -> Result<Value, acc_device::value::ValueError> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => Ok(Value::Int(-x)),
            Value::F32(x) => Ok(Value::F32(-x)),
            Value::F64(x) => Ok(Value::F64(-x)),
            Value::DevPtr(_) => Err(acc_device::value::ValueError(
                "negation of device pointer".into(),
            )),
        },
        UnOp::Not => Ok(Value::Int((!v.truthy()) as i64)),
    }
}

pub(crate) fn apply_binop(op: BinOp, a: Value, b: Value) -> Result<Value, acc_device::value::ValueError> {
    use acc_device::value::ValueError;
    // Pointer equality comparisons are allowed (p == 0 null checks).
    if let (Value::DevPtr(x), bv) = (a, b) {
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            let eq = match bv {
                Value::DevPtr(y) => x == y,
                Value::Int(0) => false,
                _ => false,
            };
            return Ok(Value::Int(((op == BinOp::Eq) == eq) as i64));
        }
    }
    match op {
        BinOp::And => return Ok(Value::Int((a.truthy() && b.truthy()) as i64)),
        BinOp::Or => return Ok(Value::Int((a.truthy() || b.truthy()) as i64)),
        _ => {}
    }
    let ty = Value::promoted(a, b)?;
    match ty {
        ScalarType::Int => {
            let (x, y) = (a.as_int()?, b.as_int()?);
            let v = match op {
                BinOp::Add => Value::Int(x.wrapping_add(y)),
                BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        return Err(ValueError("integer division by zero".into()));
                    }
                    Value::Int(x / y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(ValueError("integer remainder by zero".into()));
                    }
                    Value::Int(x % y)
                }
                BinOp::Lt => Value::Int((x < y) as i64),
                BinOp::Le => Value::Int((x <= y) as i64),
                BinOp::Gt => Value::Int((x > y) as i64),
                BinOp::Ge => Value::Int((x >= y) as i64),
                BinOp::Eq => Value::Int((x == y) as i64),
                BinOp::Ne => Value::Int((x != y) as i64),
                BinOp::BitAnd => Value::Int(x & y),
                BinOp::BitOr => Value::Int(x | y),
                BinOp::BitXor => Value::Int(x ^ y),
                BinOp::And | BinOp::Or => unreachable!(),
            };
            Ok(v)
        }
        float_ty => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            let wrap = |v: f64| -> Value {
                if float_ty == ScalarType::Float {
                    Value::F32(v as f32)
                } else {
                    Value::F64(v)
                }
            };
            let v = match op {
                BinOp::Add => wrap(x + y),
                BinOp::Sub => wrap(x - y),
                BinOp::Mul => wrap(x * y),
                BinOp::Div => wrap(x / y),
                BinOp::Rem => return Err(ValueError("% on floating operands".into())),
                BinOp::Lt => Value::Int((x < y) as i64),
                BinOp::Le => Value::Int((x <= y) as i64),
                BinOp::Gt => Value::Int((x > y) as i64),
                BinOp::Ge => Value::Int((x >= y) as i64),
                BinOp::Eq => Value::Int((x == y) as i64),
                BinOp::Ne => Value::Int((x != y) as i64),
                BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                    return Err(ValueError("bitwise op on floating operands".into()))
                }
                BinOp::And | BinOp::Or => unreachable!(),
            };
            Ok(v)
        }
    }
}

/// Names of the pure math intrinsics.
fn is_intrinsic_name(name: &str) -> bool {
    matches!(
        name,
        "powf"
            | "pow"
            | "fabsf"
            | "fabs"
            | "sqrtf"
            | "sqrt"
            | "abs"
            | "mod"
            | "iand"
            | "ior"
            | "ieor"
            | "min"
            | "max"
    )
}

/// Pure intrinsics evaluable with already-computed argument values
/// (device-side call path).
fn eval_pure_intrinsic(
    name: &str,
    vals: &[Value],
) -> Option<Result<Value, acc_device::value::ValueError>> {
    let one = |i: usize| -> Result<f64, acc_device::value::ValueError> { vals[i].as_f64() };
    let r = match name {
        "powf" if vals.len() == 2 => (|| Ok(Value::F32(one(0)?.powf(one(1)?) as f32)))(),
        "pow" if vals.len() == 2 => (|| Ok(Value::F64(one(0)?.powf(one(1)?))))(),
        "fabsf" if vals.len() == 1 => (|| Ok(Value::F32(one(0)?.abs() as f32)))(),
        "fabs" if vals.len() == 1 => (|| Ok(Value::F64(one(0)?.abs())))(),
        "sqrtf" if vals.len() == 1 => (|| Ok(Value::F32(one(0)?.sqrt() as f32)))(),
        "sqrt" if vals.len() == 1 => (|| Ok(Value::F64(one(0)?.sqrt())))(),
        "abs" if vals.len() == 1 => vals[0].as_int().map(|v| Value::Int(v.abs())),
        "mod" if vals.len() == 2 => (|| {
            let (a, b) = (vals[0].as_int()?, vals[1].as_int()?);
            if b == 0 {
                return Err(acc_device::value::ValueError("mod by zero".into()));
            }
            Ok(Value::Int(a % b))
        })(),
        "iand" if vals.len() == 2 => (|| Ok(Value::Int(vals[0].as_int()? & vals[1].as_int()?)))(),
        "ior" if vals.len() == 2 => (|| Ok(Value::Int(vals[0].as_int()? | vals[1].as_int()?)))(),
        "ieor" if vals.len() == 2 => (|| Ok(Value::Int(vals[0].as_int()? ^ vals[1].as_int()?)))(),
        "min" if vals.len() == 2 => num_min_max(vals[0], vals[1], true),
        "max" if vals.len() == 2 => num_min_max(vals[0], vals[1], false),
        _ => return None,
    };
    Some(r)
}

fn num_min_max(a: Value, b: Value, is_min: bool) -> Result<Value, acc_device::value::ValueError> {
    match Value::promoted(a, b)? {
        ScalarType::Int => {
            let (x, y) = (a.as_int()?, b.as_int()?);
            Ok(Value::Int(if is_min { x.min(y) } else { x.max(y) }))
        }
        ScalarType::Float => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Ok(Value::F32(
                (if is_min { x.min(y) } else { x.max(y) }) as f32,
            ))
        }
        ScalarType::Double => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Ok(Value::F64(if is_min { x.min(y) } else { x.max(y) }))
        }
    }
}

/// Named constants visible to generated programs.
pub(crate) fn device_constant(n: &str) -> Option<Value> {
    DeviceType::from_symbol(n).map(|d| Value::Int(d.encoding()))
}

fn stmt_dead(s: &Stmt) -> bool {
    match s {
        Stmt::Assign {
            op: None, value, ..
        } => {
            matches!(value, Expr::Index { .. } | Expr::Var(_))
        }
        Stmt::For(l) => l.body.iter().all(stmt_dead),
        Stmt::AccLoop { l, .. } => l.body.iter().all(stmt_dead),
        Stmt::DeclScalar { .. } => true,
        _ => false,
    }
}

/// The Fig. 11 dummy-loop test: every statement only copies data. An empty
/// region is trivially dead; anything that computes keeps the region alive.
/// (Shared with the lowering pass, which precomputes the verdict.)
pub(crate) fn stmts_all_dead(stmts: &[Stmt]) -> bool {
    stmts.iter().all(stmt_dead)
}

/// The Cray dead-region heuristic: a region is "dead" when every assignment
/// copies data without computing (no operators, no literals on the RHS) —
/// the Fig. 11 dummy-loop pattern.
fn region_is_dead(body: &RegionBody<'_>) -> bool {
    match body {
        RegionBody::Block(b) => stmts_all_dead(b),
        RegionBody::Loop(_, l) => stmts_all_dead(&l.body),
        RegionBody::Code(rc) => rc.dead,
    }
}
