//! The bytecode dispatch loop.
//!
//! Executes [`crate::bytecode::BytecodeProgram`] chunks against the same
//! [`Machine`] state the tree walker uses — the same frames, present table,
//! device memory, clocks, and fault draws — so every observable effect
//! (including crash messages, tick counts, and metric increments) is
//! byte-identical between the two engines. Directive instructions re-enter
//! the shared handlers in `exec` (`exec_compute_region`,
//! `exec_data_region`, `exec_acc_loop_device`, `exec_standalone`) with the
//! lowered body representation; statement/expression escape hatches call
//! straight back into the walker.

use acc_device::Value;

use crate::bytecode::{Chunk, DevLoopNest, Instr, NO_SLOT, OPCODE_COUNT};
use crate::exec::{
    apply_binop, apply_unop, crash, unresolved, Abort, ArrBinding, DevCtx, DevLoopRef, Exec, Flow,
    HostRef, Machine, RegionBody, UnitSel,
};

/// Decode a `NO_SLOT`-encoded slot operand.
#[inline]
fn opt_slot(s: u32) -> Option<usize> {
    if s == NO_SLOT {
        None
    } else {
        Some(s as usize)
    }
}

/// An internal-invariant crash: lowering emitted an instruction in the
/// wrong kind of chunk. Never reachable from generated programs.
fn wrong_chunk(ins: &Instr, which: &str) -> Abort {
    Abort::Crash(format!(
        "internal error: {ins:?} in a {which} chunk"
    ))
}

impl<'a> Machine<'a> {
    /// Run the lowered body of `name` (the VM side of `call_function`).
    pub(crate) fn vm_function(&mut self, name: &str) -> Exec<Flow> {
        let bp = self
            .code
            .ok_or_else(|| Abort::Crash("internal error: VM dispatch without bytecode".into()))?;
        match bp.func_chunk(name) {
            Some(c) => self.vm_host_chunk(c),
            None => Err(unresolved(name)),
        }
    }

    /// Grab a scratch register file from the pool, sized for `chunk`. Falls
    /// back to the thread-local arena so register files recycle across
    /// machine instances, not just within one run.
    fn take_regs(&mut self, n: u32) -> Vec<Value> {
        let mut regs = self
            .reg_pool
            .pop()
            .unwrap_or_else(crate::arena::take_regs);
        regs.clear();
        regs.resize(n as usize, Value::Int(0));
        regs
    }

    /// Execute a host chunk with a pooled register file.
    pub(crate) fn vm_host_chunk(&mut self, chunk: Chunk) -> Exec<Flow> {
        let mut regs = self.take_regs(chunk.regs);
        let r = self.vm_host_loop(chunk, &mut regs);
        self.reg_pool.push(regs);
        r
    }

    fn vm_host_loop(&mut self, chunk: Chunk, regs: &mut [Value]) -> Exec<Flow> {
        // `code` is a Copy field holding `&'a BytecodeProgram`, so `bp`
        // borrows the executable, not `self`.
        let bp = self
            .code
            .ok_or_else(|| Abort::Crash("internal error: VM dispatch without bytecode".into()))?;
        let base = chunk.start as usize;
        let mut pc = 0usize;
        // Opcode-pair profiling row for "chunk entry" (no predecessor).
        let mut prev = OPCODE_COUNT;
        loop {
            let ins = bp.code[base + pc];
            pc += 1;
            self.vm_instructions += 1;
            if let Some(pp) = self.pair_profile.as_deref_mut() {
                let op = ins.opcode() as usize;
                pp[prev * OPCODE_COUNT + op] += 1;
                prev = op;
            }
            match ins {
                Instr::Const { dst, k } => regs[dst as usize] = bp.consts[k as usize],
                Instr::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
                Instr::Unop { dst, op, src } => {
                    regs[dst as usize] = apply_unop(op, regs[src as usize]).map_err(crash)?;
                }
                Instr::Binop { dst, op, a, b } => {
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[b as usize]).map_err(crash)?;
                }
                Instr::AsInt { r } => {
                    regs[r as usize] = Value::Int(regs[r as usize].as_int().map_err(crash)?);
                }
                Instr::ConvertTo { r, ty } => {
                    regs[r as usize] = regs[r as usize].convert_to(ty).map_err(crash)?;
                }
                Instr::Garbage { dst, ty } => regs[dst as usize] = self.garbage_value(ty),
                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIfTrue { cond, to } => {
                    if regs[cond as usize].truthy() {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfFalse { cond, to } => {
                    if !regs[cond as usize].truthy() {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfGe { a, b, to } => {
                    // Both operands are `Int` by construction (see the
                    // lowerer's int fast path); `as_int` on `Int` cannot fail.
                    let av = regs[a as usize].as_int().map_err(crash)?;
                    let bv = regs[b as usize].as_int().map_err(crash)?;
                    if av >= bv {
                        pc = to as usize;
                    }
                }
                Instr::CrashMsg { msg } => {
                    return Err(Abort::Crash(bp.msgs[msg as usize].clone()))
                }
                Instr::CheckStep { src } => {
                    let step = regs[src as usize].as_int().map_err(crash)?;
                    if step <= 0 {
                        return Err(Abort::Crash(format!(
                            "loop step must be positive, got {step}"
                        )));
                    }
                }
                Instr::Return { src } => return Ok(Flow::Return(regs[src as usize])),
                Instr::End => return Ok(Flow::Normal),

                // --- Fused superinstructions (host forms). Each arm
                // replays its constituents in order; `vm_instructions`
                // advances between the halves — after the first half's
                // fallible work — so an abort mid-pair reports the same
                // count as the unfused stream (DESIGN.md §15.3).
                Instr::TickIdxVarH { dst, name, slot } => {
                    self.tick()?;
                    self.world.clock.advance(1);
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    let v = self.read_var_host_at(&bp.names[name as usize], opt_slot(slot))?;
                    regs[dst as usize] = Value::Int(v.as_int().map_err(crash)?);
                }
                Instr::ConstBinop { cdst, k, dst, op, a } => {
                    regs[cdst as usize] = bp.consts[k as usize];
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[cdst as usize]).map_err(crash)?;
                }
                Instr::BinopJump { dst, op, a, b, to } => {
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[b as usize]).map_err(crash)?;
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    pc = to as usize;
                }
                Instr::JumpIfGeSetSlot { a, b, to, slot, src } => {
                    let av = regs[a as usize].as_int().map_err(crash)?;
                    let bv = regs[b as usize].as_int().map_err(crash)?;
                    if av >= bv {
                        // Taken: the unfused stream jumps over the store.
                        pc = to as usize;
                    } else {
                        self.vm_instructions += 1;
                        self.vm_fused_saved += 1;
                        self.frame_mut().slots[slot as usize].val = Some(regs[src as usize]);
                    }
                }

                Instr::TickHost => {
                    self.tick()?;
                    self.world.clock.advance(1);
                }
                Instr::TickLoop => self.tick()?,
                Instr::ReadVarH { dst, name, slot } => {
                    regs[dst as usize] =
                        self.read_var_host_at(&bp.names[name as usize], opt_slot(slot))?;
                }
                Instr::WriteVarH { src, name, slot } => {
                    self.write_var_host_at(
                        &bp.names[name as usize],
                        opt_slot(slot),
                        regs[src as usize],
                    )?;
                }
                Instr::IdxVarH { dst, name, slot } => {
                    let v = self.read_var_host_at(&bp.names[name as usize], opt_slot(slot))?;
                    regs[dst as usize] = Value::Int(v.as_int().map_err(crash)?);
                }
                Instr::ReadIdxH { dst, name, slot, idx, n } => {
                    let vals = int_block(regs, idx, n);
                    let nm = &bp.names[name as usize];
                    let (binding, flat) =
                        self.vm_host_elem(nm, opt_slot(slot), &vals[..n as usize])?;
                    regs[dst as usize] = match binding {
                        ArrBinding::Host(id) => {
                            self.host_arrays[id].data.get(flat).ok_or_else(|| {
                                Abort::Crash(format!("host read out of bounds: {nm}[{flat}]"))
                            })?
                        }
                        ArrBinding::Device(buf) => self
                            .world
                            .mem
                            .read(buf, flat)
                            .map_err(|e| Abort::Crash(e.to_string()))?,
                    };
                }
                Instr::WriteIdxH { src, name, slot, idx, n } => {
                    let vals = int_block(regs, idx, n);
                    let nm = &bp.names[name as usize];
                    let (binding, flat) =
                        self.vm_host_elem(nm, opt_slot(slot), &vals[..n as usize])?;
                    match binding {
                        ArrBinding::Host(id) => {
                            let arr = &mut self.host_arrays[id];
                            if !arr.data.set(flat, regs[src as usize]).map_err(crash)? {
                                return Err(Abort::Crash(format!(
                                    "host write out of bounds: {nm}[{flat}]"
                                )));
                            }
                        }
                        ArrBinding::Device(buf) => self
                            .world
                            .mem
                            .write(buf, flat, regs[src as usize])
                            .map_err(|e| Abort::Crash(e.to_string()))?,
                    }
                }
                Instr::DeclStore { src, slot, ty } => {
                    let f = self.frame_mut();
                    f.slots[slot as usize].val = Some(regs[src as usize]);
                    f.slots[slot as usize].ty = Some(ty);
                }
                Instr::SetSlot { slot, src } => {
                    self.frame_mut().slots[slot as usize].val = Some(regs[src as usize]);
                }
                Instr::EvalHostExpr { dst, expr, hint } => {
                    regs[dst as usize] =
                        self.eval_host_with_hint(&bp.exprs[expr as usize], hint)?;
                }
                Instr::HostStmt { stmt } => {
                    if let Flow::Return(v) = self.exec_stmt_host(&bp.stmts[stmt as usize])? {
                        return Ok(Flow::Return(v));
                    }
                }
                Instr::Standalone { dir } => self.exec_standalone(&bp.dirs[dir as usize])?,
                Instr::Compute { region } => {
                    let rc = &bp.regions[region as usize];
                    self.exec_compute_region(&bp.dirs[rc.dir as usize], RegionBody::Code(rc))?;
                }
                Instr::DataRegion { block } => {
                    let hb = &bp.blocks[block as usize];
                    self.exec_data_region(&bp.dirs[hb.dir as usize], HostRef::Code(hb.chunk))?;
                }
                Instr::HostDataRegion { block } => {
                    let hb = &bp.blocks[block as usize];
                    self.exec_hostdata_region(&bp.dirs[hb.dir as usize], HostRef::Code(hb.chunk))?;
                }

                other => return Err(wrong_chunk(&other, "host")),
            }
        }
    }

    /// `lookup_array_host` + `flatten` with the base's slot pre-resolved —
    /// the crash order (indices first, then binding, then bounds) already
    /// happened or happens here exactly as in `flat_index_host`.
    fn vm_host_elem(
        &mut self,
        nm: &str,
        slot: Option<usize>,
        vals: &[i64],
    ) -> Exec<(ArrBinding, usize)> {
        let binding = match slot.and_then(|s| self.frame().slots[s].arr) {
            Some(b) => b,
            None => {
                if let Some(Value::DevPtr(_)) = slot.and_then(|s| self.frame().slots[s].val) {
                    return Err(Abort::Crash(format!(
                        "host dereference of device pointer `{nm}` (segmentation fault)"
                    )));
                }
                return Err(Abort::Crash(format!("`{nm}` is not an array")));
            }
        };
        let flat = match binding {
            ArrBinding::Host(id) => {
                crate::exec::flatten(nm, vals, &self.host_arrays[id].dims)?
            }
            ArrBinding::Device(buf) => {
                let dims = &self
                    .world
                    .mem
                    .get(buf)
                    .map_err(|e| Abort::Crash(e.to_string()))?
                    .dims;
                crate::exec::flatten(nm, vals, dims)?
            }
        };
        Ok((binding, flat))
    }

    /// Invalidate the name → buffer cache for a fresh device-chunk
    /// activation. Host code (which is what mutates the present table) can
    /// never run while a device chunk is live, so resolutions stay valid
    /// until the next activation.
    fn reset_dev_bufs(&mut self) {
        let n = self.code.map(|bp| bp.names.len()).unwrap_or(0);
        self.dev_bufs.clear();
        self.dev_bufs.resize(n, None);
    }

    /// Execute a device chunk with a pooled register file.
    pub(crate) fn vm_dev_chunk(&mut self, chunk: Chunk, ctx: &mut DevCtx) -> Exec<Flow> {
        self.reset_dev_bufs();
        let mut regs = self.take_regs(chunk.regs);
        let r = self.vm_dev_loop(chunk, &mut regs, ctx);
        self.reg_pool.push(regs);
        r
    }

    fn vm_dev_loop(
        &mut self,
        chunk: Chunk,
        regs: &mut [Value],
        ctx: &mut DevCtx,
    ) -> Exec<Flow> {
        let bp = self
            .code
            .ok_or_else(|| Abort::Crash("internal error: VM dispatch without bytecode".into()))?;
        let base = chunk.start as usize;
        let mut pc = 0usize;
        // Opcode-pair profiling row for "chunk entry" (no predecessor).
        let mut prev = OPCODE_COUNT;
        loop {
            let ins = bp.code[base + pc];
            pc += 1;
            self.vm_instructions += 1;
            if let Some(pp) = self.pair_profile.as_deref_mut() {
                let op = ins.opcode() as usize;
                pp[prev * OPCODE_COUNT + op] += 1;
                prev = op;
            }
            match ins {
                Instr::Const { dst, k } => regs[dst as usize] = bp.consts[k as usize],
                Instr::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
                Instr::Unop { dst, op, src } => {
                    regs[dst as usize] = apply_unop(op, regs[src as usize]).map_err(crash)?;
                }
                Instr::Binop { dst, op, a, b } => {
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[b as usize]).map_err(crash)?;
                }
                Instr::AsInt { r } => {
                    regs[r as usize] = Value::Int(regs[r as usize].as_int().map_err(crash)?);
                }
                Instr::ConvertTo { r, ty } => {
                    regs[r as usize] = regs[r as usize].convert_to(ty).map_err(crash)?;
                }
                Instr::Garbage { dst, ty } => regs[dst as usize] = self.garbage_value(ty),
                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIfTrue { cond, to } => {
                    if regs[cond as usize].truthy() {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfFalse { cond, to } => {
                    if !regs[cond as usize].truthy() {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfGe { a, b, to } => {
                    // Both operands are `Int` by construction (see the
                    // lowerer's int fast path); `as_int` on `Int` cannot fail.
                    let av = regs[a as usize].as_int().map_err(crash)?;
                    let bv = regs[b as usize].as_int().map_err(crash)?;
                    if av >= bv {
                        pc = to as usize;
                    }
                }
                Instr::CrashMsg { msg } => {
                    return Err(Abort::Crash(bp.msgs[msg as usize].clone()))
                }
                Instr::CheckStep { src } => {
                    let step = regs[src as usize].as_int().map_err(crash)?;
                    if step <= 0 {
                        return Err(Abort::Crash(format!(
                            "loop step must be positive, got {step}"
                        )));
                    }
                }
                Instr::Return { src } => return Ok(Flow::Return(regs[src as usize])),
                Instr::End => return Ok(Flow::Normal),

                Instr::TickDev => {
                    self.tick()?;
                    self.region_cost += 1;
                }
                Instr::ReadVarD { dst, name, slot } => {
                    let s = opt_slot(slot);
                    // Fast path: a bound slot — the helper's own first check.
                    regs[dst as usize] = match s.and_then(|i| ctx.value(i)) {
                        Some(v) => v,
                        None => self.read_scalar_device_at(&bp.names[name as usize], s, ctx)?,
                    };
                }
                Instr::WriteVarD { src, name, slot } => {
                    self.write_scalar_device_at(
                        &bp.names[name as usize],
                        opt_slot(slot),
                        regs[src as usize],
                        ctx,
                    )?;
                }
                Instr::IdxVarD { dst, name, slot } => {
                    let s = opt_slot(slot);
                    let v = match s.and_then(|i| ctx.value(i)) {
                        Some(v) => v,
                        None => self.read_scalar_device_at(&bp.names[name as usize], s, ctx)?,
                    };
                    regs[dst as usize] = Value::Int(v.as_int().map_err(crash)?);
                }
                Instr::ReadIdxD { dst, name, idx, n } => {
                    let vals = int_block(regs, idx, n);
                    let nm = &bp.names[name as usize];
                    let (buf, flat) = self.vm_dev_elem(name, nm, &vals[..n as usize], ctx)?;
                    regs[dst as usize] = self
                        .world
                        .mem
                        .read(buf, flat)
                        .map_err(|e| Abort::Crash(e.to_string()))?;
                }
                Instr::WriteIdxD { src, name, idx, n } => {
                    let vals = int_block(regs, idx, n);
                    let nm = &bp.names[name as usize];
                    let (buf, flat) = self.vm_dev_elem(name, nm, &vals[..n as usize], ctx)?;
                    self.world
                        .mem
                        .write(buf, flat, regs[src as usize])
                        .map_err(|e| Abort::Crash(e.to_string()))?;
                }
                Instr::SetLocal { slot, src } => {
                    ctx.set_local(slot as usize, regs[src as usize]);
                }
                Instr::DevIter => self.world.metrics.device_iterations += 1,
                Instr::EvalDevExpr { dst, expr } => {
                    regs[dst as usize] = self.eval_device(&bp.exprs[expr as usize], ctx)?;
                }
                Instr::DevStmt { stmt } => {
                    if let Flow::Return(v) =
                        self.exec_stmt_device(&bp.stmts[stmt as usize], ctx)?
                    {
                        return Ok(Flow::Return(v));
                    }
                }
                Instr::DevLoopDir { nest } => {
                    let nl = &bp.nests[nest as usize];
                    self.exec_acc_loop_device(
                        &bp.dirs[nl.dir as usize],
                        DevLoopRef::Code(nl),
                        ctx,
                    )?;
                }

                // --- Fused superinstructions (device forms). Same
                // mid-pair counting protocol as the host loop.
                Instr::TickIdxVarD { dst, name, slot } => {
                    self.tick()?;
                    self.region_cost += 1;
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    let s = opt_slot(slot);
                    let v = match s.and_then(|i| ctx.value(i)) {
                        Some(v) => v,
                        None => self.read_scalar_device_at(&bp.names[name as usize], s, ctx)?,
                    };
                    regs[dst as usize] = Value::Int(v.as_int().map_err(crash)?);
                }
                Instr::IdxVarReadD { vdst, vname, vslot, dst, aname } => {
                    let s = opt_slot(vslot);
                    let v = match s.and_then(|i| ctx.value(i)) {
                        Some(v) => v,
                        None => self.read_scalar_device_at(&bp.names[vname as usize], s, ctx)?,
                    };
                    regs[vdst as usize] = Value::Int(v.as_int().map_err(crash)?);
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    let vals = int_block(regs, vdst, 1);
                    let nm = &bp.names[aname as usize];
                    let (buf, flat) = self.vm_dev_elem(aname, nm, &vals[..1], ctx)?;
                    regs[dst as usize] = self
                        .world
                        .mem
                        .read(buf, flat)
                        .map_err(|e| Abort::Crash(e.to_string()))?;
                }
                Instr::IdxVarWriteD { vdst, vname, vslot, src, aname } => {
                    let s = opt_slot(vslot);
                    let v = match s.and_then(|i| ctx.value(i)) {
                        Some(v) => v,
                        None => self.read_scalar_device_at(&bp.names[vname as usize], s, ctx)?,
                    };
                    regs[vdst as usize] = Value::Int(v.as_int().map_err(crash)?);
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    let vals = int_block(regs, vdst, 1);
                    let nm = &bp.names[aname as usize];
                    let (buf, flat) = self.vm_dev_elem(aname, nm, &vals[..1], ctx)?;
                    self.world
                        .mem
                        .write(buf, flat, regs[src as usize])
                        .map_err(|e| Abort::Crash(e.to_string()))?;
                }
                Instr::ConstBinop { cdst, k, dst, op, a } => {
                    regs[cdst as usize] = bp.consts[k as usize];
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[cdst as usize]).map_err(crash)?;
                }
                Instr::BinopJump { dst, op, a, b, to } => {
                    regs[dst as usize] =
                        apply_binop(op, regs[a as usize], regs[b as usize]).map_err(crash)?;
                    self.vm_instructions += 1;
                    self.vm_fused_saved += 1;
                    pc = to as usize;
                }
                Instr::JumpIfGeSetLocal { a, b, to, slot, src } => {
                    let av = regs[a as usize].as_int().map_err(crash)?;
                    let bv = regs[b as usize].as_int().map_err(crash)?;
                    if av >= bv {
                        // Taken: the unfused stream jumps over the store.
                        pc = to as usize;
                    } else {
                        self.vm_instructions += 1;
                        self.vm_fused_saved += 1;
                        ctx.set_local(slot as usize, regs[src as usize]);
                    }
                }

                other => return Err(wrong_chunk(&other, "device")),
            }
        }
    }

    /// Device element address resolution — `flat_index_device` with the
    /// index values already computed. Resolutions are cached by name id for
    /// the rest of the chunk activation (see [`Self::reset_dev_bufs`]).
    fn vm_dev_elem(
        &mut self,
        name: u32,
        nm: &str,
        vals: &[i64],
        ctx: &DevCtx,
    ) -> Exec<(acc_device::BufferId, usize)> {
        let buf = match self.dev_bufs.get(name as usize).copied().flatten() {
            Some(b) => b,
            None => {
                let b = if let Some(b) = ctx.devptr.get(nm) {
                    *b
                } else if let Some(e) = self.world.present.get(nm) {
                    e.buffer
                } else {
                    return Err(Abort::Crash(format!(
                        "device access to `{nm}` which is not present on the device"
                    )));
                };
                if let Some(slot) = self.dev_bufs.get_mut(name as usize) {
                    *slot = Some(b);
                }
                b
            }
        };
        let dims = &self
            .world
            .mem
            .get(buf)
            .map_err(|e| Abort::Crash(e.to_string()))?
            .dims;
        let flat = if dims.is_empty() {
            // Raw acc_malloc buffer: single linear index.
            if vals.len() != 1 || vals[0] < 0 {
                return Err(Abort::Crash(format!("bad linear index on `{nm}`")));
            }
            vals[0] as usize
        } else {
            crate::exec::flatten(nm, vals, dims)?
        };
        Ok((buf, flat))
    }

    /// The VM side of `exec_collapsed_loop`: run the iterations of the
    /// lowered nest selected by `unit` at collapse depth `collapse_n`.
    /// Selection is by stride (`r, r+m, r+2m, …`) — identical to the
    /// walker's ascending full scan filtered by `unit.selects`.
    pub(crate) fn vm_nest_collapsed(
        &mut self,
        nest: &'a DevLoopNest,
        collapse_n: usize,
        unit: UnitSel,
        ctx: &mut DevCtx,
    ) -> Exec<()> {
        if collapse_n > nest.loops.len() {
            return Err(Abort::Crash("collapse requires tightly nested loops".into()));
        }
        self.reset_dev_bufs();
        // Bounds once, in loop order (rectangular iteration space);
        // per-loop step check interleaved exactly like the walker.
        let mut bounds = Vec::with_capacity(collapse_n);
        for lp in &nest.loops[..collapse_n] {
            let from = self.eval_device(&lp.from, ctx)?.as_int().map_err(crash)?;
            let to = self.eval_device(&lp.to, ctx)?.as_int().map_err(crash)?;
            let step = self.eval_device(&lp.step, ctx)?.as_int().map_err(crash)?;
            if step <= 0 {
                return Err(Abort::Crash(format!(
                    "loop step must be positive, got {step}"
                )));
            }
            let count = if to > from {
                ((to - from) + step - 1) / step
            } else {
                0
            };
            bounds.push((from, step, count as u64));
        }
        let mut var_slots = Vec::with_capacity(collapse_n);
        for lp in &nest.loops[..collapse_n] {
            var_slots.push(lp.slot.ok_or_else(|| unresolved(&lp.name))? as usize);
        }
        let total: u64 = bounds.iter().map(|b| b.2).product();
        let chunk = nest.bodies[collapse_n - 1];
        let (start, stride) = match unit {
            UnitSel::All => (0, 1),
            UnitSel::Modulo { m, r } => {
                if m <= 1 {
                    (0, 1)
                } else {
                    (r, m)
                }
            }
        };
        let mut regs = self.take_regs(chunk.regs);
        let mut idxs = vec![0i64; collapse_n];
        let mut result = Ok(());
        let mut flat = start;
        while flat < total {
            // Row-major decomposition of the flat index.
            let mut rem = flat;
            for d in (0..collapse_n).rev() {
                let c = bounds[d].2.max(1);
                idxs[d] = bounds[d].0 + ((rem % c) as i64) * bounds[d].1;
                rem /= c;
            }
            for (slot, iv) in var_slots.iter().zip(&idxs) {
                ctx.set_local(*slot, Value::Int(*iv));
            }
            self.world.metrics.device_iterations += 1;
            // Flow is discarded (Return cannot escape device bodies),
            // matching `exec_collapsed_loop`.
            if let Err(e) = self.vm_dev_loop(chunk, &mut regs, ctx) {
                result = Err(e);
                break;
            }
            flat += stride;
        }
        self.reg_pool.push(regs);
        result
    }
}

/// Extract up to 8 integer index values from consecutive registers (every
/// index register was produced by `AsInt`, so these are `Value::Int`).
#[inline]
fn int_block(regs: &[Value], idx: u32, n: u8) -> [i64; 8] {
    let mut vals = [0i64; 8];
    for k in 0..n as usize {
        if let Value::Int(i) = regs[idx as usize + k] {
            vals[k] = i;
        }
    }
    vals
}
