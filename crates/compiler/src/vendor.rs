//! Simulated vendor compiler product lines.
//!
//! §II of the paper documents how the three vendors legitimately differ in
//! their gang/worker/vector hardware mappings; §V-A evaluates eight released
//! versions of each. A [`VendorCompiler`] pairs a vendor's legitimate
//! implementation choices with the defects its version carries in the
//! [`crate::bugs::BugCatalog`].

use acc_device::{ExecProfile, TranslationTarget, WorkerLoopPolicy};
use acc_spec::version::CompilerVersion;
use acc_spec::{DeviceType, Language, SpecVersion, VendorMapping};
use std::fmt;
use std::sync::Arc;

use crate::bugs::BugCatalog;
use crate::cache::CompileCache;
use crate::driver::{
    compile_with_profile, finish_compile, frontend_compile, CompileFailure, Executable,
};

/// A compiler product line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VendorId {
    /// CAPS Enterprise HMPP-based OpenACC compiler.
    Caps,
    /// PGI Accelerator OpenACC compiler.
    Pgi,
    /// Cray CCE OpenACC compiler.
    Cray,
    /// The defect-free reference implementation the validation suite itself
    /// uses to compute expected results.
    Reference,
}

impl VendorId {
    /// The three commercial vendors the paper evaluates.
    pub const COMMERCIAL: [VendorId; 3] = [VendorId::Caps, VendorId::Pgi, VendorId::Cray];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            VendorId::Caps => "CAPS",
            VendorId::Pgi => "PGI",
            VendorId::Cray => "Cray",
            VendorId::Reference => "Reference",
        }
    }

    /// The eight released versions the paper evaluates (Fig. 8 / Table I),
    /// oldest first.
    pub fn versions(self) -> Vec<CompilerVersion> {
        let strs: &[&str] = match self {
            VendorId::Caps => &[
                "3.0.7", "3.0.8", "3.1.0", "3.2.3", "3.2.4", "3.3.0", "3.3.3", "3.3.4",
            ],
            VendorId::Pgi => &[
                "12.6", "12.8", "12.9", "12.10", "13.2", "13.4", "13.6", "13.8",
            ],
            VendorId::Cray => &[
                "8.1.2", "8.1.3", "8.1.4", "8.1.5", "8.1.6", "8.1.7", "8.1.8", "8.2.0",
            ],
            VendorId::Reference => &["1.0.0"],
        };
        strs.iter()
            .map(|s| s.parse().expect("static version"))
            .collect()
    }

    /// Index of a version within [`versions`](Self::versions), if released.
    pub fn version_index(self, v: CompilerVersion) -> Option<usize> {
        self.versions().iter().position(|x| *x == v)
    }

    /// The newest released version.
    pub fn latest(self) -> CompilerVersion {
        *self.versions().last().expect("nonempty version line")
    }

    /// The vendor's gang/worker/vector mapping (§II).
    pub fn mapping(self) -> VendorMapping {
        match self {
            VendorId::Caps => VendorMapping::CAPS_STYLE,
            VendorId::Pgi | VendorId::Reference => VendorMapping::PGI_STYLE,
            VendorId::Cray => VendorMapping::CRAY_STYLE,
        }
    }

    /// The vendor's resolution of the Fig. 1 worker-without-gang ambiguity.
    pub fn worker_loop_policy(self) -> WorkerLoopPolicy {
        match self {
            VendorId::Caps => WorkerLoopPolicy::PerGangWorkers,
            // PGI ignores the worker level entirely.
            VendorId::Pgi | VendorId::Reference => WorkerLoopPolicy::SequentialPerGang,
            // Cray's forward analysis spreads the loop across all gangs.
            VendorId::Cray => WorkerLoopPolicy::SpreadAcrossGangs,
        }
    }

    /// The implementation-defined concrete device type (§V-C): what
    /// `acc_get_device_type` reports after selecting `acc_device_not_host`.
    pub fn concrete_device(self) -> DeviceType {
        match self {
            VendorId::Caps => DeviceType::Cuda,
            VendorId::Pgi => DeviceType::Nvidia,
            VendorId::Cray => DeviceType::Nvidia,
            VendorId::Reference => DeviceType::Nvidia,
        }
    }
}

impl fmt::Display for VendorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One vendor compiler at one released version for one target stack.
#[derive(Debug, Clone)]
pub struct VendorCompiler {
    /// Product line.
    pub vendor: VendorId,
    /// Release version.
    pub version: CompilerVersion,
    /// Software stack the node translates through.
    pub target: TranslationTarget,
    /// Extra defects injected on top of the catalog — used by the Titan
    /// harness to model faulty node software stacks.
    pub extra_defects: Vec<acc_device::Defect>,
    catalog: BugCatalog,
    cache: Option<Arc<CompileCache>>,
}

impl VendorCompiler {
    /// A vendor compiler at a specific released version.
    ///
    /// Panics if the version was never released by the vendor (the paper
    /// only evaluates shipped releases).
    pub fn new(vendor: VendorId, version: CompilerVersion) -> Self {
        assert!(
            vendor.version_index(version).is_some(),
            "{vendor} never released {version}"
        );
        VendorCompiler {
            vendor,
            version,
            target: TranslationTarget::Cuda,
            extra_defects: Vec::new(),
            catalog: BugCatalog::paper(),
            cache: None,
        }
    }

    /// The latest release of a vendor.
    pub fn latest(vendor: VendorId) -> Self {
        VendorCompiler::new(vendor, vendor.latest())
    }

    /// The defect-free reference compiler.
    pub fn reference() -> Self {
        VendorCompiler::new(VendorId::Reference, VendorId::Reference.latest())
    }

    /// Select the translation stack (Titan harness, Fig. 13).
    pub fn with_target(mut self, target: TranslationTarget) -> Self {
        self.target = target;
        self
    }

    /// Inject an extra defect on top of the catalog (a faulty node stack in
    /// the Titan harness).
    pub fn with_extra_defect(mut self, d: acc_device::Defect) -> Self {
        self.extra_defects.push(d);
        self
    }

    /// Attach a shared compilation cache: [`compile_shared`]
    /// (Self::compile_shared) will memoise front-end work and lowered
    /// executables in it.
    pub fn with_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached compilation cache, if any.
    pub fn cache(&self) -> Option<&Arc<CompileCache>> {
        self.cache.as_ref()
    }

    /// Human-readable label ("PGI 13.4").
    pub fn label(&self) -> String {
        format!("{} {}", self.vendor.name(), self.version)
    }

    /// Build the execution profile for this release and language: the
    /// vendor's legitimate choices plus the catalog's active defects.
    pub fn profile(&self, language: Language) -> ExecProfile {
        let mut p = ExecProfile::conforming(
            format!("{} ({language})", self.label()),
            self.vendor.mapping(),
        );
        p.worker_loop_policy = self.vendor.worker_loop_policy();
        p.target = self.target;
        for bug in self.catalog.active(self.vendor, self.version, language) {
            p.inject(bug.defect.clone());
        }
        for d in &self.extra_defects {
            p.inject(d.clone());
        }
        p
    }

    /// Compile source text. Mirrors the real pipeline: front-end →
    /// conformance checks → vendor-specific internal errors → executable
    /// carrying the injected wrong-code defects.
    pub fn compile(&self, source: &str, language: Language) -> Result<Executable, CompileFailure> {
        compile_with_profile(
            source,
            language,
            self.profile(language),
            self.vendor.concrete_device(),
        )
    }

    /// The cache key prefix that uniquely determines this compiler's
    /// behaviour for a given language: vendor, version, translation target,
    /// extra defects, language, and spec version. The bug catalog is always
    /// [`BugCatalog::paper`], so these fields fully determine the profile.
    pub fn fingerprint(&self, language: Language) -> String {
        format!(
            "{:?}|{}|{:?}|{:?}|{:?}|{:?}",
            self.vendor,
            self.version,
            self.target,
            self.extra_defects,
            language,
            SpecVersion::V1_0,
        )
    }

    /// Compile through the attached [`CompileCache`], sharing the result.
    ///
    /// With a cache, the front half (parse/sema/resolve) is reused across
    /// *all* vendors and versions that see the same source, and the full
    /// executable is reused whenever this exact profile sees it again
    /// (cross-test repetitions, retries, the other tests of a campaign).
    /// Without a cache this is plain [`compile`](Self::compile) behind an
    /// `Arc` — identical results either way.
    pub fn compile_shared(
        &self,
        source: &str,
        language: Language,
    ) -> Result<Arc<Executable>, CompileFailure> {
        match &self.cache {
            None => self.compile(source, language).map(Arc::new),
            Some(cache) => cache.executable(&self.fingerprint(language), source, || {
                let (program, resolved) =
                    cache.frontend(source, language, SpecVersion::V1_0, || {
                        frontend_compile(source, language)
                    })?;
                finish_compile(
                    program,
                    resolved,
                    self.profile(language),
                    self.vendor.concrete_device(),
                )
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_lines_have_eight_releases() {
        for v in VendorId::COMMERCIAL {
            assert_eq!(v.versions().len(), 8, "{v}");
        }
    }

    #[test]
    fn version_index_lookup() {
        let v: CompilerVersion = "13.2".parse().unwrap();
        assert_eq!(VendorId::Pgi.version_index(v), Some(4));
        let never: CompilerVersion = "99.9".parse().unwrap();
        assert_eq!(VendorId::Pgi.version_index(never), None);
    }

    #[test]
    #[should_panic(expected = "never released")]
    fn unreleased_version_panics() {
        VendorCompiler::new(VendorId::Caps, "9.9.9".parse().unwrap());
    }

    #[test]
    fn reference_profile_is_defect_free() {
        let c = VendorCompiler::reference();
        for lang in Language::ALL {
            assert_eq!(c.profile(lang).defect_count(), 0, "{lang}");
        }
    }

    #[test]
    fn vendor_mappings_differ() {
        assert!(VendorId::Pgi
            .mapping()
            .honors(acc_spec::ParallelismLevel::Gang));
        assert!(!VendorId::Pgi
            .mapping()
            .honors(acc_spec::ParallelismLevel::Worker));
        assert!(VendorId::Caps
            .mapping()
            .honors(acc_spec::ParallelismLevel::Worker));
        assert!(VendorId::Cray
            .mapping()
            .honors(acc_spec::ParallelismLevel::Vector));
    }

    #[test]
    fn labels() {
        let c = VendorCompiler::new(VendorId::Pgi, "13.8".parse().unwrap());
        assert_eq!(c.label(), "PGI 13.8");
    }

    #[test]
    fn latest_versions() {
        assert_eq!(VendorId::Caps.latest().to_string(), "3.3.4");
        assert_eq!(VendorId::Pgi.latest().to_string(), "13.8");
        assert_eq!(VendorId::Cray.latest().to_string(), "8.2.0");
    }

    #[test]
    fn reference_compiles_and_runs_fig2() {
        let c = VendorCompiler::reference();
        let src = "int main(void) {\n    int error = 0;\n    int A[100];\n    for (i = 0; i < 100; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(10) copy(A[0:100])\n    {\n        #pragma acc loop\n        for (i = 0; i < 100; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    for (i = 0; i < 100; i++)\n    {\n        if (A[i] != 1)\n        {\n            error = error + 1;\n        }\n    }\n    return error == 0;\n}\n";
        let exe = c.compile(src, Language::C).unwrap();
        let result = exe.run();
        assert!(result.outcome.passed(), "{:?}", result.outcome);
        assert!(result.metrics.kernels_launched >= 1);
    }

    #[test]
    fn cross_test_signal_without_loop_directive() {
        // Fig. 2(b): removing the loop directive makes every gang run the
        // whole loop — each element is incremented 10 times.
        let c = VendorCompiler::reference();
        let src = "int main(void) {\n    int error = 0;\n    int A[100];\n    for (i = 0; i < 100; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(10) copy(A[0:100])\n    {\n        for (i = 0; i < 100; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    for (i = 0; i < 100; i++)\n    {\n        if (A[i] != 10)\n        {\n            error = error + 1;\n        }\n    }\n    return error == 0;\n}\n";
        let exe = c.compile(src, Language::C).unwrap();
        let result = exe.run();
        assert!(
            result.outcome.passed(),
            "redundant execution must increment 10x: {:?}",
            result.outcome
        );
    }
}
