//! The bug catalog: every defect the validation campaign discovers in the
//! simulated vendor compilers, with the version range each was present in.
//!
//! The catalog is constructed from the paper's evaluation: the named
//! analyses of §V-B (CAPS variable sizing expressions, the PGI asynchronous
//! cluster, Cray scalar `copy` and dead-region elimination, the CAPS 3.1.x
//! `declare` gap), expanded with per-feature attribution so that the number
//! of active records per vendor/version/language equals the paper's
//! **Table I** exactly — verified by `table1_counts_match_the_paper` below.
//! Fig. 8's pass-rate curves are *not* encoded here; they emerge from
//! running the testsuite against compilers carrying these defects.
//!
//! Activity is stored as an explicit per-release bitmask (index into the
//! vendor's eight-version line) because real product lines are not
//! monotone: CAPS 3.0.8 introduced a large Fortran front-end regression
//! (Table I: 70 Fortran bugs versus 32 in 3.0.7) and PGI 13.2's
//! multi-target reorganization traded one fixed bug for a new one.

use acc_device::Defect;
use acc_spec::version::CompilerVersion;
use acc_spec::{ClauseKind, DirectiveKind, FeatureId, Language, ReductionOp, RuntimeRoutine};

use crate::vendor::VendorId;

/// One catalogued defect in one vendor's product line for one language.
#[derive(Debug, Clone)]
pub struct BugRecord {
    /// Stable identifier, e.g. `"caps-c-0007"`.
    pub id: String,
    /// Product line.
    pub vendor: VendorId,
    /// Affected base language front-end.
    pub language: Language,
    /// The feature whose test discovers the bug.
    pub feature: FeatureId,
    /// The injected misbehaviour.
    pub defect: Defect,
    /// One-line description for bug reports.
    pub description: String,
    /// Activity per release (index into `vendor.versions()`).
    pub active: [bool; 8],
}

impl BugRecord {
    /// Is the record active in the given release?
    pub fn active_in(&self, vendor: VendorId, version: CompilerVersion) -> bool {
        self.vendor == vendor
            && vendor
                .version_index(version)
                .map(|i| self.active[i])
                .unwrap_or(false)
    }
}

/// The full catalog.
#[derive(Debug, Clone)]
pub struct BugCatalog {
    records: Vec<BugRecord>,
}

/// Activity helper: releases `lo..=hi` (inclusive indices) active.
fn span(lo: usize, hi: usize) -> [bool; 8] {
    let mut a = [false; 8];
    for (i, slot) in a.iter_mut().enumerate() {
        *slot = i >= lo && i <= hi;
    }
    a
}

impl BugCatalog {
    /// An empty catalog.
    pub fn empty() -> Self {
        BugCatalog {
            records: Vec::new(),
        }
    }

    /// All records.
    pub fn records(&self) -> &[BugRecord] {
        &self.records
    }

    /// Records active for a vendor release and language.
    pub fn active(
        &self,
        vendor: VendorId,
        version: CompilerVersion,
        language: Language,
    ) -> Vec<&BugRecord> {
        self.records
            .iter()
            .filter(|r| r.language == language && r.active_in(vendor, version))
            .collect()
    }

    /// Count of active records (the paper's Table I cells).
    pub fn count(&self, vendor: VendorId, version: CompilerVersion, language: Language) -> usize {
        self.active(vendor, version, language).len()
    }

    /// Look up a record by id.
    pub fn get(&self, id: &str) -> Option<&BugRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    fn push(
        &mut self,
        vendor: VendorId,
        language: Language,
        feature: &str,
        defect: Defect,
        active: [bool; 8],
        description: &str,
    ) {
        let seq = self
            .records
            .iter()
            .filter(|r| r.vendor == vendor && r.language == language)
            .count()
            + 1;
        let lang = match language {
            Language::C => "c",
            Language::Fortran => "f",
        };
        self.records.push(BugRecord {
            id: format!("{}-{}-{:04}", vendor.name().to_lowercase(), lang, seq),
            vendor,
            language,
            feature: FeatureId::from(feature),
            defect,
            description: description.to_string(),
            active,
        });
    }

    /// The catalog reproducing the paper's Table I.
    pub fn paper() -> Self {
        let mut c = BugCatalog::empty();
        c.populate_caps();
        c.populate_pgi();
        c.populate_cray();
        c
    }

    // ------------------------------------------------------------------
    // CAPS: 3.0.7, 3.0.8, 3.1.0, 3.2.3, 3.2.4, 3.3.0, 3.3.3, 3.3.4
    //   C: 36, 24, 20, 1, 1, 1, 0, 0
    //   F: 32, 70, 15, 1, 1, 0, 0, 0
    // ------------------------------------------------------------------

    fn populate_caps(&mut self) {
        use Defect::*;
        let v = VendorId::Caps;

        // --- Shared early-era defects (both languages, eras differ). -----
        // 12 defects fixed right after 3.0.7 in both front-ends.
        let g1: &[(&str, Defect, &str)] = &[
            (
                "data.copyout",
                IgnoreClause(DirectiveKind::Data, ClauseKind::Copyout),
                "copyout on data construct performs no device-to-host transfer",
            ),
            (
                "data.create",
                IgnoreClause(DirectiveKind::Data, ClauseKind::Create),
                "create on data construct silently ignored; data treated as implicitly mapped",
            ),
            (
                "data.present_or_copyin",
                IgnoreClause(DirectiveKind::Data, ClauseKind::PresentOrCopyin),
                "pcopyin falls back to full copy semantics",
            ),
            (
                "data.present_or_copyout",
                IgnoreClause(DirectiveKind::Data, ClauseKind::PresentOrCopyout),
                "pcopyout silently ignored",
            ),
            (
                "data.present_or_create",
                IgnoreClause(DirectiveKind::Data, ClauseKind::PresentOrCreate),
                "pcreate silently ignored",
            ),
            (
                "kernels.present_or_copy",
                IgnoreClause(DirectiveKind::Kernels, ClauseKind::PresentOrCopy),
                "pcopy on kernels silently ignored",
            ),
            (
                "kernels.present_or_copyin",
                IgnoreClause(DirectiveKind::Kernels, ClauseKind::PresentOrCopyin),
                "pcopyin on kernels silently ignored",
            ),
            (
                "kernels.present_or_copyout",
                IgnoreClause(DirectiveKind::Kernels, ClauseKind::PresentOrCopyout),
                "pcopyout on kernels silently ignored",
            ),
            (
                "kernels.present_or_create",
                IgnoreClause(DirectiveKind::Kernels, ClauseKind::PresentOrCreate),
                "pcreate on kernels silently ignored",
            ),
            (
                "loop.reduction.land.int",
                WrongReduction(ReductionOp::LogicalAnd),
                "logical-and reduction drops the first gang's contribution",
            ),
            (
                "loop.reduction.lor.int",
                WrongReduction(ReductionOp::LogicalOr),
                "logical-or reduction drops the first gang's contribution",
            ),
            (
                "rt.acc_on_device",
                RoutineReturnsConstant(RuntimeRoutine::OnDevice, 0),
                "acc_on_device always reports host execution",
            ),
        ];
        // 8 defects fixed in 3.1.0 (present 3.0.7–3.0.8), §V-B headline
        // RejectVariableSizingExpr among them.
        let g2: &[(&str, Defect, &str)] = &[
            (
                "parallel.num_gangs",
                RejectVariableSizingExpr,
                "only constant expressions accepted in num_gangs/num_workers/vector_length (§V-B)",
            ),
            (
                "parallel.vector_length",
                CompileError(DirectiveKind::Parallel, Some(ClauseKind::VectorLength)),
                "vector_length on parallel rejected with an internal error",
            ),
            (
                "rt.acc_get_device_num",
                RoutineReturnsConstant(RuntimeRoutine::GetDeviceNum, -1),
                "acc_get_device_num returns -1",
            ),
            (
                "rt.acc_get_num_devices",
                RoutineReturnsConstant(RuntimeRoutine::GetNumDevices, 0),
                "acc_get_num_devices always reports zero devices",
            ),
            (
                "kernels.async",
                CompileError(DirectiveKind::Kernels, Some(ClauseKind::Async)),
                "async on kernels rejected with an internal error",
            ),
            (
                "loop.seq",
                IgnoreClause(DirectiveKind::Loop, ClauseKind::Seq),
                "seq clause ignored; the loop is partitioned anyway",
            ),
            (
                "parallel.async",
                HangOnClause(DirectiveKind::Parallel, ClauseKind::Async),
                "async parallel regions never signal completion (hang)",
            ),
            (
                "rt.acc_async_test_all",
                RoutineReturnsConstant(RuntimeRoutine::AsyncTestAll, -1),
                "acc_async_test_all returns its argument register unchanged",
            ),
            (
                "rt.acc_get_device_type",
                RoutineReturnsConstant(RuntimeRoutine::GetDeviceType, 0),
                "acc_get_device_type returns acc_device_none",
            ),
        ];
        // 10 defects surviving through 3.1.0 (fixed in 3.2.3), including the
        // declare gap the paper blames for the 3.1.x pass-rate dip.
        let g3: &[(&str, Defect, &str)] = &[
            (
                "declare.create",
                CompileError(DirectiveKind::Declare, None),
                "declare directives unimplemented (the 3.1.x pass-rate dip, §V-A)",
            ),
            (
                "declare.device_resident",
                CompileError(DirectiveKind::Declare, Some(ClauseKind::DeviceResident)),
                "device_resident on declare unimplemented",
            ),
            (
                "parallel.copyout",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::Copyout),
                "copyout on parallel silently ignored",
            ),
            (
                "parallel.create",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::Create),
                "create on parallel silently ignored",
            ),
            (
                "parallel.present_or_copyin",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::PresentOrCopyin),
                "pcopyin on parallel silently ignored",
            ),
            (
                "parallel.present_or_copyout",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::PresentOrCopyout),
                "pcopyout on parallel silently ignored",
            ),
            (
                "parallel.present_or_create",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::PresentOrCreate),
                "pcreate on parallel silently ignored",
            ),
            (
                "update.host",
                UpdateNoop,
                "update directives perform no transfers",
            ),
            (
                "parallel.firstprivate",
                FirstprivateUninitialized,
                "firstprivate copies are not initialized from the host value",
            ),
            (
                "parallel.private",
                PrivateAliasesShared,
                "private variables share one device copy across gangs",
            ),
        ];
        // C-only extras to reach the Table I C column: fixed in 3.2.3.
        let g3c: &[(&str, Defect, &str)] = &[
            (
                "loop.reduction.mul.int",
                WrongReduction(ReductionOp::Mul),
                "multiply reduction drops the first gang's contribution",
            ),
            (
                "loop.reduction.max.int",
                WrongReduction(ReductionOp::Max),
                "max reduction drops the first gang's contribution",
            ),
            (
                "loop.reduction.min.int",
                WrongReduction(ReductionOp::Min),
                "min reduction drops the first gang's contribution",
            ),
            (
                "update.device",
                IgnoreClause(DirectiveKind::Update, ClauseKind::DeviceClause),
                "update device performs no transfer",
            ),
            (
                "loop.collapse",
                CompileError(DirectiveKind::Loop, Some(ClauseKind::Collapse)),
                "collapse rejected with an internal error",
            ),
            (
                "loop.worker",
                IgnoreClause(DirectiveKind::Loop, ClauseKind::Worker),
                "worker clause ignored; the loop is gang-partitioned",
            ),
            (
                "data.copy_scalar",
                IgnoreClause(DirectiveKind::Data, ClauseKind::Copy),
                "copy on data construct silently ignored",
            ),
            (
                "host_data.use_device",
                IgnoreClause(DirectiveKind::HostData, ClauseKind::UseDevice),
                "use_device yields the host address",
            ),
            (
                "rt.acc_malloc",
                RejectRoutine(RuntimeRoutine::Malloc),
                "acc_malloc missing from the runtime library (link error)",
            ),
        ];

        for lang in [Language::C, Language::Fortran] {
            for (f, d, desc) in g1 {
                self.push(v, lang, f, d.clone(), span(0, 0), desc);
            }
            // g2 defines 9 entries; C uses the first 4 + 4 more below per the
            // column arithmetic, Fortran uses all 9 (3.0.8 column is larger).
            let g2_take = if lang == Language::C { 4 } else { 9 };
            for (f, d, desc) in g2.iter().take(g2_take) {
                self.push(v, lang, f, d.clone(), span(0, 1), desc);
            }
            for (f, d, desc) in g3 {
                self.push(v, lang, f, d.clone(), span(0, 2), desc);
            }
            // The persistent straggler: bitwise-xor reduction wrong-code,
            // last C fix in 3.3.3 (Table I: C column keeps a 1 through
            // 3.3.0; the Fortran front-end fixed it one release earlier).
            let hi = if lang == Language::C { 5 } else { 4 };
            self.push(
                v,
                lang,
                "loop.reduction.bxor.int",
                WrongReduction(ReductionOp::BitXor),
                span(0, hi),
                "bitwise-xor reduction drops the first gang's contribution",
            );
        }
        // C column filler to 36/24/20: nine C-only records in the 3.2.3-fix
        // era.
        for (f, d, desc) in g3c {
            self.push(VendorId::Caps, Language::C, f, d.clone(), span(0, 2), desc);
        }

        // --- The 3.0.8 Fortran front-end regression (Table I: 70). -------
        // 46 regressions present only in 3.0.8; 4 more survived into 3.1.0.
        let mut fortran_regressions: Vec<(String, Defect, String)> = Vec::new();
        for (dir, clauses) in [
            (
                DirectiveKind::Parallel,
                vec![
                    ClauseKind::Copy,
                    ClauseKind::Copyin,
                    ClauseKind::Present,
                    ClauseKind::If,
                    ClauseKind::Reduction,
                ],
            ),
            (
                DirectiveKind::Kernels,
                vec![
                    ClauseKind::Copy,
                    ClauseKind::Copyin,
                    ClauseKind::Copyout,
                    ClauseKind::Create,
                    ClauseKind::Present,
                ],
            ),
            (
                DirectiveKind::Data,
                vec![
                    ClauseKind::Copy,
                    ClauseKind::Copyin,
                    ClauseKind::Copyout,
                    ClauseKind::Create,
                    ClauseKind::Present,
                    ClauseKind::If,
                ],
            ),
        ] {
            for cl in clauses {
                let feature = format!("{}.{}", dir.name().replace(' ', "_"), cl.name());
                fortran_regressions.push((
                    feature,
                    Defect::CompileError(dir, Some(cl)),
                    format!(
                        "3.0.8 Fortran front-end regression: `{}` on `{}` rejected",
                        cl.name(),
                        dir.name()
                    ),
                ));
            }
        }
        fortran_regressions.push((
            "loop".to_string(),
            Defect::IgnoreDirective(DirectiveKind::Loop),
            "3.0.8 Fortran front-end regression: loop directives silently dropped".to_string(),
        ));
        for (feature, cl) in [
            ("loop.gang", ClauseKind::Gang),
            ("loop.vector", ClauseKind::Vector),
            ("loop.independent", ClauseKind::Independent),
            ("loop.private", ClauseKind::Private),
        ] {
            fortran_regressions.push((
                feature.to_string(),
                Defect::CompileError(DirectiveKind::Loop, Some(cl)),
                "3.0.8 Fortran front-end regression: loop scheduling rejected".to_string(),
            ));
        }
        // All 21 reduction variants miscompiled by the regressed front-end.
        for op in ReductionOp::ALL {
            let tys: &[&str] = if op.integer_only() {
                &["int"]
            } else {
                &["int", "float", "double"]
            };
            for ty in tys {
                fortran_regressions.push((
                    format!("loop.reduction.{}.{}", op.ident(), ty),
                    Defect::WrongReduction(op),
                    format!(
                        "3.0.8 Fortran front-end regression: `{}` reduction miscompiled",
                        op.c_symbol()
                    ),
                ));
            }
        }
        fortran_regressions.push((
            "update.if".into(),
            Defect::IgnoreClause(DirectiveKind::Update, ClauseKind::If),
            "3.0.8 Fortran front-end regression: if clause on update ignored".into(),
        ));
        fortran_regressions.push((
            "update.async".into(),
            Defect::IgnoreClause(DirectiveKind::Update, ClauseKind::Async),
            "3.0.8 Fortran front-end regression: async clause on update ignored".into(),
        ));
        fortran_regressions.push((
            "wait".into(),
            Defect::IgnoreDirective(DirectiveKind::Wait),
            "3.0.8 Fortran front-end regression: wait directive ignored".into(),
        ));
        fortran_regressions.push((
            "rt.acc_init".into(),
            Defect::RejectRoutine(RuntimeRoutine::Init),
            "3.0.8 Fortran runtime regression: acc_init missing (link error)".into(),
        ));
        assert_eq!(
            fortran_regressions.len(),
            46,
            "regression pool must stay at 46"
        );
        for (f, d, desc) in &fortran_regressions {
            self.push(v, Language::Fortran, f, d.clone(), span(1, 1), desc);
        }
        // Four regressions that survived into 3.1.0.
        let survivors: &[(&str, ReductionOp)] = &[
            ("loop.reduction.add.float", ReductionOp::Add),
            ("loop.reduction.mul.float", ReductionOp::Mul),
            ("loop.reduction.max.float", ReductionOp::Max),
            ("loop.reduction.min.float", ReductionOp::Min),
        ];
        for (f, op) in survivors {
            self.push(
                v,
                Language::Fortran,
                f,
                Defect::WrongReduction(*op),
                span(1, 2),
                "3.0.8 Fortran regression surviving into 3.1.0: float reduction miscompiled",
            );
        }
    }

    // ------------------------------------------------------------------
    // PGI: 12.6, 12.8, 12.9, 12.10, 13.2, 13.4, 13.6, 13.8
    //   C: 8, 8, 7, 6, 6, 5, 5, 5
    //   F: 14, 14, 14, 14, 14, 13, 13, 13
    // ------------------------------------------------------------------

    fn populate_pgi(&mut self) {
        use Defect::*;
        let v = VendorId::Pgi;
        // The persistent asynchronous cluster (§V-B, Fig. 10): present in
        // every evaluated release of both front-ends.
        let async_cluster: &[&str] = &[
            "parallel.async",
            "kernels.async",
            "rt.acc_async_test",
            "rt.acc_async_wait",
            "rt.acc_async_test_all",
        ];
        for lang in [Language::C, Language::Fortran] {
            for f in async_cluster {
                self.push(
                    v,
                    lang,
                    f,
                    AsyncFamilyBroken,
                    span(0, 7),
                    "asynchronous activities never observed complete; \
                     acc_async_test keeps returning the initial value (-1, Fig. 10)",
                );
            }
        }
        // C-only shorter-lived defects matching the C column.
        self.push(
            v,
            Language::C,
            "rt.acc_get_num_devices",
            RoutineReturnsConstant(RuntimeRoutine::GetNumDevices, -1),
            span(0, 1),
            "acc_get_num_devices returns -1",
        );
        self.push(
            v,
            Language::C,
            "host_data.use_device",
            CompileError(DirectiveKind::HostData, Some(ClauseKind::UseDevice)),
            span(0, 2),
            "use_device rejected with an internal error",
        );
        self.push(
            v,
            Language::C,
            "parallel.firstprivate",
            FirstprivateUninitialized,
            span(0, 3),
            "firstprivate copies read uninitialized device memory",
        );
        self.push(
            v,
            Language::C,
            "update.host",
            IgnoreDirective(DirectiveKind::Update),
            span(4, 4),
            "13.2 multi-target reorganization regression: update directives dropped (§V-A)",
        );
        // Fortran-only persistent defects (the F column stays at 14/13).
        let f_persistent: &[(&str, Defect, &str)] = &[
            (
                "rt.acc_async_wait_all",
                AsyncFamilyBroken,
                "acc_async_wait_all never releases deferred results",
            ),
            (
                "update.async",
                AsyncFamilyBroken,
                "asynchronous update never completes",
            ),
            (
                "wait",
                AsyncFamilyBroken,
                "wait directive does not block on async activities",
            ),
            (
                "loop.private",
                PrivateAliasesShared,
                "loop private variables share one device copy",
            ),
            (
                "loop.reduction.band.int",
                WrongReduction(ReductionOp::BitAnd),
                "bitwise-and reduction drops the first gang's contribution",
            ),
            (
                "loop.reduction.bor.int",
                WrongReduction(ReductionOp::BitOr),
                "bitwise-or reduction drops the first gang's contribution",
            ),
            (
                "loop.collapse",
                CompileError(DirectiveKind::Loop, Some(ClauseKind::Collapse)),
                "collapse rejected by the Fortran front-end",
            ),
            (
                "declare.device_resident",
                CompileError(DirectiveKind::Declare, Some(ClauseKind::DeviceResident)),
                "device_resident unimplemented in the Fortran front-end",
            ),
        ];
        for (f, d, desc) in f_persistent {
            self.push(v, Language::Fortran, f, d.clone(), span(0, 7), desc);
        }
        self.push(
            v,
            Language::Fortran,
            "update.device",
            IgnoreClause(DirectiveKind::Update, ClauseKind::DeviceClause),
            span(0, 4),
            "update device performs no transfer (fixed in 13.4)",
        );
    }

    // ------------------------------------------------------------------
    // Cray: 8.1.2 … 8.2.0
    //   C: 16 across all releases
    //   F: 6, 6, 6, 6, 6, 5, 5, 5
    // ------------------------------------------------------------------

    fn populate_cray(&mut self) {
        use Defect::*;
        let v = VendorId::Cray;
        // Shared persistent defects (both languages).
        let shared: &[(&str, Defect, &str)] = &[
            (
                "data.copy_scalar",
                ScalarCopyOmitted,
                "scalar variables in copy clauses are not transferred back (§V-B)",
            ),
            (
                "data.copyout",
                EliminateDeadComputeRegions,
                "compute regions without arithmetic are eliminated including their \
              data movement (the Fig. 11 dummy-loop behaviour)",
            ),
            (
                "loop.reduction.land.int",
                WrongReduction(ReductionOp::LogicalAnd),
                "logical-and reduction drops the first gang's contribution",
            ),
            (
                "loop.reduction.lor.int",
                WrongReduction(ReductionOp::LogicalOr),
                "logical-or reduction drops the first gang's contribution",
            ),
            (
                "parallel.firstprivate",
                FirstprivateUninitialized,
                "firstprivate copies read uninitialized device memory",
            ),
        ];
        for lang in [Language::C, Language::Fortran] {
            for (f, d, desc) in shared {
                self.push(v, lang, f, d.clone(), span(0, 7), desc);
            }
        }
        // Fortran: one additional defect fixed in 8.1.7 (F column 6 → 5).
        self.push(
            v,
            Language::Fortran,
            "update.if",
            IgnoreClause(DirectiveKind::Update, ClauseKind::If),
            span(0, 4),
            "if clause on update ignored by the Fortran front-end (fixed in 8.1.7)",
        );
        // C: eleven more persistent defects — largely the device-pointer /
        // memory-routine cluster that has no Fortran binding in 1.0, which
        // is why Table I's Cray C column is so much larger than Fortran's.
        let c_only: &[(&str, Defect, &str)] = &[
            (
                "parallel.deviceptr",
                IgnoreClause(DirectiveKind::Parallel, ClauseKind::Deviceptr),
                "deviceptr on parallel treated as host data",
            ),
            (
                "kernels.deviceptr",
                IgnoreClause(DirectiveKind::Kernels, ClauseKind::Deviceptr),
                "deviceptr on kernels treated as host data",
            ),
            (
                "data.deviceptr",
                IgnoreClause(DirectiveKind::Data, ClauseKind::Deviceptr),
                "deviceptr on data treated as host data",
            ),
            (
                "rt.acc_malloc",
                RejectRoutine(RuntimeRoutine::Malloc),
                "acc_malloc missing from the C runtime library",
            ),
            (
                "rt.acc_free",
                RejectRoutine(RuntimeRoutine::Free),
                "acc_free missing from the C runtime library",
            ),
            (
                "cache",
                CompileError(DirectiveKind::Cache, None),
                "cache directive rejected with an internal error",
            ),
            (
                "rt.acc_on_device",
                RoutineReturnsConstant(RuntimeRoutine::OnDevice, 1),
                "acc_on_device always claims device execution",
            ),
            (
                "rt.acc_get_num_devices",
                RoutineReturnsConstant(RuntimeRoutine::GetNumDevices, 99),
                "acc_get_num_devices returns an implausible count",
            ),
            (
                "loop.seq",
                IgnoreClause(DirectiveKind::Loop, ClauseKind::Seq),
                "seq clause ignored; the loop is partitioned anyway",
            ),
            (
                "parallel_loop.private",
                CompileError(DirectiveKind::ParallelLoop, Some(ClauseKind::Private)),
                "private on combined parallel loop rejected",
            ),
            (
                "update.if",
                IgnoreClause(DirectiveKind::Update, ClauseKind::If),
                "if clause on update ignored",
            ),
        ];
        for (f, d, desc) in c_only {
            self.push(v, Language::C, f, d.clone(), span(0, 7), desc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper, verbatim.
    const TABLE_I: &[(VendorId, Language, [usize; 8])] = &[
        (VendorId::Caps, Language::C, [36, 24, 20, 1, 1, 1, 0, 0]),
        (
            VendorId::Caps,
            Language::Fortran,
            [32, 70, 15, 1, 1, 0, 0, 0],
        ),
        (VendorId::Pgi, Language::C, [8, 8, 7, 6, 6, 5, 5, 5]),
        (
            VendorId::Pgi,
            Language::Fortran,
            [14, 14, 14, 14, 14, 13, 13, 13],
        ),
        (
            VendorId::Cray,
            Language::C,
            [16, 16, 16, 16, 16, 16, 16, 16],
        ),
        (VendorId::Cray, Language::Fortran, [6, 6, 6, 6, 6, 5, 5, 5]),
    ];

    #[test]
    fn table1_counts_match_the_paper() {
        let catalog = BugCatalog::paper();
        for (vendor, lang, expected) in TABLE_I {
            let versions = vendor.versions();
            for (i, version) in versions.iter().enumerate() {
                assert_eq!(
                    catalog.count(*vendor, *version, *lang),
                    expected[i],
                    "{vendor} {version} ({lang})"
                );
            }
        }
    }

    #[test]
    fn record_ids_are_unique() {
        let catalog = BugCatalog::paper();
        let mut ids: Vec<_> = catalog.records().iter().map(|r| r.id.clone()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn caps_variable_sizing_bug_matches_paper_story() {
        // §V-B: "in CAPS compiler versions earlier to 3.1.0, only constant
        // expressions ... were supported, this bug was fixed in the later
        // versions".
        let catalog = BugCatalog::paper();
        let rec = catalog
            .records()
            .iter()
            .find(|r| {
                r.vendor == VendorId::Caps
                    && r.language == Language::C
                    && r.defect == Defect::RejectVariableSizingExpr
            })
            .expect("the headline CAPS bug must be catalogued");
        let idx = |s: &str| VendorId::Caps.version_index(s.parse().unwrap()).unwrap();
        assert!(rec.active[idx("3.0.7")]);
        assert!(rec.active[idx("3.0.8")]);
        assert!(!rec.active[idx("3.1.0")]);
    }

    #[test]
    fn pgi_async_cluster_persists_to_latest() {
        let catalog = BugCatalog::paper();
        let latest = VendorId::Pgi.latest();
        let active = catalog.active(VendorId::Pgi, latest, Language::C);
        assert!(
            active.iter().all(|r| r.defect == Defect::AsyncFamilyBroken),
            "every remaining PGI C bug at 13.8 is in the async cluster (§V-A)"
        );
        assert_eq!(active.len(), 5);
    }

    #[test]
    fn cray_counts_are_flat_in_c() {
        let catalog = BugCatalog::paper();
        let counts: Vec<usize> = VendorId::Cray
            .versions()
            .iter()
            .map(|v| catalog.count(VendorId::Cray, *v, Language::C))
            .collect();
        assert!(counts.iter().all(|c| *c == 16), "{counts:?}");
    }

    #[test]
    fn fortran_records_never_reference_c_only_features() {
        let catalog = BugCatalog::paper();
        const C_ONLY: &[&str] = &[
            "parallel.deviceptr",
            "kernels.deviceptr",
            "data.deviceptr",
            "host_data.use_device",
            "rt.acc_malloc",
            "rt.acc_free",
        ];
        for r in catalog.records() {
            if r.language == Language::Fortran {
                assert!(
                    !C_ONLY.contains(&r.feature.as_str()),
                    "{} references C-only feature {}",
                    r.id,
                    r.feature
                );
            }
        }
    }

    #[test]
    fn active_lookup_respects_version_and_language() {
        let catalog = BugCatalog::paper();
        let v307: CompilerVersion = "3.0.7".parse().unwrap();
        assert_eq!(catalog.count(VendorId::Caps, v307, Language::C), 36);
        // A PGI version is meaningless for CAPS.
        let pgi_v: CompilerVersion = "13.8".parse().unwrap();
        assert_eq!(catalog.count(VendorId::Caps, pgi_v, Language::C), 0);
        // Reference vendor has no bugs.
        assert_eq!(
            catalog.count(VendorId::Reference, "1.0.0".parse().unwrap(), Language::C),
            0
        );
    }

    #[test]
    fn get_by_id() {
        let catalog = BugCatalog::paper();
        let first = &catalog.records()[0];
        assert_eq!(catalog.get(&first.id).unwrap().id, first.id);
        assert!(catalog.get("nonexistent-id").is_none());
    }
}
