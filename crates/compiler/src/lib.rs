//! # acc-compiler — simulated vendor OpenACC compilers
//!
//! This crate stands in for the three commercial compiler product lines the
//! paper evaluates (CAPS, PGI, Cray) plus a defect-free reference
//! implementation. A [`vendor::VendorCompiler`] drives the real front-end
//! (`acc-frontend`), performs the specification conformance checks, applies
//! its version's entries from the [`bugs`] catalog — either as compile-time
//! rejections or as an [`acc_device::ExecProfile`] of injected wrong-code
//! defects — and produces an [`Executable`].
//!
//! The execution machine in [`exec`] then runs the executable against the simulated device:
//! it interprets host code, lowers compute regions per the vendor's
//! gang/worker/vector mapping, manages the present table for every data
//! clause, models asynchronous completion on the virtual clock, and
//! faithfully produces the paper's three runtime-error classes — wrong
//! results, crashes, and hangs (§V: "runtime errors include the generation
//! of an incorrect result; a code crash or if the code executes forever").
//!
//! The deterministic redundant-execution semantics (gangs run in sequence;
//! an unpartitioned loop in a 10-gang region increments every element ten
//! times) is exactly the signal the paper's cross tests rely on; see
//! DESIGN.md §4.

#![warn(missing_docs)]

mod arena;
pub mod bugs;
pub mod bytecode;
pub mod cache;
pub mod driver;
pub mod exec;
mod par;
pub mod vendor;
mod vm;

pub use bugs::{BugCatalog, BugRecord};
pub use bytecode::BytecodeProgram;
pub use cache::{CacheStats, CompileCache};
pub use driver::{CompileFailure, Executable};
pub use exec::{ExecMode, RunKnobs, RunOutcome, RunResult, VmProfile};
pub use vendor::{VendorCompiler, VendorId};
