//! The compile pipeline: source text → front-end → conformance checks →
//! defect application → executable.

use acc_ast::{Expr, Program};
use acc_device::{Defect, ExecProfile};
use acc_frontend::{sema, ResolvedProgram, Severity};
use acc_spec::{ClauseKind, DeviceType, DirectiveKind, Language, RuntimeRoutine, SpecVersion};
use std::fmt;
use std::sync::Arc;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The front-end rejected the source.
    ParseError,
    /// Specification conformance errors (illegal clause, undeclared
    /// variable, 2.0 syntax under 1.0, …).
    SemanticError,
    /// The vendor's implementation rejects a feature it has not implemented
    /// — the paper's "assertion violations or other internal compilation
    /// errors … if the user uses an OpenACC feature that is not yet
    /// supported" (§V).
    InternalError,
}

/// A compile-time failure with its messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileFailure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable messages.
    pub messages: Vec<String>,
}

impl fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FailureKind::ParseError => "parse error",
            FailureKind::SemanticError => "semantic error",
            FailureKind::InternalError => "internal compiler error",
        };
        write!(f, "{kind}: {}", self.messages.join("; "))
    }
}

impl std::error::Error for CompileFailure {}

/// A compiled test program: the parsed AST plus the behavioural profile the
/// machine will execute it under.
///
/// The AST and its resolved frame layouts are `Arc`-shared: when the
/// compilation cache serves the same source to several vendor versions, all
/// resulting executables point at one parse.
#[derive(Debug, Clone)]
pub struct Executable {
    /// The program.
    pub program: Arc<Program>,
    /// Frame slot layouts for every function (name → slot resolution done
    /// once at compile time; the interpreter indexes `Vec`-backed frames).
    pub resolved: Arc<ResolvedProgram>,
    /// Vendor behaviour (mapping, policies, injected defects).
    pub profile: ExecProfile,
    /// The implementation-defined concrete device type.
    pub concrete_device: DeviceType,
    /// The lowered bytecode image the VM engine executes (`Arc`-shared
    /// through the executable cache, so a cache hit skips lowering).
    pub code: Arc<crate::bytecode::BytecodeProgram>,
    /// Memoized run results, keyed by `(knobs, env)` — execution is a pure
    /// function of the executable plus those inputs, so repeated identical
    /// runs (the repetition loops of a campaign) can replay a cached
    /// [`RunResult`](crate::exec::RunResult). `Arc`-shared so clones (and
    /// executable-cache hits) share one memo. Only consulted when
    /// `RunKnobs::memo` is set; see [`Executable::run_with_knobs`].
    pub run_memo: Arc<std::sync::Mutex<std::collections::HashMap<String, crate::exec::RunResult>>>,
}

impl Executable {
    /// A stable textual disassembly of the lowered program (the
    /// `accvv disasm` output).
    pub fn disassemble(&self) -> String {
        self.code.disassemble()
    }

    /// Re-run bytecode lowering from the resolved AST (bench probe for
    /// isolating lowering cost; normal compiles lower once in
    /// [`finish_compile`]).
    pub fn lower_again(&self) -> crate::bytecode::BytecodeProgram {
        crate::bytecode::lower(&self.program, &self.resolved)
    }

    /// Lower without the superinstruction fusion pass — the raw opcode
    /// stream whose pair histogram drives fusion selection
    /// (`accvv disasm --hot` runs this image profiled).
    pub fn unfused(&self) -> Executable {
        let mut e = self.clone();
        e.code = Arc::new(crate::bytecode::lower_unfused(&self.program, &self.resolved));
        // A distinct image must not share the fused image's memo.
        e.run_memo = Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
        e
    }
}

/// The profile-independent front half of the pipeline: parse, specification
/// conformance, name resolution. Its result depends only on `(source,
/// language, spec version)` — this is the unit the compilation cache shares
/// across vendors and versions.
pub fn frontend_compile(
    source: &str,
    language: Language,
) -> Result<(Arc<Program>, Arc<ResolvedProgram>), CompileFailure> {
    // 1. Front-end.
    let program = acc_frontend::parse(source, language).map_err(|e| CompileFailure {
        kind: FailureKind::ParseError,
        messages: vec![e.to_string()],
    })?;
    // 2. Specification conformance.
    let diags = sema::analyze(&program, SpecVersion::V1_0);
    let errors: Vec<String> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Error)
        .map(|d| d.to_string())
        .collect();
    if !errors.is_empty() {
        return Err(CompileFailure {
            kind: FailureKind::SemanticError,
            messages: errors,
        });
    }
    // 3. Name resolution (frame slot assignment).
    let resolved = acc_frontend::resolve(&program);
    Ok((Arc::new(program), Arc::new(resolved)))
}

/// The profile-specific back half: apply the vendor release's compile-time
/// defects to an already-parsed program and produce the executable.
pub fn finish_compile(
    program: Arc<Program>,
    resolved: Arc<ResolvedProgram>,
    profile: ExecProfile,
    concrete_device: DeviceType,
) -> Result<Executable, CompileFailure> {
    let ice = compile_time_defects(&program, &profile);
    if !ice.is_empty() {
        return Err(CompileFailure {
            kind: FailureKind::InternalError,
            messages: ice,
        });
    }
    // Timing-class span: lowering only happens on an executable-cache miss,
    // and which worker takes the miss depends on schedule.
    acc_obs::begin_timing("lower", "bytecode", vec![]);
    let code = Arc::new(crate::bytecode::lower(&program, &resolved));
    acc_obs::end(vec![acc_obs::i("instrs", code.code.len() as i64)]);
    Ok(Executable {
        program,
        resolved,
        profile,
        concrete_device,
        code,
        run_memo: Arc::new(std::sync::Mutex::new(std::collections::HashMap::new())),
    })
}

/// Compile `source` under `profile` (already carrying the version's
/// defects). This is the shared back half of
/// [`crate::vendor::VendorCompiler::compile`]; it is public so tests and
/// tools can compile against hand-built profiles.
pub fn compile_with_profile(
    source: &str,
    language: Language,
    profile: ExecProfile,
    concrete_device: DeviceType,
) -> Result<Executable, CompileFailure> {
    let (program, resolved) = frontend_compile(source, language)?;
    finish_compile(program, resolved, profile, concrete_device)
}

/// Check the program against the profile's compile-time defects; returns the
/// internal-error messages triggered.
fn compile_time_defects(program: &Program, profile: &ExecProfile) -> Vec<String> {
    let mut msgs = Vec::new();
    for dir in program.directives() {
        // Whole-directive rejection.
        if profile.compile_error(dir.kind, None) {
            msgs.push(format!(
                "internal error: `{}` directive is not supported by this release",
                dir.kind.name()
            ));
        }
        for c in &dir.clauses {
            if profile.compile_error(dir.kind, Some(c.kind())) {
                msgs.push(format!(
                    "internal error: `{}` clause on `{}` is not supported by this release",
                    c.kind().name(),
                    dir.kind.name()
                ));
            }
        }
        // CAPS §V-B: variable expressions in sizing clauses rejected.
        if profile.has(&Defect::RejectVariableSizingExpr) {
            for c in &dir.clauses {
                let (kind, expr): (ClauseKind, &Expr) = match c {
                    acc_ast::AccClause::NumGangs(e) => (ClauseKind::NumGangs, e),
                    acc_ast::AccClause::NumWorkers(e) => (ClauseKind::NumWorkers, e),
                    acc_ast::AccClause::VectorLength(e) => (ClauseKind::VectorLength, e),
                    _ => continue,
                };
                if !expr.is_const() {
                    msgs.push(format!(
                        "internal error: `{}` requires a constant expression",
                        kind.name()
                    ));
                }
            }
        }
    }
    // Missing runtime routines (link failure).
    let mut called: Vec<RuntimeRoutine> = Vec::new();
    fn scan(e: &Expr, called: &mut Vec<RuntimeRoutine>) {
        e.visit(&mut |x| {
            if let Expr::Call { name, .. } = x {
                if let Some(r) = RuntimeRoutine::from_symbol(name) {
                    called.push(r);
                }
            }
        })
    }
    for f in &program.functions {
        for s in &f.body {
            s.visit(&mut |st| match st {
                acc_ast::Stmt::Call { name, args } => {
                    if let Some(r) = RuntimeRoutine::from_symbol(name) {
                        called.push(r);
                    }
                    for a in args {
                        scan(a, &mut called);
                    }
                }
                acc_ast::Stmt::Assign { value, .. } => scan(value, &mut called),
                acc_ast::Stmt::DeclScalar { init: Some(e), .. } => scan(e, &mut called),
                acc_ast::Stmt::Return(e) => scan(e, &mut called),
                acc_ast::Stmt::If { cond, .. } => scan(cond, &mut called),
                _ => {}
            });
        }
    }
    for r in called {
        if profile.has(&Defect::RejectRoutine(r)) {
            msgs.push(format!(
                "link error: undefined reference to `{}`",
                r.symbol()
            ));
        }
    }
    msgs.sort();
    msgs.dedup();
    msgs
}

/// Convenience for checking whether a program *uses* a feature pair —
/// shared by the bug catalog's applicability logic.
pub fn program_uses(program: &Program, dir: DirectiveKind, clause: Option<ClauseKind>) -> bool {
    program.directives().iter().any(|d| {
        d.kind == dir
            && match clause {
                None => true,
                Some(c) => d.clauses.iter().any(|cl| cl.kind() == c),
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_device::ExecProfile;

    fn reference() -> (ExecProfile, DeviceType) {
        (ExecProfile::reference(), DeviceType::Nvidia)
    }

    #[test]
    fn clean_program_compiles() {
        let (p, d) = reference();
        let src = "int main(void) {\n    int a[4];\n    #pragma acc parallel copy(a[0:4])\n    {\n        #pragma acc loop\n        for (i = 0; i < 4; i++)\n        {\n            a[i] = i;\n        }\n    }\n    return 1;\n}\n";
        assert!(compile_with_profile(src, Language::C, p, d).is_ok());
    }

    #[test]
    fn parse_error_classified() {
        let (p, d) = reference();
        let err =
            compile_with_profile("int main(void) {\n    @@@\n}\n", Language::C, p, d).unwrap_err();
        assert_eq!(err.kind, FailureKind::ParseError);
    }

    #[test]
    fn semantic_error_classified() {
        let (p, d) = reference();
        let src = "int main(void) {\n    #pragma acc kernels num_gangs(4)\n    {\n    }\n    return 1;\n}\n";
        let err = compile_with_profile(src, Language::C, p, d).unwrap_err();
        assert_eq!(err.kind, FailureKind::SemanticError);
    }

    #[test]
    fn compile_error_defect_triggers_only_when_feature_used() {
        let profile = ExecProfile::reference()
            .with_defect(Defect::CompileError(DirectiveKind::Declare, None));
        let uses = "int main(void) {\n    int a[4];\n    #pragma acc declare create(a[0:4])\n    return 1;\n}\n";
        let err = compile_with_profile(uses, Language::C, profile.clone(), DeviceType::Nvidia)
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::InternalError);
        let clean = "int main(void) {\n    return 1;\n}\n";
        assert!(compile_with_profile(clean, Language::C, profile, DeviceType::Nvidia).is_ok());
    }

    #[test]
    fn variable_sizing_expr_rejected_under_caps_bug() {
        let profile = ExecProfile::reference().with_defect(Defect::RejectVariableSizingExpr);
        let src = "int main(void) {\n    int gangs = 8;\n    #pragma acc parallel num_gangs(gangs)\n    {\n    }\n    return 1;\n}\n";
        let err =
            compile_with_profile(src, Language::C, profile.clone(), DeviceType::Cuda).unwrap_err();
        assert_eq!(err.kind, FailureKind::InternalError);
        // Constant form still compiles (the paper's Fig. 9 "working" case).
        let const_src = "int main(void) {\n    #pragma acc parallel num_gangs(8)\n    {\n    }\n    return 1;\n}\n";
        assert!(compile_with_profile(const_src, Language::C, profile, DeviceType::Cuda).is_ok());
    }

    #[test]
    fn missing_routine_is_link_error() {
        let profile =
            ExecProfile::reference().with_defect(Defect::RejectRoutine(RuntimeRoutine::AsyncTest));
        let src =
            "int main(void) {\n    int t = 0;\n    t = acc_async_test(1);\n    return t;\n}\n";
        let err = compile_with_profile(src, Language::C, profile, DeviceType::Nvidia).unwrap_err();
        assert_eq!(err.kind, FailureKind::InternalError);
        assert!(err.messages[0].contains("acc_async_test"));
    }

    #[test]
    fn program_uses_helper() {
        let src = "int main(void) {\n    int a[4];\n    #pragma acc data copyin(a[0:4])\n    {\n    }\n    return 1;\n}\n";
        let p = acc_frontend::parse(src, Language::C).unwrap();
        assert!(program_uses(&p, DirectiveKind::Data, None));
        assert!(program_uses(
            &p,
            DirectiveKind::Data,
            Some(ClauseKind::Copyin)
        ));
        assert!(!program_uses(
            &p,
            DirectiveKind::Data,
            Some(ClauseKind::Copyout)
        ));
        assert!(!program_uses(&p, DirectiveKind::Parallel, None));
    }
}
