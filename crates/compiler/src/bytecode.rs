//! Lowering resolved programs to a flat, register-based bytecode.
//!
//! The tree walker in `exec` re-traverses the AST — matching on `Stmt` and
//! `Expr` nodes, chasing `Box` pointers, re-deciding static questions
//! (which slot? which crash message? short-circuit or not?) — on every
//! single iteration of every loop. This pass answers all of those
//! questions **once**, at compile time, producing a [`BytecodeProgram`]:
//! a flat `Vec<Instr>` over virtual registers, executed by the dispatch
//! loop in `vm`.
//!
//! ## Register model
//!
//! Variables keep their PR 3 [`FrameLayout`] slot indices: slot-addressed
//! instructions (`ReadVarH`, `SetLocal`, …) hit the same `Vec`-backed host
//! frames and device contexts the walker uses, so both engines observe one
//! store. Expression temporaries live in a per-chunk scratch register file
//! (`regs` in a [`Chunk`]), sized at lowering time with a per-statement
//! high-water mark and recycled from a pool per activation.
//!
//! ## Escape hatches
//!
//! Cold or environment-dependent constructs are not compiled; they escape
//! to the walker's own handlers via side tables carried on the program
//! (`HostStmt`/`DevStmt`/`EvalHostExpr`/`EvalDevExpr` for statements and
//! calls, `Standalone`/`Compute`/`DataRegion`/`HostDataRegion`/`DevLoopDir`
//! for directives). Directive handlers are *shared*, parameterized over the
//! body representation (`RegionBody`/`HostRef`/`DevLoopRef` in `exec`), so
//! every clause path — data mapping, reductions, privatization, async,
//! defect injection — runs the exact same code under both engines. The two
//! engines are byte-identical by construction, not by re-implementation.
//!
//! ## Launch-plan parameterization
//!
//! Nothing vendor-specific is baked into the instruction stream: gang,
//! worker, and vector geometry (and every defect knob) stay in the
//! [`ExecProfile`] consumed at run time by the shared region handler, so
//! one front-end lowering serves all vendors while the compile cache keys
//! executables on the full vendor fingerprint.

use acc_ast::{
    AccClause, AccDirective, BinOp, Expr, ForLoop, LValue, Program, ScalarType, Stmt, Type, UnOp,
};
use acc_device::Value;
use acc_frontend::{FrameLayout, ResolvedProgram};
use acc_spec::DirectiveKind;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use crate::exec::{collect_expr_bases, collect_index_bases, stmts_all_dead};

/// Sentinel for "this name has no frame slot" (the resolver assigns slots
/// to every reachable name, so hitting it at run time is an internal
/// error — the same condition the walker maps to an `unresolved` crash).
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Maximum index arity compiled inline; deeper index expressions (which the
/// generators never emit) escape to the walker.
pub(crate) const MAX_IDX: usize = 8;

/// One bytecode instruction. Register operands (`dst`, `src`, `a`, `b`,
/// `cond`, `idx`) index the chunk's scratch file; `slot` operands index the
/// current frame/device-context slot vector; the remaining `u32` operands
/// index the program's side tables.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    // ---- shared (host and device chunks) ----
    /// `regs[dst] = consts[k]`
    Const { dst: u32, k: u32 },
    /// `regs[dst] = regs[src]`
    Copy { dst: u32, src: u32 },
    /// `regs[dst] = apply_unop(op, regs[src])`
    Unop { dst: u32, op: UnOp, src: u32 },
    /// `regs[dst] = apply_binop(op, regs[a], regs[b])`
    Binop { dst: u32, op: BinOp, a: u32, b: u32 },
    /// `regs[r] = Int(regs[r].as_int()?)` — the walker's `.as_int()` points.
    AsInt { r: u32 },
    /// `regs[r] = regs[r].convert_to(ty)?`
    ConvertTo { r: u32, ty: ScalarType },
    /// `regs[dst] = machine.garbage_value(ty)` (advances the garbage counter).
    Garbage { dst: u32, ty: ScalarType },
    /// Unconditional chunk-relative jump.
    Jump { to: u32 },
    /// Jump when `regs[cond]` is truthy.
    JumpIfTrue { cond: u32, to: u32 },
    /// Jump when `regs[cond]` is falsy.
    JumpIfFalse { cond: u32, to: u32 },
    /// Fused loop-head exit test: jump when `regs[a] >= regs[b]`. Both
    /// operands are `Int` by construction (the lowerer routes them through
    /// the int fast path), so this is the walker's raw `i64` compare.
    JumpIfGe { a: u32, b: u32, to: u32 },
    /// Crash with the fixed message `msgs[msg]` (lowering resolved the
    /// walker's error path statically).
    CrashMsg { msg: u32 },
    /// Crash "loop step must be positive, got {step}" when `regs[src] <= 0`.
    CheckStep { src: u32 },
    /// Return `regs[src]` from the current function chunk.
    Return { src: u32 },
    /// End of chunk (normal fall-through).
    End,

    // ---- host chunks ----
    /// Statement prologue: step budget + 1 clock cycle.
    TickHost,
    /// Loop-iteration prologue: step budget only (no clock advance).
    TickLoop,
    /// `regs[dst] = read_var_host_at(names[name], slot)`
    ReadVarH { dst: u32, name: u32, slot: u32 },
    /// `write_var_host_at(names[name], slot, regs[src])` (converts through
    /// the declared type).
    WriteVarH { src: u32, name: u32, slot: u32 },
    /// Array element read: `n` flat indices in `regs[idx..idx+n]`.
    ReadIdxH { dst: u32, name: u32, slot: u32, idx: u32, n: u8 },
    /// Array element write.
    WriteIdxH { src: u32, name: u32, slot: u32, idx: u32, n: u8 },
    /// Fused index load: `regs[dst] = Int(read_var_host_at(..).as_int()?)`.
    /// Emitted for plain-variable subscripts (`A[i]`), collapsing the
    /// `ReadVarH`/`AsInt`/`Copy` triple on the hottest array-access path.
    IdxVarH { dst: u32, name: u32, slot: u32 },
    /// Declaration store: writes both the slot value and its declared type.
    DeclStore { src: u32, slot: u32, ty: Type },
    /// Raw induction-variable store (no type conversion — mirrors the
    /// walker's direct `slots[i].val = Some(..)` in `exec_for_host`).
    SetSlot { slot: u32, src: u32 },
    /// Escape: evaluate `exprs[expr]` with the walker (`eval_host_with_hint`).
    EvalHostExpr { dst: u32, expr: u32, hint: ScalarType },
    /// Escape: execute `stmts[stmt]` with the walker (`exec_stmt_host`,
    /// which does its own tick).
    HostStmt { stmt: u32 },
    /// `exec_standalone(dirs[dir])` — update/wait/declare/cache.
    Standalone { dir: u32 },
    /// Launch the compute region `regions[region]` through the shared
    /// region handler.
    Compute { region: u32 },
    /// Run `blocks[block]` under the shared `data` region handler.
    DataRegion { block: u32 },
    /// Run `blocks[block]` under the shared `host_data` region handler.
    HostDataRegion { block: u32 },

    // ---- device chunks ----
    /// Device statement prologue: step budget + region cost.
    TickDev,
    /// `regs[dst] = read_scalar_device_at(names[name], slot, ctx)`
    ReadVarD { dst: u32, name: u32, slot: u32 },
    /// `write_scalar_device_at(names[name], slot, regs[src], ctx)`
    WriteVarD { src: u32, name: u32, slot: u32 },
    /// Device array element read (present table / deviceptr resolution).
    ReadIdxD { dst: u32, name: u32, idx: u32, n: u8 },
    /// Device array element write.
    WriteIdxD { src: u32, name: u32, idx: u32, n: u8 },
    /// Fused index load, device side (see [`Instr::IdxVarH`]).
    IdxVarD { dst: u32, name: u32, slot: u32 },
    /// `ctx.set_local(slot, regs[src])` — scope-journaled device binding.
    SetLocal { slot: u32, src: u32 },
    /// `metrics.device_iterations += 1`
    DevIter,
    /// Escape: evaluate `exprs[expr]` with the walker (`eval_device`).
    EvalDevExpr { dst: u32, expr: u32 },
    /// Escape: execute `stmts[stmt]` with the walker (`exec_stmt_device`).
    DevStmt { stmt: u32 },
    /// Run the loop-directive nest `nests[nest]` through the shared
    /// `exec_acc_loop_device` handler.
    DevLoopDir { nest: u32 },

    // ---- superinstructions (profile-guided fusion; see `fuse_program`) ----
    //
    // Each fused instruction executes *exactly* the effects of its two
    // constituents in order, including every intermediate register write and
    // the fault/crash behaviour of each half; `vm_instructions` accounting
    // stays raw-equivalent (the dispatch loop counts one at fetch and one
    // more when the second half actually runs). The selection below is
    // driven by the opcode-pair histogram (`accvv disasm --hot`): statement
    // prologue + first index load, the single-subscript load/store pairs,
    // constant-operand arithmetic, and the two loop-head/back-edge shapes
    // emitted by `lower_for_{h,d}_core`.
    /// `TickHost` + `IdxVarH` — host statement prologue into an index load.
    TickIdxVarH { dst: u32, name: u32, slot: u32 },
    /// `TickDev` + `IdxVarD` — device statement prologue into an index load.
    TickIdxVarD { dst: u32, name: u32, slot: u32 },
    /// `IdxVarD {dst: vdst, ..}` + `ReadIdxD {idx: vdst, n: 1, ..}` — the
    /// whole `A[i]` device read when the subscript is a plain variable.
    IdxVarReadD { vdst: u32, vname: u32, vslot: u32, dst: u32, aname: u32 },
    /// `IdxVarD {dst: vdst, ..}` + `WriteIdxD {idx: vdst, n: 1, ..}`.
    IdxVarWriteD { vdst: u32, vname: u32, vslot: u32, src: u32, aname: u32 },
    /// `Const {dst: cdst, k}` + `Binop {b: cdst, ..}` — constant right
    /// operand (`x + 1`, `i % 2`, …). The constant store still happens, so
    /// `a == cdst` degenerates exactly like the unfused sequence.
    ConstBinop { cdst: u32, k: u32, dst: u32, op: BinOp, a: u32 },
    /// `Binop` + `Jump` — the counted-loop back edge (induction increment
    /// into the jump to the loop head).
    BinopJump { dst: u32, op: BinOp, a: u32, b: u32, to: u32 },
    /// `JumpIfGe` + `SetLocal` — the device loop head: exit test into the
    /// induction-variable bind. The bind only runs on fall-through.
    JumpIfGeSetLocal { a: u32, b: u32, to: u32, slot: u32, src: u32 },
    /// `JumpIfGe` + `SetSlot` — the host loop head.
    JumpIfGeSetSlot { a: u32, b: u32, to: u32, slot: u32, src: u32 },
}

/// Number of distinct opcodes (see [`Instr::opcode`]).
pub(crate) const OPCODE_COUNT: usize = 49;

impl Instr {
    /// Dense opcode id in declaration order, for pair-histogram indexing.
    pub(crate) fn opcode(&self) -> u8 {
        match self {
            Instr::Const { .. } => 0,
            Instr::Copy { .. } => 1,
            Instr::Unop { .. } => 2,
            Instr::Binop { .. } => 3,
            Instr::AsInt { .. } => 4,
            Instr::ConvertTo { .. } => 5,
            Instr::Garbage { .. } => 6,
            Instr::Jump { .. } => 7,
            Instr::JumpIfTrue { .. } => 8,
            Instr::JumpIfFalse { .. } => 9,
            Instr::JumpIfGe { .. } => 10,
            Instr::CrashMsg { .. } => 11,
            Instr::CheckStep { .. } => 12,
            Instr::Return { .. } => 13,
            Instr::End => 14,
            Instr::TickHost => 15,
            Instr::TickLoop => 16,
            Instr::ReadVarH { .. } => 17,
            Instr::WriteVarH { .. } => 18,
            Instr::ReadIdxH { .. } => 19,
            Instr::WriteIdxH { .. } => 20,
            Instr::IdxVarH { .. } => 21,
            Instr::DeclStore { .. } => 22,
            Instr::SetSlot { .. } => 23,
            Instr::EvalHostExpr { .. } => 24,
            Instr::HostStmt { .. } => 25,
            Instr::Standalone { .. } => 26,
            Instr::Compute { .. } => 27,
            Instr::DataRegion { .. } => 28,
            Instr::HostDataRegion { .. } => 29,
            Instr::TickDev => 30,
            Instr::ReadVarD { .. } => 31,
            Instr::WriteVarD { .. } => 32,
            Instr::ReadIdxD { .. } => 33,
            Instr::WriteIdxD { .. } => 34,
            Instr::IdxVarD { .. } => 35,
            Instr::SetLocal { .. } => 36,
            Instr::DevIter => 37,
            Instr::EvalDevExpr { .. } => 38,
            Instr::DevStmt { .. } => 39,
            Instr::DevLoopDir { .. } => 40,
            Instr::TickIdxVarH { .. } => 41,
            Instr::TickIdxVarD { .. } => 42,
            Instr::IdxVarReadD { .. } => 43,
            Instr::IdxVarWriteD { .. } => 44,
            Instr::ConstBinop { .. } => 45,
            Instr::BinopJump { .. } => 46,
            Instr::JumpIfGeSetLocal { .. } => 47,
            Instr::JumpIfGeSetSlot { .. } => 48,
        }
    }
}

/// Opcode name for the `disasm --hot` histogram.
pub(crate) fn opcode_name(op: u8) -> &'static str {
    const NAMES: [&str; OPCODE_COUNT] = [
        "Const",
        "Copy",
        "Unop",
        "Binop",
        "AsInt",
        "ConvertTo",
        "Garbage",
        "Jump",
        "JumpIfTrue",
        "JumpIfFalse",
        "JumpIfGe",
        "CrashMsg",
        "CheckStep",
        "Return",
        "End",
        "TickHost",
        "TickLoop",
        "ReadVarH",
        "WriteVarH",
        "ReadIdxH",
        "WriteIdxH",
        "IdxVarH",
        "DeclStore",
        "SetSlot",
        "EvalHostExpr",
        "HostStmt",
        "Standalone",
        "Compute",
        "DataRegion",
        "HostDataRegion",
        "TickDev",
        "ReadVarD",
        "WriteVarD",
        "ReadIdxD",
        "WriteIdxD",
        "IdxVarD",
        "SetLocal",
        "DevIter",
        "EvalDevExpr",
        "DevStmt",
        "DevLoopDir",
        "TickIdxVarH",
        "TickIdxVarD",
        "IdxVarReadD",
        "IdxVarWriteD",
        "ConstBinop",
        "BinopJump",
        "JumpIfGeSetLocal",
        "JumpIfGeSetSlot",
    ];
    NAMES.get(op as usize).copied().unwrap_or("?")
}

/// A contiguous, `End`-terminated instruction range with its scratch
/// register requirement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Chunk {
    /// Start offset in [`BytecodeProgram::code`]; jump targets inside the
    /// chunk are relative to this.
    pub(crate) start: u32,
    /// Scratch registers the chunk needs.
    pub(crate) regs: u32,
}

/// A lowered function body.
#[derive(Debug)]
pub(crate) struct FuncCode {
    pub(crate) name: String,
    pub(crate) chunk: Chunk,
}

/// The device-side representation of a compute region.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RegionDev {
    /// A structured `parallel`/`kernels` block: the body as a device chunk.
    Block(Chunk),
    /// A combined `parallel loop`/`kernels loop`: index into
    /// [`BytecodeProgram::nests`].
    Loop(u32),
}

/// A lowered compute region: everything `exec_compute_region` needs,
/// precomputed.
#[derive(Debug)]
pub(crate) struct RegionCode {
    /// The region directive (index into [`BytecodeProgram::dirs`]).
    pub(crate) dir: u32,
    /// Host fallback body (broken directive / `if(false)`): the exact
    /// equivalent of the walker's sequential execution of the body.
    pub(crate) host: Chunk,
    /// Device-side body.
    pub(crate) dev: RegionDev,
    /// Array names referenced in the body, sorted — drives the implicit
    /// `present_or_copy` mappings (order is observable behaviour).
    pub(crate) referenced: Vec<String>,
    /// Precomputed Fig. 11 dead-region verdict.
    pub(crate) dead: bool,
    /// Parallel-engine launch descriptor: present when the region body is
    /// exactly one plan-eligible nest and the region directive carries no
    /// per-gang state (reduction/private/firstprivate). See `par`.
    pub(crate) par: Option<RegionPar>,
}

/// How a compute region maps onto one parallel nest launch (the static half
/// of the eligibility check; `Machine::try_par_region` does the dynamic
/// half).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegionPar {
    /// The nest (index into [`BytecodeProgram::nests`]) whose plan runs.
    pub(crate) nest: u32,
    /// Ticks the serial engine charges per gang before the nest dispatch
    /// (1 for a block-form region whose chunk is `[TickDev, DevLoopDir,
    /// End]`; 0 for a combined loop-form region).
    pub(crate) pre_ticks: u64,
    /// VM instructions the serial engine retires per gang outside the nest
    /// iterations (the wrapper chunk's fetches; 0 for loop-form).
    pub(crate) instrs_per_gang: u64,
}

/// One loop of a (possibly collapsed) `loop`-directive nest: bounds stay as
/// expressions (evaluated per unit at run time, exactly like the walker).
#[derive(Debug)]
pub(crate) struct NestLoop {
    pub(crate) name: String,
    pub(crate) slot: Option<u32>,
    pub(crate) from: Expr,
    pub(crate) to: Expr,
    pub(crate) step: Expr,
}

/// A lowered `loop`-directive nest. `loops` holds the greedily gathered
/// tightly-nested chain up to the static `collapse` depth; `bodies[d-1]` is
/// the device chunk executed per selected iteration when collapsing `d`
/// loops (shallower bodies contain the remaining inner loops compiled
/// inline as sequential device loops — the walker's depth-1 semantics).
#[derive(Debug)]
pub(crate) struct DevLoopNest {
    /// The `loop` directive (index into [`BytecodeProgram::dirs`]).
    pub(crate) dir: u32,
    pub(crate) loops: Vec<NestLoop>,
    pub(crate) bodies: Vec<Chunk>,
    /// Parallel launch plan, when the full-depth nest is provably race-free
    /// (see `par::build_plan`).
    pub(crate) par: Option<crate::par::ParPlan>,
}

/// A lowered `data`/`host_data` block: the directive plus its host body.
#[derive(Debug)]
pub(crate) struct HostBlock {
    pub(crate) dir: u32,
    pub(crate) chunk: Chunk,
}

/// A compiled program: one flat instruction stream plus the side tables the
/// escape hatches and directive instructions index into. Stored in the
/// executable (and the executable level of the compile cache) as an
/// `Arc<BytecodeProgram>`, so a cache hit skips lowering entirely.
#[derive(Debug, Default)]
pub struct BytecodeProgram {
    pub(crate) consts: Vec<Value>,
    pub(crate) names: Vec<String>,
    pub(crate) msgs: Vec<String>,
    pub(crate) code: Vec<Instr>,
    pub(crate) funcs: Vec<FuncCode>,
    pub(crate) regions: Vec<RegionCode>,
    pub(crate) nests: Vec<DevLoopNest>,
    pub(crate) blocks: Vec<HostBlock>,
    pub(crate) dirs: Vec<AccDirective>,
    pub(crate) stmts: Vec<Stmt>,
    pub(crate) exprs: Vec<Expr>,
}

impl BytecodeProgram {
    /// The chunk of the named function.
    pub(crate) fn func_chunk(&self, name: &str) -> Option<Chunk> {
        self.funcs.iter().find(|f| f.name == name).map(|f| f.chunk)
    }

    /// A stable textual disassembly (the `accvv disasm` output): side
    /// tables first, then the instruction stream with absolute offsets.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, ";; accvv bytecode v1");
        let _ = writeln!(
            s,
            ";; {} instrs, {} funcs, {} regions, {} nests, {} blocks",
            self.code.len(),
            self.funcs.len(),
            self.regions.len(),
            self.nests.len(),
            self.blocks.len()
        );
        if !self.consts.is_empty() {
            let _ = writeln!(s, "consts:");
            for (i, v) in self.consts.iter().enumerate() {
                let _ = writeln!(s, "  c{i} = {v:?}");
            }
        }
        if !self.names.is_empty() {
            let _ = writeln!(s, "names:");
            for (i, n) in self.names.iter().enumerate() {
                let _ = writeln!(s, "  n{i} = {n}");
            }
        }
        if !self.msgs.is_empty() {
            let _ = writeln!(s, "msgs:");
            for (i, m) in self.msgs.iter().enumerate() {
                let _ = writeln!(s, "  m{i} = {m:?}");
            }
        }
        if !self.dirs.is_empty() {
            let _ = writeln!(s, "dirs:");
            for (i, d) in self.dirs.iter().enumerate() {
                let _ = writeln!(s, "  d{i} = {d}");
            }
        }
        let _ = writeln!(s, "funcs:");
        for f in &self.funcs {
            let _ = writeln!(
                s,
                "  {}: @{} regs={}",
                f.name, f.chunk.start, f.chunk.regs
            );
        }
        if !self.regions.is_empty() {
            let _ = writeln!(s, "regions:");
            for (i, r) in self.regions.iter().enumerate() {
                let dev = match r.dev {
                    RegionDev::Block(c) => format!("block@{} regs={}", c.start, c.regs),
                    RegionDev::Loop(n) => format!("nest t{n}"),
                };
                let _ = writeln!(
                    s,
                    "  r{i}: dir=d{} host=@{} regs={} dev={} refs={:?} dead={}",
                    r.dir, r.host.start, r.host.regs, dev, r.referenced, r.dead
                );
            }
        }
        if !self.nests.is_empty() {
            let _ = writeln!(s, "nests:");
            for (i, n) in self.nests.iter().enumerate() {
                let loops: Vec<String> = n
                    .loops
                    .iter()
                    .map(|l| match l.slot {
                        Some(sl) => format!("{}@{}", l.name, sl),
                        None => format!("{}@none", l.name),
                    })
                    .collect();
                let bodies: Vec<String> = n
                    .bodies
                    .iter()
                    .map(|c| format!("@{} regs={}", c.start, c.regs))
                    .collect();
                let _ = writeln!(
                    s,
                    "  t{i}: dir=d{} loops=[{}] bodies=[{}]",
                    n.dir,
                    loops.join(", "),
                    bodies.join(", ")
                );
            }
        }
        if !self.blocks.is_empty() {
            let _ = writeln!(s, "blocks:");
            for (i, b) in self.blocks.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  b{i}: dir=d{} @{} regs={}",
                    b.dir, b.chunk.start, b.chunk.regs
                );
            }
        }
        let _ = writeln!(s, "code:");
        for (i, ins) in self.code.iter().enumerate() {
            let _ = writeln!(s, "  {i:04}  {ins:?}");
        }
        s
    }
}

/// An instruction buffer for one chunk under construction, with register
/// allocation (per-statement high-water mark) and jump patching.
struct ChunkBuf {
    code: Vec<Instr>,
    next: u32,
    maxr: u32,
}

/// No per-gang state on the region directive — the parallel engine runs no
/// per-gang setup, so reductions/privatization force the serial gang loop.
fn region_dir_par_eligible(dir: &AccDirective) -> bool {
    !dir.clauses.iter().any(|c| {
        matches!(
            c,
            AccClause::Reduction(..) | AccClause::Private(_) | AccClause::Firstprivate(_)
        )
    })
}

impl ChunkBuf {
    fn new() -> Self {
        ChunkBuf {
            code: crate::arena::take_code(),
            next: 0,
            maxr: 0,
        }
    }

    fn alloc(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        self.maxr = self.maxr.max(self.next);
        r
    }

    fn alloc_n(&mut self, n: u32) -> u32 {
        let r = self.next;
        self.next += n;
        self.maxr = self.maxr.max(self.next);
        r
    }

    /// Register watermark: statements are independent, so each body
    /// statement resets to the mark taken at its start (registers allocated
    /// outside the mark — loop headers — persist).
    fn mark(&self) -> u32 {
        self.next
    }

    fn reset(&mut self, m: u32) {
        self.next = m;
    }

    fn emit(&mut self, i: Instr) -> u32 {
        self.code.push(i);
        (self.code.len() - 1) as u32
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.code[at as usize] {
            Instr::Jump { to }
            | Instr::JumpIfTrue { to, .. }
            | Instr::JumpIfFalse { to, .. }
            | Instr::JumpIfGe { to, .. } => *to = target,
            other => panic!("patch target is not a jump: {other:?}"),
        }
    }

    /// Append the buffered instructions (plus a terminating `End`) to the
    /// program's flat stream and return the chunk descriptor. The drained
    /// buffer goes back to the lowering arena.
    fn seal(mut self, code: &mut Vec<Instr>) -> Chunk {
        let start = code.len() as u32;
        code.append(&mut self.code);
        code.push(Instr::End);
        crate::arena::give_code(std::mem::take(&mut self.code));
        Chunk {
            start,
            regs: self.maxr,
        }
    }
}

/// True when the expression contains a call reachable through unary/binary
/// chains from the root — the only position where the walker's runtime
/// lvalue hint is observable (index subexpressions always evaluate with the
/// `Float` hint). Assignments to scalars with such values escape whole.
fn hinted_call(e: &Expr) -> bool {
    match e {
        Expr::Call { .. } => true,
        Expr::Unary(_, inner) => hinted_call(inner),
        Expr::Binary(_, l, r) => hinted_call(l) || hinted_call(r),
        _ => false,
    }
}

struct Lowerer<'p> {
    layout: &'p FrameLayout,
    bp: BytecodeProgram,
    name_ids: HashMap<String, u32>,
}

/// Lower every function of `prog` to bytecode, with superinstruction
/// fusion (the production image). Infallible: anything the lowering does
/// not model escapes to the walker, and compile-time-known crash paths
/// become `CrashMsg` instructions.
pub(crate) fn lower(prog: &Program, resolved: &ResolvedProgram) -> BytecodeProgram {
    lower_with(prog, resolved, true)
}

/// Lower without fusion — the raw image `disasm --hot` profiles (and the
/// differential suite pins against the fused one).
pub(crate) fn lower_unfused(prog: &Program, resolved: &ResolvedProgram) -> BytecodeProgram {
    lower_with(prog, resolved, false)
}

pub(crate) fn lower_with(prog: &Program, resolved: &ResolvedProgram, fuse: bool) -> BytecodeProgram {
    let empty = FrameLayout::default();
    let mut lw = Lowerer {
        layout: &empty,
        bp: BytecodeProgram::default(),
        name_ids: HashMap::new(),
    };
    for f in &prog.functions {
        let layout = resolved.layout(&f.name);
        lw.layout = layout.unwrap_or(&empty);
        let mut buf = ChunkBuf::new();
        // A function without a layout is unreachable (call_function errors
        // first); its chunk stays empty.
        if layout.is_some() {
            lw.lower_body_h(&mut buf, &f.body);
        }
        let chunk = buf.seal(&mut lw.bp.code);
        lw.bp.funcs.push(FuncCode {
            name: f.name.clone(),
            chunk,
        });
    }
    let mut bp = lw.bp;
    if fuse {
        fuse_program(&mut bp);
    }
    bp
}

// ---------------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------------

/// Try to fuse the adjacent pair `(a, b)`. Each fused form preserves the
/// exact effects and ordering of both constituents (see the variant docs).
fn try_fuse(a: Instr, b: Instr) -> Option<Instr> {
    match (a, b) {
        (Instr::TickHost, Instr::IdxVarH { dst, name, slot }) => {
            Some(Instr::TickIdxVarH { dst, name, slot })
        }
        (Instr::TickDev, Instr::IdxVarD { dst, name, slot }) => {
            Some(Instr::TickIdxVarD { dst, name, slot })
        }
        (
            Instr::IdxVarD { dst: vdst, name: vname, slot: vslot },
            Instr::ReadIdxD { dst, name: aname, idx, n: 1 },
        ) if idx == vdst => Some(Instr::IdxVarReadD { vdst, vname, vslot, dst, aname }),
        (
            Instr::IdxVarD { dst: vdst, name: vname, slot: vslot },
            Instr::WriteIdxD { src, name: aname, idx, n: 1 },
        ) if idx == vdst => Some(Instr::IdxVarWriteD { vdst, vname, vslot, src, aname }),
        (Instr::Const { dst: cdst, k }, Instr::Binop { dst, op, a, b }) if b == cdst => {
            Some(Instr::ConstBinop { cdst, k, dst, op, a })
        }
        (Instr::Binop { dst, op, a, b }, Instr::Jump { to }) => {
            Some(Instr::BinopJump { dst, op, a, b, to })
        }
        (Instr::JumpIfGe { a, b, to }, Instr::SetLocal { slot, src }) => {
            Some(Instr::JumpIfGeSetLocal { a, b, to, slot, src })
        }
        (Instr::JumpIfGe { a, b, to }, Instr::SetSlot { slot, src }) => {
            Some(Instr::JumpIfGeSetSlot { a, b, to, slot, src })
        }
        _ => None,
    }
}

/// Rewrite a chunk-relative jump target through the old→new index map.
fn remap_jump(ins: &mut Instr, map: &[u32]) {
    match ins {
        Instr::Jump { to }
        | Instr::JumpIfTrue { to, .. }
        | Instr::JumpIfFalse { to, .. }
        | Instr::JumpIfGe { to, .. }
        | Instr::BinopJump { to, .. }
        | Instr::JumpIfGeSetLocal { to, .. }
        | Instr::JumpIfGeSetSlot { to, .. } => *to = map[*to as usize],
        _ => {}
    }
}

/// Greedy left-to-right pair fusion over the whole instruction stream.
///
/// Chunks tile the stream and every chunk ends at an `End` (see
/// `ChunkBuf::seal`), so the stream is processed segment by segment. Within
/// a segment, a pair is fused only when its second instruction is not a
/// jump target (a jump landing *between* the halves would re-execute or
/// skip one of them). Jump targets are chunk-relative; chunk start offsets
/// move, so every `Chunk` descriptor in the side tables is remapped through
/// the per-segment start map afterwards.
fn fuse_program(bp: &mut BytecodeProgram) {
    let code = std::mem::take(&mut bp.code);
    let mut new_code: Vec<Instr> = Vec::with_capacity(code.len());
    // old absolute index -> new absolute index (for chunk starts).
    let mut start_map: HashMap<u32, u32> = HashMap::new();
    let mut seg_start = 0usize;
    while seg_start < code.len() {
        let seg_end = seg_start
            + code[seg_start..]
                .iter()
                .position(|i| matches!(i, Instr::End))
                .expect("every chunk is End-terminated")
            + 1;
        let seg = &code[seg_start..seg_end];
        // Chunk-relative jump-target bitmap. Targets can point at the
        // terminating `End` but never past it.
        let mut is_target = vec![false; seg.len()];
        for ins in seg {
            let to = match ins {
                Instr::Jump { to }
                | Instr::JumpIfTrue { to, .. }
                | Instr::JumpIfFalse { to, .. }
                | Instr::JumpIfGe { to, .. } => Some(*to as usize),
                _ => None,
            };
            if let Some(t) = to {
                is_target[t] = true;
            }
        }
        // Greedy fuse; map[i] = new chunk-relative index of old instr i
        // (a fused second half maps to the fused instruction).
        let mut map = vec![0u32; seg.len() + 1];
        let mut out: Vec<Instr> = Vec::with_capacity(seg.len());
        let mut i = 0usize;
        while i < seg.len() {
            map[i] = out.len() as u32;
            if i + 1 < seg.len() && !is_target[i + 1] {
                if let Some(fused) = try_fuse(seg[i], seg[i + 1]) {
                    map[i + 1] = out.len() as u32;
                    out.push(fused);
                    i += 2;
                    continue;
                }
            }
            out.push(seg[i]);
            i += 1;
        }
        map[seg.len()] = out.len() as u32;
        for ins in &mut out {
            remap_jump(ins, &map);
        }
        start_map.insert(seg_start as u32, new_code.len() as u32);
        new_code.extend(out);
        seg_start = seg_end;
    }
    bp.code = new_code;
    let remap = |c: &mut Chunk| {
        c.start = *start_map
            .get(&c.start)
            .expect("chunk start is a segment start");
    };
    for f in &mut bp.funcs {
        remap(&mut f.chunk);
    }
    for r in &mut bp.regions {
        remap(&mut r.host);
        if let RegionDev::Block(c) = &mut r.dev {
            remap(c);
        }
    }
    for n in &mut bp.nests {
        for c in &mut n.bodies {
            remap(c);
        }
    }
    for b in &mut bp.blocks {
        remap(&mut b.chunk);
    }
}

impl<'p> Lowerer<'p> {
    // ---- side-table interning ----

    fn name_id(&mut self, n: &str) -> u32 {
        if let Some(&i) = self.name_ids.get(n) {
            return i;
        }
        let i = self.bp.names.len() as u32;
        self.bp.names.push(n.to_string());
        self.name_ids.insert(n.to_string(), i);
        i
    }

    fn const_id(&mut self, v: Value) -> u32 {
        self.bp.consts.push(v);
        (self.bp.consts.len() - 1) as u32
    }

    fn add_dir(&mut self, d: &AccDirective) -> u32 {
        self.bp.dirs.push(d.clone());
        (self.bp.dirs.len() - 1) as u32
    }

    fn add_stmt(&mut self, s: &Stmt) -> u32 {
        self.bp.stmts.push(s.clone());
        (self.bp.stmts.len() - 1) as u32
    }

    fn add_expr(&mut self, e: &Expr) -> u32 {
        self.bp.exprs.push(e.clone());
        (self.bp.exprs.len() - 1) as u32
    }

    fn emit_crash(&mut self, buf: &mut ChunkBuf, msg: String) {
        self.bp.msgs.push(msg);
        let m = (self.bp.msgs.len() - 1) as u32;
        buf.emit(Instr::CrashMsg { msg: m });
    }

    fn emit_unresolved(&mut self, buf: &mut ChunkBuf, name: &str) {
        self.emit_crash(buf, format!("internal error: unresolved name `{name}`"));
    }

    fn slot_u32(&self, n: &str) -> u32 {
        match self.layout.slot(n) {
            Some(s) => s as u32,
            None => NO_SLOT,
        }
    }

    fn emit_const(&mut self, buf: &mut ChunkBuf, v: Value) -> u32 {
        let k = self.const_id(v);
        let dst = buf.alloc();
        buf.emit(Instr::Const { dst, k });
        dst
    }

    // ---- host statements ----

    fn lower_body_h(&mut self, buf: &mut ChunkBuf, body: &[Stmt]) {
        for s in body {
            let m = buf.mark();
            self.lower_stmt_h(buf, s);
            buf.reset(m);
        }
    }

    fn lower_stmt_h(&mut self, buf: &mut ChunkBuf, s: &Stmt) {
        match s {
            // Escapes: calls (runtime routines, user functions, deferred
            // effects), array declarations (arena allocation), and scalar
            // assignments whose value observes the runtime lvalue hint or
            // whose target exceeds the inline index arity.
            Stmt::Call { .. } | Stmt::DeclArray { .. } => {
                let i = self.add_stmt(s);
                buf.emit(Instr::HostStmt { stmt: i });
            }
            Stmt::Assign { target, op, value } => {
                let escape = match target {
                    LValue::Var(_) => hinted_call(value),
                    LValue::Index { indices, .. } => indices.len() > MAX_IDX,
                };
                if escape {
                    let i = self.add_stmt(s);
                    buf.emit(Instr::HostStmt { stmt: i });
                    return;
                }
                buf.emit(Instr::TickHost);
                // The hint only reaches calls chained through unary/binary
                // operators; those assignments escaped above, so `Float`
                // (the walker's default) is exact here.
                let rhs = self.lower_expr_h(buf, value, ScalarType::Float);
                match target {
                    LValue::Var(n) => {
                        let name = self.name_id(n);
                        let slot = self.slot_u32(n);
                        match op {
                            None => {
                                buf.emit(Instr::WriteVarH { src: rhs, name, slot });
                            }
                            Some(o) => {
                                let old = buf.alloc();
                                buf.emit(Instr::ReadVarH {
                                    dst: old,
                                    name,
                                    slot,
                                });
                                let dst = buf.alloc();
                                buf.emit(Instr::Binop {
                                    dst,
                                    op: *o,
                                    a: old,
                                    b: rhs,
                                });
                                buf.emit(Instr::WriteVarH { src: dst, name, slot });
                            }
                        }
                    }
                    LValue::Index { base, indices } => {
                        let name = self.name_id(base);
                        let slot = self.slot_u32(base);
                        let n = indices.len() as u8;
                        match op {
                            None => {
                                let idx = self.lower_index_block_h(buf, indices);
                                buf.emit(Instr::WriteIdxH {
                                    src: rhs,
                                    name,
                                    slot,
                                    idx,
                                    n,
                                });
                            }
                            Some(o) => {
                                let idx1 = self.lower_index_block_h(buf, indices);
                                let old = buf.alloc();
                                buf.emit(Instr::ReadIdxH {
                                    dst: old,
                                    name,
                                    slot,
                                    idx: idx1,
                                    n,
                                });
                                let dst = buf.alloc();
                                buf.emit(Instr::Binop {
                                    dst,
                                    op: *o,
                                    a: old,
                                    b: rhs,
                                });
                                // C semantics: the walker re-evaluates the
                                // index expressions for the write.
                                let idx2 = self.lower_index_block_h(buf, indices);
                                buf.emit(Instr::WriteIdxH {
                                    src: dst,
                                    name,
                                    slot,
                                    idx: idx2,
                                    n,
                                });
                            }
                        }
                    }
                }
            }
            Stmt::DeclScalar { name, ty, init } => {
                buf.emit(Instr::TickHost);
                let r = match init {
                    Some(e) => {
                        let r = self.lower_expr_h(buf, e, ty.scalar());
                        // Pointer declarations keep the raw value
                        // (DevPtr / null int); scalars convert.
                        if let Type::Scalar(t) = ty {
                            buf.emit(Instr::ConvertTo { r, ty: *t });
                        }
                        r
                    }
                    None => {
                        let r = buf.alloc();
                        buf.emit(Instr::Garbage {
                            dst: r,
                            ty: ty.scalar(),
                        });
                        r
                    }
                };
                match self.layout.slot(name) {
                    Some(slot) => {
                        buf.emit(Instr::DeclStore {
                            src: r,
                            slot: slot as u32,
                            ty: *ty,
                        });
                    }
                    None => self.emit_unresolved(buf, name),
                }
            }
            Stmt::For(l) => {
                buf.emit(Instr::TickHost);
                self.lower_for_h_core(buf, l);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                buf.emit(Instr::TickHost);
                let rc = self.lower_expr_h(buf, cond, ScalarType::Float);
                let jel = buf.emit(Instr::JumpIfFalse { cond: rc, to: 0 });
                self.lower_body_h(buf, then_body);
                let jend = buf.emit(Instr::Jump { to: 0 });
                let here = buf.here();
                buf.patch(jel, here);
                self.lower_body_h(buf, else_body);
                let here = buf.here();
                buf.patch(jend, here);
            }
            Stmt::Return(e) => {
                buf.emit(Instr::TickHost);
                let r = self.lower_expr_h(buf, e, ScalarType::Float);
                buf.emit(Instr::Return { src: r });
            }
            Stmt::AccBlock { dir, body } => {
                buf.emit(Instr::TickHost);
                match dir.kind {
                    DirectiveKind::Parallel | DirectiveKind::Kernels => {
                        let region = self.lower_region_block(dir, body);
                        buf.emit(Instr::Compute { region });
                    }
                    DirectiveKind::Data => {
                        let block = self.lower_host_block(dir, body);
                        buf.emit(Instr::DataRegion { block });
                    }
                    DirectiveKind::HostData => {
                        let block = self.lower_host_block(dir, body);
                        buf.emit(Instr::HostDataRegion { block });
                    }
                    other => {
                        self.emit_crash(buf, format!("`{}` cannot open a block", other.name()));
                    }
                }
            }
            Stmt::AccLoop { dir, l } => {
                buf.emit(Instr::TickHost);
                match dir.kind {
                    DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop => {
                        let region = self.lower_region_loop(dir, l);
                        buf.emit(Instr::Compute { region });
                    }
                    DirectiveKind::Loop => {
                        // Outside a compute construct the directive is a
                        // plain sequential host loop.
                        self.lower_for_h_core(buf, l);
                    }
                    other => {
                        self.emit_crash(buf, format!("`{}` cannot annotate a loop", other.name()));
                    }
                }
            }
            Stmt::AccStandalone { dir } => {
                buf.emit(Instr::TickHost);
                let d = self.add_dir(dir);
                buf.emit(Instr::Standalone { dir: d });
            }
        }
    }

    /// The counted-loop core, shared by `Stmt::For` (after its statement
    /// tick) and both host-loop fallbacks (`loop` outside compute, region
    /// host fallback), which the walker enters without a statement tick.
    /// Mirrors `exec_for_host`: bounds/step once, per-iteration tick before
    /// the re-evaluated upper bound, raw slot store of the induction value.
    fn lower_for_h_core(&mut self, buf: &mut ChunkBuf, l: &ForLoop) {
        let rf = self.lower_int_expr_h(buf, &l.from);
        let rs = self.lower_int_expr_h(buf, &l.step);
        buf.emit(Instr::CheckStep { src: rs });
        let Some(slot) = self.layout.slot(&l.var) else {
            self.emit_unresolved(buf, &l.var);
            return;
        };
        let ri = buf.alloc();
        buf.emit(Instr::Copy { dst: ri, src: rf });
        // A literal bound cannot change between iterations; its re-eval is a
        // side-effect-free register write, so it hoists out of the head.
        let hoisted = match &l.to {
            Expr::Int(v) => {
                let rt = buf.alloc();
                let k = self.const_id(Value::Int(*v));
                buf.emit(Instr::Const { dst: rt, k });
                Some(rt)
            }
            _ => None,
        };
        let head = buf.here();
        buf.emit(Instr::TickLoop);
        let rt = match hoisted {
            Some(rt) => rt,
            None => self.lower_int_expr_h(buf, &l.to),
        };
        let jexit = buf.emit(Instr::JumpIfGe { a: ri, b: rt, to: 0 });
        buf.emit(Instr::SetSlot {
            slot: slot as u32,
            src: ri,
        });
        self.lower_body_h(buf, &l.body);
        buf.emit(Instr::Binop {
            dst: ri,
            op: BinOp::Add,
            a: ri,
            b: rs,
        });
        buf.emit(Instr::Jump { to: head });
        let here = buf.here();
        buf.patch(jexit, here);
    }

    /// Lower an expression the walker immediately `.as_int()`s, yielding a
    /// register guaranteed to hold `Value::Int`. Plain variables fuse to a
    /// single `IdxVarH`, literals to a `Const`; anything else takes the
    /// general lowering followed by `AsInt` (same eval → as_int order).
    fn lower_int_expr_h(&mut self, buf: &mut ChunkBuf, e: &Expr) -> u32 {
        match e {
            Expr::Var(n) => {
                let dst = buf.alloc();
                let name = self.name_id(n);
                let slot = self.slot_u32(n);
                buf.emit(Instr::IdxVarH { dst, name, slot });
                dst
            }
            Expr::Int(v) => {
                let dst = buf.alloc();
                let k = self.const_id(Value::Int(*v));
                buf.emit(Instr::Const { dst, k });
                dst
            }
            _ => {
                let r = self.lower_expr_h(buf, e, ScalarType::Float);
                buf.emit(Instr::AsInt { r });
                r
            }
        }
    }

    /// Lower index expressions into `n` consecutive registers, each
    /// evaluated then integer-converted in sequence (the walker's
    /// per-index `eval → as_int` interleave, preserving crash order).
    fn lower_index_block_h(&mut self, buf: &mut ChunkBuf, indices: &[Expr]) -> u32 {
        let block = buf.alloc_n(indices.len() as u32);
        for (k, e) in indices.iter().enumerate() {
            let dst = block + k as u32;
            match e {
                // Fused fast paths for the dominant subscript shapes; the
                // eval-then-as_int order per index is unchanged.
                Expr::Var(n) => {
                    let name = self.name_id(n);
                    let slot = self.slot_u32(n);
                    buf.emit(Instr::IdxVarH { dst, name, slot });
                }
                Expr::Int(v) => {
                    let k = self.const_id(Value::Int(*v));
                    buf.emit(Instr::Const { dst, k });
                }
                _ => {
                    let r = self.lower_expr_h(buf, e, ScalarType::Float);
                    buf.emit(Instr::AsInt { r });
                    buf.emit(Instr::Copy { dst, src: r });
                }
            }
        }
        block
    }

    // ---- host expressions ----

    fn lower_expr_h(&mut self, buf: &mut ChunkBuf, e: &Expr, hint: ScalarType) -> u32 {
        match e {
            Expr::Int(v) => self.emit_const(buf, Value::Int(*v)),
            Expr::Real(v, t) => self.emit_const(
                buf,
                match t {
                    ScalarType::Float => Value::F32(*v as f32),
                    _ => Value::F64(*v),
                },
            ),
            Expr::SizeOf(t) => self.emit_const(buf, Value::Int(t.size_bytes() as i64)),
            Expr::Var(n) => {
                let name = self.name_id(n);
                let slot = self.slot_u32(n);
                let dst = buf.alloc();
                buf.emit(Instr::ReadVarH { dst, name, slot });
                dst
            }
            Expr::Index { base, indices } if indices.len() <= MAX_IDX => {
                // Index subexpressions always evaluate under the default
                // hint in the walker (`eval_host`).
                let idx = self.lower_index_block_h(buf, indices);
                let name = self.name_id(base);
                let slot = self.slot_u32(base);
                let dst = buf.alloc();
                buf.emit(Instr::ReadIdxH {
                    dst,
                    name,
                    slot,
                    idx,
                    n: indices.len() as u8,
                });
                dst
            }
            Expr::Index { .. } | Expr::Call { .. } => {
                // Escapes: calls keep their full walker semantics (runtime
                // dispatch, intrinsics, user functions, malloc hint), deep
                // index expressions skip the fixed-arity fast path.
                let id = self.add_expr(e);
                let dst = buf.alloc();
                buf.emit(Instr::EvalHostExpr {
                    dst,
                    expr: id,
                    hint,
                });
                dst
            }
            Expr::Unary(op, inner) => {
                let src = self.lower_expr_h(buf, inner, hint);
                let dst = buf.alloc();
                buf.emit(Instr::Unop { dst, op: *op, src });
                dst
            }
            Expr::Binary(op, l, r) => {
                let a = self.lower_expr_h(buf, l, hint);
                match op {
                    BinOp::And => {
                        let dst = self.emit_const(buf, Value::Int(0));
                        let jend = buf.emit(Instr::JumpIfFalse { cond: a, to: 0 });
                        let b = self.lower_expr_h(buf, r, hint);
                        buf.emit(Instr::Binop {
                            dst,
                            op: BinOp::And,
                            a,
                            b,
                        });
                        let here = buf.here();
                        buf.patch(jend, here);
                        dst
                    }
                    BinOp::Or => {
                        let dst = self.emit_const(buf, Value::Int(1));
                        let jend = buf.emit(Instr::JumpIfTrue { cond: a, to: 0 });
                        let b = self.lower_expr_h(buf, r, hint);
                        buf.emit(Instr::Binop {
                            dst,
                            op: BinOp::Or,
                            a,
                            b,
                        });
                        let here = buf.here();
                        buf.patch(jend, here);
                        dst
                    }
                    _ => {
                        let b = self.lower_expr_h(buf, r, hint);
                        let dst = buf.alloc();
                        buf.emit(Instr::Binop {
                            dst,
                            op: *op,
                            a,
                            b,
                        });
                        dst
                    }
                }
            }
        }
    }

    // ---- regions / directive bodies ----

    fn lower_region_block(&mut self, dir: &AccDirective, body: &[Stmt]) -> u32 {
        let dir_id = self.add_dir(dir);
        let mut hbuf = ChunkBuf::new();
        self.lower_body_h(&mut hbuf, body);
        let host = hbuf.seal(&mut self.bp.code);
        let chunk = self.lower_dev_chunk(body);
        // Block-form parallel launch: the whole device body must be exactly
        // one planned nest behind its statement tick — `[TickDev,
        // DevLoopDir, End]` (3 wrapper fetches, 1 tick per gang).
        let par = if region_dir_par_eligible(dir) {
            // The chunk was just sealed, so it is the tail of the stream:
            // an exact-length slice pattern checks the whole chunk.
            match self.bp.code.get(chunk.start as usize..) {
                Some([Instr::TickDev, Instr::DevLoopDir { nest }, Instr::End])
                    if self.bp.nests[*nest as usize].par.is_some() =>
                {
                    Some(RegionPar {
                        nest: *nest,
                        pre_ticks: 1,
                        instrs_per_gang: 3,
                    })
                }
                _ => None,
            }
        } else {
            None
        };
        let dev = RegionDev::Block(chunk);
        let mut refs = BTreeSet::new();
        collect_index_bases(body, &mut refs);
        self.bp.regions.push(RegionCode {
            dir: dir_id,
            host,
            dev,
            referenced: refs.into_iter().collect(),
            dead: stmts_all_dead(body),
            par,
        });
        (self.bp.regions.len() - 1) as u32
    }

    fn lower_region_loop(&mut self, dir: &AccDirective, l: &ForLoop) -> u32 {
        let dir_id = self.add_dir(dir);
        // Host fallback of a combined construct is a bare counted loop
        // (`exec_for_host` — no statement tick).
        let mut hbuf = ChunkBuf::new();
        self.lower_for_h_core(&mut hbuf, l);
        let host = hbuf.seal(&mut self.bp.code);
        let nest = self.lower_nest(dir_id, dir, l);
        // Loop-form parallel launch: the gang loop dispatches the nest
        // directly (no wrapper chunk, no per-gang tick).
        let par = if region_dir_par_eligible(dir) && self.bp.nests[nest as usize].par.is_some() {
            Some(RegionPar {
                nest,
                pre_ticks: 0,
                instrs_per_gang: 0,
            })
        } else {
            None
        };
        let mut refs = BTreeSet::new();
        collect_expr_bases(&l.from, &mut refs);
        collect_expr_bases(&l.to, &mut refs);
        collect_index_bases(&l.body, &mut refs);
        self.bp.regions.push(RegionCode {
            dir: dir_id,
            host,
            dev: RegionDev::Loop(nest),
            referenced: refs.into_iter().collect(),
            dead: stmts_all_dead(&l.body),
            par,
        });
        (self.bp.regions.len() - 1) as u32
    }

    fn lower_host_block(&mut self, dir: &AccDirective, body: &[Stmt]) -> u32 {
        let dir_id = self.add_dir(dir);
        let mut buf = ChunkBuf::new();
        self.lower_body_h(&mut buf, body);
        let chunk = buf.seal(&mut self.bp.code);
        self.bp.blocks.push(HostBlock { dir: dir_id, chunk });
        (self.bp.blocks.len() - 1) as u32
    }

    /// Lower a `loop`-directive nest. The gather depth is the *static*
    /// `collapse` argument; the runtime depth (after clause filtering and
    /// collapse defects) is 1 or that value, so a body chunk exists for
    /// every depth the shared handler can request. A nest shallower than
    /// the static collapse is left short — the runtime check reproduces the
    /// walker's "collapse requires tightly nested loops" crash.
    fn lower_nest(&mut self, dir_id: u32, dir: &AccDirective, l: &ForLoop) -> u32 {
        let static_n = dir
            .clauses
            .iter()
            .find_map(|c| match c {
                AccClause::Collapse(e) => e.const_int(),
                _ => None,
            })
            .unwrap_or(1)
            .max(1) as usize;
        let mut loops: Vec<&ForLoop> = vec![l];
        let mut body: &[Stmt] = &l.body;
        for _ in 1..static_n {
            match body {
                [Stmt::For(inner)] => {
                    loops.push(inner);
                    body = &inner.body;
                }
                _ => break,
            }
        }
        let nest_loops: Vec<NestLoop> = loops
            .iter()
            .map(|lp| NestLoop {
                name: lp.var.clone(),
                slot: self.layout.slot(&lp.var).map(|s| s as u32),
                from: lp.from.clone(),
                to: lp.to.clone(),
                step: lp.step.clone(),
            })
            .collect();
        let bodies: Vec<Chunk> = loops
            .iter()
            .map(|lp| self.lower_dev_chunk(&lp.body))
            .collect();
        let par = crate::par::build_plan(dir, &nest_loops, body, self.layout);
        self.bp.nests.push(DevLoopNest {
            dir: dir_id,
            loops: nest_loops,
            bodies,
            par,
        });
        (self.bp.nests.len() - 1) as u32
    }

    // ---- device statements ----

    fn lower_dev_chunk(&mut self, body: &[Stmt]) -> Chunk {
        let mut buf = ChunkBuf::new();
        self.lower_body_d(&mut buf, body);
        buf.seal(&mut self.bp.code)
    }

    fn lower_body_d(&mut self, buf: &mut ChunkBuf, body: &[Stmt]) {
        for s in body {
            let m = buf.mark();
            self.lower_stmt_d(buf, s);
            buf.reset(m);
        }
    }

    fn lower_stmt_d(&mut self, buf: &mut ChunkBuf, s: &Stmt) {
        match s {
            // Escapes: device calls (acc_on_device, intrinsic/user
            // rejection) and over-arity index targets. `exec_stmt_device`
            // does its own tick and region-cost accounting.
            Stmt::Call { .. } => {
                let i = self.add_stmt(s);
                buf.emit(Instr::DevStmt { stmt: i });
            }
            Stmt::Assign { target, op, value } => {
                if matches!(target, LValue::Index { indices, .. } if indices.len() > MAX_IDX) {
                    let i = self.add_stmt(s);
                    buf.emit(Instr::DevStmt { stmt: i });
                    return;
                }
                buf.emit(Instr::TickDev);
                let rhs = self.lower_expr_d(buf, value);
                match target {
                    LValue::Var(n) => {
                        let name = self.name_id(n);
                        let slot = self.slot_u32(n);
                        match op {
                            None => {
                                buf.emit(Instr::WriteVarD { src: rhs, name, slot });
                            }
                            Some(o) => {
                                let old = buf.alloc();
                                buf.emit(Instr::ReadVarD {
                                    dst: old,
                                    name,
                                    slot,
                                });
                                let dst = buf.alloc();
                                buf.emit(Instr::Binop {
                                    dst,
                                    op: *o,
                                    a: old,
                                    b: rhs,
                                });
                                buf.emit(Instr::WriteVarD { src: dst, name, slot });
                            }
                        }
                    }
                    LValue::Index { base, indices } => {
                        let name = self.name_id(base);
                        let n = indices.len() as u8;
                        match op {
                            None => {
                                let idx = self.lower_index_block_d(buf, indices);
                                buf.emit(Instr::WriteIdxD {
                                    src: rhs,
                                    name,
                                    idx,
                                    n,
                                });
                            }
                            Some(o) => {
                                let idx1 = self.lower_index_block_d(buf, indices);
                                let old = buf.alloc();
                                buf.emit(Instr::ReadIdxD {
                                    dst: old,
                                    name,
                                    idx: idx1,
                                    n,
                                });
                                let dst = buf.alloc();
                                buf.emit(Instr::Binop {
                                    dst,
                                    op: *o,
                                    a: old,
                                    b: rhs,
                                });
                                let idx2 = self.lower_index_block_d(buf, indices);
                                buf.emit(Instr::WriteIdxD {
                                    src: dst,
                                    name,
                                    idx: idx2,
                                    n,
                                });
                            }
                        }
                    }
                }
            }
            Stmt::DeclScalar { name, ty, init } => {
                buf.emit(Instr::TickDev);
                let r = match init {
                    Some(e) => {
                        let r = self.lower_expr_d(buf, e);
                        // Device declarations always convert (no pointer
                        // exemption on this path).
                        buf.emit(Instr::ConvertTo { r, ty: ty.scalar() });
                        r
                    }
                    None => {
                        let r = buf.alloc();
                        buf.emit(Instr::Garbage {
                            dst: r,
                            ty: ty.scalar(),
                        });
                        r
                    }
                };
                match self.layout.slot(name) {
                    Some(slot) => {
                        buf.emit(Instr::SetLocal {
                            slot: slot as u32,
                            src: r,
                        });
                    }
                    None => self.emit_unresolved(buf, name),
                }
            }
            Stmt::DeclArray { .. } => {
                buf.emit(Instr::TickDev);
                self.emit_crash(
                    buf,
                    "array declarations inside compute regions are not supported".into(),
                );
            }
            Stmt::For(l) => {
                buf.emit(Instr::TickDev);
                self.lower_for_d_core(buf, l);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                buf.emit(Instr::TickDev);
                let rc = self.lower_expr_d(buf, cond);
                let jel = buf.emit(Instr::JumpIfFalse { cond: rc, to: 0 });
                self.lower_body_d(buf, then_body);
                let jend = buf.emit(Instr::Jump { to: 0 });
                let here = buf.here();
                buf.patch(jel, here);
                self.lower_body_d(buf, else_body);
                let here = buf.here();
                buf.patch(jend, here);
            }
            Stmt::Return(_) => {
                buf.emit(Instr::TickDev);
                self.emit_crash(buf, "return inside a compute region is not supported".into());
            }
            Stmt::AccLoop { dir, l } => {
                buf.emit(Instr::TickDev);
                let dir_id = self.add_dir(dir);
                let nest = self.lower_nest(dir_id, dir, l);
                buf.emit(Instr::DevLoopDir { nest });
            }
            Stmt::AccBlock { dir, .. } => {
                buf.emit(Instr::TickDev);
                self.emit_crash(
                    buf,
                    format!(
                        "nested `{}` regions inside compute constructs are not supported in 1.0",
                        dir.kind.name()
                    ),
                );
            }
            Stmt::AccStandalone { dir } => {
                buf.emit(Instr::TickDev);
                match dir.kind {
                    DirectiveKind::Cache => {}
                    other => self.emit_crash(
                        buf,
                        format!("`{}` directive inside a compute region", other.name()),
                    ),
                }
            }
        }
    }

    /// A sequential device loop (`exec_for_device` with every iteration
    /// selected — the unannotated-loop, gang-redundant case): bounds
    /// evaluated once up front, no per-iteration tick.
    fn lower_for_d_core(&mut self, buf: &mut ChunkBuf, l: &ForLoop) {
        let rf = self.lower_int_expr_d(buf, &l.from);
        let rt = self.lower_int_expr_d(buf, &l.to);
        let rs = self.lower_int_expr_d(buf, &l.step);
        buf.emit(Instr::CheckStep { src: rs });
        let Some(slot) = self.layout.slot(&l.var) else {
            self.emit_unresolved(buf, &l.var);
            return;
        };
        let ri = buf.alloc();
        buf.emit(Instr::Copy { dst: ri, src: rf });
        let head = buf.here();
        // `while i < to` exits on `i >= to` — the same fused compare as the
        // host loop (operands are `Int` by construction).
        let jexit = buf.emit(Instr::JumpIfGe { a: ri, b: rt, to: 0 });
        buf.emit(Instr::SetLocal {
            slot: slot as u32,
            src: ri,
        });
        buf.emit(Instr::DevIter);
        self.lower_body_d(buf, &l.body);
        buf.emit(Instr::Binop {
            dst: ri,
            op: BinOp::Add,
            a: ri,
            b: rs,
        });
        buf.emit(Instr::Jump { to: head });
        let here = buf.here();
        buf.patch(jexit, here);
    }

    /// Device-side twin of [`Self::lower_int_expr_h`].
    fn lower_int_expr_d(&mut self, buf: &mut ChunkBuf, e: &Expr) -> u32 {
        match e {
            Expr::Var(n) => {
                let dst = buf.alloc();
                let name = self.name_id(n);
                let slot = self.slot_u32(n);
                buf.emit(Instr::IdxVarD { dst, name, slot });
                dst
            }
            Expr::Int(v) => {
                let dst = buf.alloc();
                let k = self.const_id(Value::Int(*v));
                buf.emit(Instr::Const { dst, k });
                dst
            }
            _ => {
                let r = self.lower_expr_d(buf, e);
                buf.emit(Instr::AsInt { r });
                r
            }
        }
    }

    fn lower_index_block_d(&mut self, buf: &mut ChunkBuf, indices: &[Expr]) -> u32 {
        let block = buf.alloc_n(indices.len() as u32);
        for (k, e) in indices.iter().enumerate() {
            let dst = block + k as u32;
            match e {
                Expr::Var(n) => {
                    let name = self.name_id(n);
                    let slot = self.slot_u32(n);
                    buf.emit(Instr::IdxVarD { dst, name, slot });
                }
                Expr::Int(v) => {
                    let k = self.const_id(Value::Int(*v));
                    buf.emit(Instr::Const { dst, k });
                }
                _ => {
                    let r = self.lower_expr_d(buf, e);
                    buf.emit(Instr::AsInt { r });
                    buf.emit(Instr::Copy { dst, src: r });
                }
            }
        }
        block
    }

    // ---- device expressions ----

    fn lower_expr_d(&mut self, buf: &mut ChunkBuf, e: &Expr) -> u32 {
        match e {
            Expr::Int(v) => self.emit_const(buf, Value::Int(*v)),
            Expr::Real(v, t) => self.emit_const(
                buf,
                match t {
                    ScalarType::Float => Value::F32(*v as f32),
                    _ => Value::F64(*v),
                },
            ),
            Expr::SizeOf(t) => self.emit_const(buf, Value::Int(t.size_bytes() as i64)),
            Expr::Var(n) => {
                let name = self.name_id(n);
                let slot = self.slot_u32(n);
                let dst = buf.alloc();
                buf.emit(Instr::ReadVarD { dst, name, slot });
                dst
            }
            Expr::Index { base, indices } if indices.len() <= MAX_IDX => {
                let idx = self.lower_index_block_d(buf, indices);
                let name = self.name_id(base);
                let dst = buf.alloc();
                buf.emit(Instr::ReadIdxD {
                    dst,
                    name,
                    idx,
                    n: indices.len() as u8,
                });
                dst
            }
            Expr::Index { .. } | Expr::Call { .. } => {
                let id = self.add_expr(e);
                let dst = buf.alloc();
                buf.emit(Instr::EvalDevExpr { dst, expr: id });
                dst
            }
            Expr::Unary(op, inner) => {
                let src = self.lower_expr_d(buf, inner);
                let dst = buf.alloc();
                buf.emit(Instr::Unop { dst, op: *op, src });
                dst
            }
            Expr::Binary(op, l, r) => {
                let a = self.lower_expr_d(buf, l);
                match op {
                    BinOp::And => {
                        let dst = self.emit_const(buf, Value::Int(0));
                        let jend = buf.emit(Instr::JumpIfFalse { cond: a, to: 0 });
                        let b = self.lower_expr_d(buf, r);
                        buf.emit(Instr::Binop {
                            dst,
                            op: BinOp::And,
                            a,
                            b,
                        });
                        let here = buf.here();
                        buf.patch(jend, here);
                        dst
                    }
                    BinOp::Or => {
                        let dst = self.emit_const(buf, Value::Int(1));
                        let jend = buf.emit(Instr::JumpIfTrue { cond: a, to: 0 });
                        let b = self.lower_expr_d(buf, r);
                        buf.emit(Instr::Binop {
                            dst,
                            op: BinOp::Or,
                            a,
                            b,
                        });
                        let here = buf.here();
                        buf.patch(jend, here);
                        dst
                    }
                    _ => {
                        let b = self.lower_expr_d(buf, r);
                        let dst = buf.alloc();
                        buf.emit(Instr::Binop {
                            dst,
                            op: *op,
                            a,
                            b,
                        });
                        dst
                    }
                }
            }
        }
    }
}
