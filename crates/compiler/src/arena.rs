//! Pooled per-case scratch memory.
//!
//! A campaign executes tens of thousands of cases per second, and each case
//! used to allocate the same transient vectors over and over: a host frame's
//! slot vector per function call, a device context's slot/owner vectors per
//! gang, a register file per VM chunk activation, and a lowering buffer per
//! compiled chunk. At high `--jobs` those short-lived allocations contend on
//! the global allocator and bound campaign throughput.
//!
//! This module recycles them through thread-local pools. The lifetime rules
//! (DESIGN.md §15.5) that make this sound:
//!
//! - Pooled element types are plain data (`Value`, `u32`, `Slot`, `Instr`) —
//!   `'static`, no `Drop`, no borrows — so a recycled vector can never leak
//!   a reference into a later case.
//! - Every `take_*` clears and re-initializes the vector to the requested
//!   default state; callers observe exactly what a fresh allocation gives.
//! - Pools are thread-local: a vector returns to the pool of the thread
//!   that's dropping it, so there is no cross-thread traffic (parallel-
//!   engine workers never touch these pools at all — their scratch lives on
//!   their own stacks).
//! - Pool depth and element capacity are capped so one pathological case
//!   cannot pin unbounded memory for the rest of a campaign.

use std::cell::RefCell;

use acc_device::Value;

use crate::bytecode::Instr;
use crate::exec::Slot;

/// Max vectors kept per pool (beyond this, drops free normally).
const MAX_POOL: usize = 64;
/// Max capacity (in elements) a vector may have and still be pooled —
/// pathological cases free normally instead of pinning memory.
const MAX_KEEP: usize = 1 << 16;

thread_local! {
    static DEV_SLOTS: RefCell<Vec<Vec<Option<Value>>>> = const { RefCell::new(Vec::new()) };
    static DEV_OWNERS: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
    static FRAME_SLOTS: RefCell<Vec<Vec<Slot>>> = const { RefCell::new(Vec::new()) };
    static REGS: RefCell<Vec<Vec<Value>>> = const { RefCell::new(Vec::new()) };
    static CODE: RefCell<Vec<Vec<Instr>>> = const { RefCell::new(Vec::new()) };
}

macro_rules! pool {
    ($pool:ident, $take:ident, $give:ident, $t:ty, $init:expr) => {
        pub(crate) fn $take(len: usize) -> Vec<$t> {
            let mut v: Vec<$t> = $pool
                .with(|p| p.borrow_mut().pop())
                .unwrap_or_default();
            v.clear();
            v.resize(len, $init);
            v
        }

        pub(crate) fn $give(v: Vec<$t>) {
            if v.capacity() == 0 || v.capacity() > MAX_KEEP {
                return;
            }
            $pool.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < MAX_POOL {
                    p.push(v);
                }
            });
        }
    };
}

pool!(DEV_SLOTS, take_slots, give_slots, Option<Value>, None);
pool!(DEV_OWNERS, take_owners, give_owners, u32, 0);
pool!(FRAME_SLOTS, take_frame_slots, give_frame_slots, Slot, Slot::default());

/// A register file for one VM chunk activation; sized by the caller
/// (`take_regs(0)` + `resize` keeps the VM's existing sizing logic).
pub(crate) fn take_regs() -> Vec<Value> {
    REGS.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

pub(crate) fn give_regs(v: Vec<Value>) {
    if v.capacity() == 0 || v.capacity() > MAX_KEEP {
        return;
    }
    REGS.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOL {
            p.push(v);
        }
    });
}

/// A lowering buffer for one bytecode chunk (see `ChunkBuf`).
pub(crate) fn take_code() -> Vec<Instr> {
    let mut v = CODE.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v
}

pub(crate) fn give_code(v: Vec<Instr>) {
    if v.capacity() == 0 || v.capacity() > MAX_KEEP {
        return;
    }
    CODE.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOL {
            p.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_vectors_come_back_clean() {
        let mut v = take_slots(4);
        v[2] = Some(Value::Int(7));
        give_slots(v);
        let v2 = take_slots(6);
        assert_eq!(v2.len(), 6);
        assert!(v2.iter().all(|s| s.is_none()));
        let o = take_owners(3);
        assert_eq!(o, vec![0, 0, 0]);
    }

    #[test]
    fn oversized_vectors_are_not_pooled() {
        let v: Vec<Option<Value>> = Vec::with_capacity(MAX_KEEP + 1);
        give_slots(v); // must not panic; silently freed
        let mut r = take_regs();
        r.resize(8, Value::Int(0));
        give_regs(r);
        assert!(take_regs().capacity() >= 8);
    }
}
