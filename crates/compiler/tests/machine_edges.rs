//! Direct tests of the execution machine's edge and failure behaviour: the
//! paper's runtime-error taxonomy (crash / wrong result / hang), resource
//! handling, and metrics accounting.

use acc_compiler::driver::compile_with_profile;
use acc_compiler::{RunOutcome, VendorCompiler};
use acc_device::{Defect, ExecProfile};
use acc_spec::envvar::EnvConfig;
use acc_spec::{ClauseKind, DeviceType, DirectiveKind, Language};

fn run(src: &str) -> RunOutcome {
    run_with(src, ExecProfile::reference())
}

fn run_with(src: &str, profile: ExecProfile) -> RunOutcome {
    compile_with_profile(src, Language::C, profile, DeviceType::Nvidia)
        .unwrap_or_else(|e| panic!("{e}\n---\n{src}"))
        .run()
        .outcome
}

fn crash_message(outcome: RunOutcome) -> String {
    match outcome {
        RunOutcome::Crash(m) => m,
        other => panic!("expected crash, got {other:?}"),
    }
}

#[test]
fn host_index_out_of_bounds_crashes() {
    let src = "int main(void) {\n    int A[4];\n    A[9] = 1;\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("out of bounds"), "{m}");
}

#[test]
fn device_index_out_of_bounds_crashes() {
    let src = "int main(void) {\n    int A[4];\n    #pragma acc parallel copy(A[0:4])\n    {\n        #pragma acc loop\n        for (i = 0; i < 9; i++)\n        {\n            A[i] = 1;\n        }\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("out of bounds"), "{m}");
}

#[test]
fn present_miss_crashes() {
    let src = "int main(void) {\n    int A[4];\n    #pragma acc parallel present(A[0:4])\n    {\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("not present"), "{m}");
}

#[test]
fn host_dereference_of_device_pointer_segfaults() {
    let src = "int main(void) {\n    float* p = acc_malloc(16 * sizeof(float));\n    float x = 0.0f;\n    x = p[0];\n    return x == 0.0f;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("segmentation fault"), "{m}");
}

#[test]
fn deref_without_deviceptr_clause_faults_in_kernel() {
    let src = "int main(void) {\n    float* p = acc_malloc(16 * sizeof(float));\n    #pragma acc parallel\n    {\n        #pragma acc loop\n        for (i = 0; i < 4; i++)\n        {\n            p[i] = 1.0f;\n        }\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("not present"), "{m}");
}

#[test]
fn infinite_loop_times_out() {
    // A loop whose bound the body keeps moving: the step budget must stop it.
    let src = "int main(void) {\n    int n = 10;\n    int s = 0;\n    for (i = 0; i < n; i++)\n    {\n        n = n + 1;\n        s = s + 1;\n    }\n    return s;\n}\n";
    assert_eq!(run(src), RunOutcome::Timeout);
}

#[test]
fn hang_defect_times_out() {
    let src = "int main(void) {\n    int A[4];\n    #pragma acc parallel copy(A[0:4]) async(1)\n    {\n    }\n    #pragma acc wait(1)\n    return 1;\n}\n";
    let profile = ExecProfile::reference().with_defect(Defect::HangOnClause(
        DirectiveKind::Parallel,
        ClauseKind::Async,
    ));
    assert_eq!(run_with(src, profile), RunOutcome::Timeout);
}

#[test]
fn collapse_requires_tight_nesting() {
    let src = "int main(void) {\n    int A[4];\n    #pragma acc parallel copy(A[0:4])\n    {\n        #pragma acc loop collapse(2)\n        for (i = 0; i < 4; i++)\n        {\n            A[i] = 0;\n            for (j = 0; j < 2; j++)\n            {\n                A[i] = A[i] + j;\n            }\n        }\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("tightly nested"), "{m}");
}

#[test]
fn nested_compute_regions_rejected() {
    let src = "int main(void) {\n    #pragma acc parallel\n    {\n        #pragma acc parallel\n        {\n        }\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("nested"), "{m}");
}

#[test]
fn procedure_call_in_region_rejected() {
    // OpenACC 1.0 has no `routine` directive (§V-C).
    let src = "void helper(int* a, int n) {\n    a[0] = n;\n}\n\nint main(void) {\n    int A[4];\n    #pragma acc parallel copy(A[0:4])\n    {\n        helper(A, 4);\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("not supported by OpenACC 1.0"), "{m}");
}

#[test]
fn division_by_zero_crashes() {
    let src =
        "int main(void) {\n    int z = 0;\n    int x = 0;\n    x = 4 / z;\n    return x;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("division by zero"), "{m}");
}

#[test]
fn negative_section_crashes() {
    let src = "int main(void) {\n    int n = -2;\n    int A[4];\n    #pragma acc data copyin(A[0:n])\n    {\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("negative"), "{m}");
}

#[test]
fn section_overrun_crashes() {
    let src = "int main(void) {\n    int A[4];\n    #pragma acc data copyin(A[0:9])\n    {\n    }\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("out of bounds"), "{m}");
}

#[test]
fn metrics_count_the_work() {
    let src = "int main(void) {\n    int A[8];\n    for (i = 0; i < 8; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(2) copy(A[0:8])\n    {\n        #pragma acc loop\n        for (i = 0; i < 8; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    return 1;\n}\n";
    let exe = compile_with_profile(
        src,
        Language::C,
        ExecProfile::reference(),
        DeviceType::Nvidia,
    )
    .unwrap();
    let result = exe.run();
    assert!(result.outcome.passed());
    let m = result.metrics;
    assert_eq!(m.kernels_launched, 1);
    assert_eq!(m.async_launches, 0);
    assert_eq!(
        m.device_iterations, 8,
        "each iteration executes exactly once"
    );
    assert_eq!(m.bytes_to_device, 8 * 8, "copy uploads 8 ints");
    assert_eq!(m.bytes_to_host, 8 * 8, "copy downloads 8 ints");
    assert_eq!(m.allocations, 1);
}

#[test]
fn env_config_reaches_the_program() {
    let src = "int main(void) {\n    int t = 0;\n    t = acc_get_device_type();\n    return t == acc_device_host;\n}\n";
    let exe = VendorCompiler::reference()
        .compile(src, Language::C)
        .unwrap();
    // Without the env: the concrete accelerator type — not host.
    assert!(matches!(exe.run().outcome, RunOutcome::Completed(0)));
    // With ACC_DEVICE_TYPE=HOST: host.
    let env = EnvConfig::from_pairs([("ACC_DEVICE_TYPE", "HOST")]);
    assert!(matches!(
        exe.run_with_env(&env).outcome,
        RunOutcome::Completed(1)
    ));
}

#[test]
fn uninitialized_scalar_reads_garbage_not_zero() {
    // Host locals are garbage-initialized; a test forgetting to initialize
    // must fail loudly (the value is never a small constant).
    let src = "int main(void) {\n    int x;\n    return x == 0;\n}\n";
    assert!(matches!(run(src), RunOutcome::Completed(0)));
}

#[test]
fn call_stack_overflow_crashes() {
    let src =
        "void spin(int n) {\n    spin(n);\n}\n\nint main(void) {\n    spin(1);\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("stack overflow"), "{m}");
}

#[test]
fn wrong_argument_count_crashes() {
    let src = "void two(int a, int n) {\n}\n\nint main(void) {\n    two(1);\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("expects 2"), "{m}");
}

#[test]
fn update_of_unmapped_variable_crashes() {
    let src =
        "int main(void) {\n    int A[4];\n    #pragma acc update host(A[0:4])\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(m.contains("not present"), "{m}");
}

#[test]
fn double_free_crashes() {
    let src = "int main(void) {\n    float* p = acc_malloc(8 * sizeof(float));\n    acc_free(p);\n    acc_free(p);\n    return 1;\n}\n";
    let m = crash_message(run(src));
    assert!(
        m.contains("invalid device address") || m.contains("free"),
        "{m}"
    );
}

#[test]
fn gang_redundant_execution_is_deterministic() {
    // The DESIGN.md §4.1 contract: without a loop directive, G gangs each
    // run the loop — exactly G increments, run after run.
    let src = "int main(void) {\n    int A[4];\n    for (i = 0; i < 4; i++)\n    {\n        A[i] = 0;\n    }\n    #pragma acc parallel num_gangs(7) copy(A[0:4])\n    {\n        for (i = 0; i < 4; i++)\n        {\n            A[i] = A[i] + 1;\n        }\n    }\n    return A[0] * 1000 + A[3];\n}\n";
    let exe = VendorCompiler::reference()
        .compile(src, Language::C)
        .unwrap();
    for _ in 0..3 {
        assert!(matches!(exe.run().outcome, RunOutcome::Completed(7007)));
    }
}
