//! Differential property tests on the execution machine: the reference
//! implementation's results must be independent of legitimate
//! implementation choices (gang counts, vendor mappings) for race-free
//! programs, and reductions must agree with a sequential host oracle.

use acc_compiler::driver::compile_with_profile;
use acc_compiler::{RunOutcome, VendorCompiler, VendorId};
use acc_device::ExecProfile;
use acc_spec::{DeviceType, Language, ReductionOp, VendorMapping};
use proptest::prelude::*;

fn run_c(src: &str, profile: ExecProfile) -> RunOutcome {
    compile_with_profile(src, Language::C, profile, DeviceType::Nvidia)
        .unwrap_or_else(|e| panic!("{e}\n---\n{src}"))
        .run()
        .outcome
}

/// A partitioned element-wise kernel program returning a checksum.
fn saxpy_program(n: usize, gangs: u32) -> String {
    format!(
        "int main(void) {{\n    int sum = 0;\n    int A[{n}];\n    for (i = 0; i < {n}; i++)\n    {{\n        A[i] = i;\n    }}\n    #pragma acc parallel num_gangs({gangs}) copy(A[0:{n}])\n    {{\n        #pragma acc loop\n        for (i = 0; i < {n}; i++)\n        {{\n            A[i] = A[i] * 3 + 1;\n        }}\n    }}\n    for (i = 0; i < {n}; i++)\n    {{\n        sum += A[i];\n    }}\n    return sum;\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partitioned_kernel_result_is_gang_count_invariant(
        n in 1usize..64,
        gangs in 1u32..16,
    ) {
        let expected = match run_c(&saxpy_program(n, 1), ExecProfile::reference()) {
            RunOutcome::Completed(v) => v,
            other => panic!("{other:?}"),
        };
        let got = match run_c(&saxpy_program(n, gangs), ExecProfile::reference()) {
            RunOutcome::Completed(v) => v,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(got, expected);
        // And the host oracle agrees.
        let oracle: i64 = (0..n as i64).map(|i| i * 3 + 1).sum();
        prop_assert_eq!(expected, oracle);
    }

    #[test]
    fn mapping_choice_does_not_change_partitioned_results(
        n in 1usize..48,
        gangs in 1u32..8,
    ) {
        let mut results = Vec::new();
        for mapping in [
            VendorMapping::PGI_STYLE,
            VendorMapping::CAPS_STYLE,
            VendorMapping::CRAY_STYLE,
        ] {
            let profile = ExecProfile::conforming("m", mapping);
            match run_c(&saxpy_program(n, gangs), profile) {
                RunOutcome::Completed(v) => results.push(v),
                other => panic!("{other:?}"),
            }
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
    }

    #[test]
    fn int_reductions_match_sequential_oracle(
        vals in prop::collection::vec(-9i64..9, 1..40),
        op_idx in 0usize..5,
        gangs in 1u32..10,
    ) {
        let (op, sym, init): (ReductionOp, &str, i64) = [
            (ReductionOp::Add, "+", 3),
            (ReductionOp::Max, "max", -10_000),
            (ReductionOp::Min, "min", 10_000),
            (ReductionOp::BitOr, "|", 0),
            (ReductionOp::BitXor, "^", 0),
        ][op_idx];
        let n = vals.len();
        let oracle = vals.iter().fold(init, |a, v| op.combine_int(a, *v));
        // Build the program: V initialized element by element.
        let mut init_code = String::new();
        for (i, v) in vals.iter().enumerate() {
            let v_str = if *v < 0 { format!("(-{})", -v) } else { v.to_string() };
            init_code.push_str(&format!("    V[{i}] = {v_str};\n"));
        }
        let combine = match sym {
            "max" | "min" => format!("acc = {sym}(acc, V[i]);"),
            _ => format!("acc = acc {sym} V[i];"),
        };
        let src = format!(
            "int main(void) {{\n    int acc = {init};\n    int V[{n}];\n{init_code}    #pragma acc parallel loop num_gangs({gangs}) reduction({sym}:acc) copyin(V[0:{n}])\n    for (i = 0; i < {n}; i++)\n    {{\n        {combine}\n    }}\n    return acc == {oracle};\n}}\n"
        );
        match run_c(&src, ExecProfile::reference()) {
            RunOutcome::Completed(1) => {}
            other => prop_assert!(false, "{:?}\n{}", other, src),
        }
    }

    #[test]
    fn latest_vendor_releases_agree_on_clean_programs(
        n in 1usize..32,
        gangs in 1u32..6,
    ) {
        let src = saxpy_program(n, gangs);
        let mut outs = Vec::new();
        for vendor in VendorId::COMMERCIAL {
            let exe = VendorCompiler::latest(vendor).compile(&src, Language::C).unwrap();
            match exe.run().outcome {
                RunOutcome::Completed(v) => outs.push(v),
                other => panic!("{vendor}: {other:?}"),
            }
        }
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    #[test]
    fn fortran_and_c_variants_agree(
        n in 1usize..32,
        gangs in 1u32..6,
    ) {
        // Render the same AST both ways and compare results.
        let c_src = saxpy_program(n, gangs);
        let program = acc_frontend::parse(&c_src, Language::C).unwrap();
        let mut f = program.clone();
        f.language = Language::Fortran;
        let f_src = acc_ast::render(&f);
        let reference = VendorCompiler::reference();
        let c_out = reference.compile(&c_src, Language::C).unwrap().run().outcome;
        let f_out = reference.compile(&f_src, Language::Fortran).unwrap().run().outcome;
        prop_assert_eq!(c_out, f_out);
    }
}
