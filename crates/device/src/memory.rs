//! Discrete device memory and the present table.
//!
//! The present table is the core data structure behind every OpenACC data
//! clause: it maps a host symbol to the device buffer holding its copy,
//! with a reference count so nested data regions (`data` inside `data`,
//! `present` lookups, `present_or_*` fallbacks) behave per the spec: the
//! outermost region owns the allocation and performs the deferred copyout.

use crate::value::{ArrayData, Value, ValueError};
use acc_ast::ScalarType;
use std::collections::HashMap;
use std::fmt;

/// Opaque identifier of a device buffer (the simulated device address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// A device-side allocation.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    /// Storage.
    pub data: ArrayData,
    /// Logical dimensions (empty = scalar stored as 1-element array).
    pub dims: Vec<usize>,
}

impl DeviceBuffer {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Errors from device memory operations — these model runtime crashes
/// (bad device address, double free, out-of-bounds DMA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceError(pub String);

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device error: {}", self.0)
    }
}

impl std::error::Error for DeviceError {}

impl From<ValueError> for DeviceError {
    fn from(e: ValueError) -> Self {
        DeviceError(e.0)
    }
}

/// The device's memory: an allocator of typed buffers.
///
/// Buffers live in a slab indexed by the (sequential, 1-based) buffer id:
/// element access is a plain bounds-checked vector index, which matters
/// because the interpreter hot loop performs one lookup per simulated
/// device load/store. Freed slots stay behind as `None` so stale ids keep
/// reporting "invalid device address" instead of aliasing a later
/// allocation.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    /// Slot `i` holds the buffer with id `i + 1` (id 0 is never issued).
    buffers: Vec<Option<DeviceBuffer>>,
    /// Total bytes currently allocated.
    pub allocated_bytes: usize,
}

impl DeviceMemory {
    /// Fresh empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a buffer filled with the deterministic garbage pattern
    /// (device memory is uninitialized until a transfer or kernel writes it).
    pub fn alloc(&mut self, ty: ScalarType, dims: Vec<usize>) -> BufferId {
        let len: usize = dims.iter().product::<usize>().max(1);
        // The garbage seed tracks the allocation ordinal, so the fill
        // pattern for the n-th allocation is identical to what the old
        // counter-based allocator produced.
        let id = BufferId(self.buffers.len() as u64 + 1);
        let data = ArrayData::garbage(ty, len, id.0);
        self.allocated_bytes += data.size_bytes();
        if acc_obs::active() {
            acc_obs::instant(
                "mem",
                "alloc",
                vec![acc_obs::i("bytes", data.size_bytes() as i64)],
            );
        }
        self.buffers.push(Some(DeviceBuffer { data, dims }));
        id
    }

    /// The slab slot for an id: ids are 1-based, so 0 (and any id past the
    /// high-water mark) maps to no slot.
    #[inline]
    fn slot(&self, id: BufferId) -> usize {
        (id.0 as usize).wrapping_sub(1)
    }

    /// Free a buffer. Freeing an unknown id is a device error (double free).
    pub fn free(&mut self, id: BufferId) -> Result<(), DeviceError> {
        let slot = self.slot(id);
        match self.buffers.get_mut(slot).and_then(Option::take) {
            Some(b) => {
                self.allocated_bytes -= b.data.size_bytes();
                Ok(())
            }
            None => Err(DeviceError(format!(
                "free of invalid device address {id:?}"
            ))),
        }
    }

    /// Borrow a buffer.
    #[inline]
    pub fn get(&self, id: BufferId) -> Result<&DeviceBuffer, DeviceError> {
        self.buffers
            .get(self.slot(id))
            .and_then(Option::as_ref)
            .ok_or_else(|| DeviceError(format!("invalid device address {id:?}")))
    }

    /// Mutably borrow a buffer.
    #[inline]
    pub fn get_mut(&mut self, id: BufferId) -> Result<&mut DeviceBuffer, DeviceError> {
        let slot = self.slot(id);
        self.buffers
            .get_mut(slot)
            .and_then(Option::as_mut)
            .ok_or_else(|| DeviceError(format!("invalid device address {id:?}")))
    }

    /// Read one element.
    pub fn read(&self, id: BufferId, index: usize) -> Result<Value, DeviceError> {
        let b = self.get(id)?;
        b.data.get(index).ok_or_else(|| {
            DeviceError(format!("device read out of bounds: {index} >= {}", b.len()))
        })
    }

    /// Write one element (converted to the buffer's element type).
    pub fn write(&mut self, id: BufferId, index: usize, v: Value) -> Result<(), DeviceError> {
        let b = self.get_mut(id)?;
        if !b.data.set(index, v)? {
            return Err(DeviceError(format!(
                "device write out of bounds: {index} >= {}",
                b.len()
            )));
        }
        Ok(())
    }

    /// Host→device DMA of a section. Returns bytes moved.
    pub fn upload(
        &mut self,
        id: BufferId,
        host: &ArrayData,
        start: usize,
        len: usize,
    ) -> Result<usize, DeviceError> {
        let b = self.get_mut(id)?;
        b.data.copy_section_from(host, start, len)?;
        let bytes = len * host.elem_type().size_bytes();
        if acc_obs::active() {
            acc_obs::instant("memcpy", "h2d", vec![acc_obs::i("bytes", bytes as i64)]);
        }
        Ok(bytes)
    }

    /// Device→host DMA of a section. Returns bytes moved.
    pub fn download(
        &self,
        id: BufferId,
        host: &mut ArrayData,
        start: usize,
        len: usize,
    ) -> Result<usize, DeviceError> {
        let b = self.get(id)?;
        host.copy_section_from(&b.data, start, len)?;
        let bytes = len * b.data.elem_type().size_bytes();
        if acc_obs::active() {
            acc_obs::instant("memcpy", "d2h", vec![acc_obs::i("bytes", bytes as i64)]);
        }
        Ok(bytes)
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.buffers.iter().filter(|b| b.is_some()).count()
    }
}

/// What should happen to a mapped symbol when its owning region exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitAction {
    /// Copy the device data back to the host (from `copy`, `copyout`).
    CopyOut,
    /// Just free (from `copyin`, `create`, `present`).
    Release,
}

/// A present-table entry: a host symbol currently mapped on the device.
#[derive(Debug, Clone)]
pub struct PresentEntry {
    /// The device buffer.
    pub buffer: BufferId,
    /// Mapped section start (elements).
    pub start: usize,
    /// Mapped section length (elements).
    pub len: usize,
    /// Action at region exit of the owning (outermost) region.
    pub exit_action: ExitAction,
    /// Structured-region nesting count.
    pub refcount: u32,
}

/// The present table: host symbol → device mapping.
///
/// `enter` increments the refcount when the symbol is already mapped
/// (`present_or_*` semantics); `exit` decrements and reports when the
/// mapping ends so the caller can copy out and free.
#[derive(Debug, Default)]
pub struct PresentTable {
    entries: HashMap<String, PresentEntry>,
}

impl PresentTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the symbol currently present?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Look up a mapping.
    pub fn get(&self, name: &str) -> Option<&PresentEntry> {
        self.entries.get(name)
    }

    /// Record a fresh mapping (refcount 1). Overwrites any stale entry.
    pub fn insert(&mut self, name: &str, entry: PresentEntry) {
        self.entries.insert(name.to_string(), entry);
    }

    /// Re-enter an existing mapping (nested region); returns false when the
    /// symbol is not mapped.
    pub fn reenter(&mut self, name: &str) -> bool {
        match self.entries.get_mut(name) {
            Some(e) => {
                e.refcount += 1;
                true
            }
            None => false,
        }
    }

    /// Leave a mapping. Returns the entry when this was the last reference
    /// (the caller must then perform the exit action and free the buffer).
    pub fn exit(&mut self, name: &str) -> Result<Option<PresentEntry>, DeviceError> {
        match self.entries.get_mut(name) {
            Some(e) if e.refcount > 1 => {
                e.refcount -= 1;
                Ok(None)
            }
            Some(_) => Ok(self.entries.remove(name)),
            None => Err(DeviceError(format!(
                "region exit for `{name}` which is not present on the device"
            ))),
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no symbol is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Names of all mapped symbols (sorted, for deterministic iteration).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_garbage_filled() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Int, vec![4]);
        let v = m.read(id, 0).unwrap().as_int().unwrap();
        assert!(v < -1000);
    }

    #[test]
    fn upload_download_round_trip() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Float, vec![8]);
        let host = ArrayData::F32((0..8).map(|i| i as f32).collect());
        let up = m.upload(id, &host, 0, 8).unwrap();
        assert_eq!(up, 32);
        let mut back = ArrayData::zeros(ScalarType::Float, 8);
        let down = m.download(id, &mut back, 0, 8).unwrap();
        assert_eq!(down, 32);
        assert_eq!(back, host);
    }

    #[test]
    fn partial_section_transfer() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Int, vec![10]);
        let host = ArrayData::Int((0..10).collect());
        m.upload(id, &host, 3, 4).unwrap();
        assert_eq!(m.read(id, 3).unwrap(), Value::Int(3));
        assert_eq!(m.read(id, 6).unwrap(), Value::Int(6));
        // Outside the section stays garbage.
        assert!(m.read(id, 0).unwrap().as_int().unwrap() < -1000);
    }

    #[test]
    fn free_and_double_free() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Double, vec![2]);
        assert_eq!(m.live_buffers(), 1);
        assert!(m.allocated_bytes > 0);
        m.free(id).unwrap();
        assert_eq!(m.live_buffers(), 0);
        assert_eq!(m.allocated_bytes, 0);
        assert!(m.free(id).is_err());
        assert!(m.read(id, 0).is_err());
    }

    #[test]
    fn oob_read_write() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Int, vec![2]);
        assert!(m.read(id, 2).is_err());
        assert!(m.write(id, 5, Value::Int(1)).is_err());
        assert!(m.write(id, 1, Value::Int(1)).is_ok());
    }

    #[test]
    fn present_table_nesting() {
        let mut t = PresentTable::new();
        t.insert(
            "a",
            PresentEntry {
                buffer: BufferId(1),
                start: 0,
                len: 10,
                exit_action: ExitAction::CopyOut,
                refcount: 1,
            },
        );
        assert!(t.contains("a"));
        assert!(t.reenter("a"));
        // First exit: still referenced.
        assert!(t.exit("a").unwrap().is_none());
        assert!(t.contains("a"));
        // Second exit: releases.
        let e = t.exit("a").unwrap().unwrap();
        assert_eq!(e.exit_action, ExitAction::CopyOut);
        assert!(!t.contains("a"));
        // Exit without entry is a device error.
        assert!(t.exit("a").is_err());
    }

    #[test]
    fn reenter_missing_is_false() {
        let mut t = PresentTable::new();
        assert!(!t.reenter("ghost"));
    }

    #[test]
    fn names_sorted() {
        let mut t = PresentTable::new();
        for n in ["z", "a", "m"] {
            t.insert(
                n,
                PresentEntry {
                    buffer: BufferId(0),
                    start: 0,
                    len: 1,
                    exit_action: ExitAction::Release,
                    refcount: 1,
                },
            );
        }
        assert_eq!(t.names(), vec!["a", "m", "z"]);
    }

    #[test]
    fn scalar_buffers_have_len_one() {
        let mut m = DeviceMemory::new();
        let id = m.alloc(ScalarType::Int, vec![]);
        assert_eq!(m.get(id).unwrap().len(), 1);
    }
}
