//! Execution metrics: what the device did.
//!
//! The Titan harness (§VII) tracks "functionality improvements or
//! degradation over time"; the benches report throughput. Both consume these
//! counters rather than peeking into machine internals.

use std::fmt;

/// Counters accumulated over one program execution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Compute-region launches.
    pub kernels_launched: u64,
    /// Of which asynchronous.
    pub async_launches: u64,
    /// Host→device bytes transferred.
    pub bytes_to_device: u64,
    /// Device→host bytes transferred.
    pub bytes_to_host: u64,
    /// Loop iterations executed on the device.
    pub device_iterations: u64,
    /// Statements interpreted (host and device).
    pub statements_executed: u64,
    /// Device buffer allocations.
    pub allocations: u64,
    /// Reductions combined.
    pub reductions: u64,
    /// Present-table hits (`present` and `present_or_*` finding data).
    pub present_hits: u64,
    /// Present-table misses that fell back to an allocation.
    pub present_misses: u64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_device + self.bytes_to_host
    }

    /// Merge another metrics record into this one (for campaign totals).
    pub fn merge(&mut self, other: &Metrics) {
        self.kernels_launched += other.kernels_launched;
        self.async_launches += other.async_launches;
        self.bytes_to_device += other.bytes_to_device;
        self.bytes_to_host += other.bytes_to_host;
        self.device_iterations += other.device_iterations;
        self.statements_executed += other.statements_executed;
        self.allocations += other.allocations;
        self.reductions += other.reductions;
        self.present_hits += other.present_hits;
        self.present_misses += other.present_misses;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernels={} (async {}), bytes h2d={} d2h={}, iters={}, stmts={}, allocs={}, \
             reductions={}, present {}:{}",
            self.kernels_launched,
            self.async_launches,
            self.bytes_to_device,
            self.bytes_to_host,
            self.device_iterations,
            self.statements_executed,
            self.allocations,
            self.reductions,
            self.present_hits,
            self.present_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            kernels_launched: 2,
            bytes_to_device: 100,
            ..Default::default()
        };
        let b = Metrics {
            kernels_launched: 3,
            bytes_to_host: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.kernels_launched, 5);
        assert_eq!(a.total_bytes(), 150);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics::new();
        let s = m.to_string();
        assert!(s.contains("kernels=0"));
        assert!(s.contains("present 0:0"));
    }
}
