//! Asynchronous activity queues on a virtual clock.
//!
//! The paper's async tests (Fig. 10) launch a large kernel with
//! `async(tag)`, immediately call `acc_async_test(tag)` expecting 0, then
//! `wait(tag)` and expect nonzero. Real runtimes give this behaviour through
//! driver streams; the simulator gives it deterministically: every operation
//! advances a virtual clock, an async activity completes at
//! `enqueue_time + cost`, and `wait` jumps the clock forward. Host-visible
//! side effects of async work (deferred copyouts) are stored with the
//! activity and released by the caller when the activity completes.

use std::collections::HashMap;

/// The virtual clock: monotonically advancing simulated ticks.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `ticks`.
    pub fn advance(&mut self, ticks: u64) {
        self.now += ticks;
    }

    /// Jump forward to at least `t` (never backwards).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// An async activity tag. OpenACC async arguments are integer expressions;
/// `async` without an argument uses a distinct implementation-defined queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsyncTag {
    /// `async(n)`.
    Numbered(i64),
    /// Bare `async`.
    Default,
}

/// An enqueued activity: when it completes and an opaque payload id for the
/// deferred host-visible effects (the machine keeps the actual effect list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activity {
    /// Completion timestamp.
    pub completes_at: u64,
    /// Caller-chosen payload identifier (index into the machine's deferred-
    /// effect arena).
    pub payload: u64,
}

/// Per-tag activity queues.
#[derive(Debug, Default)]
pub struct AsyncQueues {
    queues: HashMap<AsyncTag, Vec<Activity>>,
}

impl AsyncQueues {
    /// Fresh empty queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an activity on `tag` completing at `completes_at`.
    pub fn enqueue(&mut self, tag: AsyncTag, completes_at: u64, payload: u64) {
        self.queues.entry(tag).or_default().push(Activity {
            completes_at,
            payload,
        });
    }

    /// Are all activities on `tag` complete at time `now`?
    /// An empty/unknown tag is trivially complete.
    pub fn tag_done(&self, tag: AsyncTag, now: u64) -> bool {
        self.queues
            .get(&tag)
            .map(|q| q.iter().all(|a| a.completes_at <= now))
            .unwrap_or(true)
    }

    /// Are all activities on all tags complete at time `now`?
    pub fn all_done(&self, now: u64) -> bool {
        self.queues
            .values()
            .all(|q| q.iter().all(|a| a.completes_at <= now))
    }

    /// The completion time of the latest activity on `tag` (None when the
    /// queue is empty).
    pub fn tag_completion(&self, tag: AsyncTag) -> Option<u64> {
        self.queues
            .get(&tag)
            .and_then(|q| q.iter().map(|a| a.completes_at).max())
    }

    /// The completion time of the latest activity on any tag.
    pub fn all_completion(&self) -> Option<u64> {
        self.queues
            .values()
            .flat_map(|q| q.iter().map(|a| a.completes_at))
            .max()
    }

    /// Remove and return the payloads of all activities on `tag` that are
    /// complete at `now`, in enqueue order.
    pub fn drain_complete(&mut self, tag: AsyncTag, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(q) = self.queues.get_mut(&tag) {
            let mut i = 0;
            while i < q.len() {
                if q[i].completes_at <= now {
                    out.push(q.remove(i).payload);
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Remove and return payloads of all complete activities on every tag,
    /// in deterministic (tag-sorted) order.
    pub fn drain_all_complete(&mut self, now: u64) -> Vec<u64> {
        let mut tags: Vec<AsyncTag> = self.queues.keys().copied().collect();
        tags.sort_by_key(|t| match t {
            AsyncTag::Default => (0, 0),
            AsyncTag::Numbered(n) => (1, *n),
        });
        let mut out = Vec::new();
        for t in tags {
            out.extend(self.drain_complete(t, now));
        }
        out
    }

    /// Number of pending (incomplete) activities at `now`.
    pub fn pending(&self, now: u64) -> usize {
        self.queues
            .values()
            .flat_map(|q| q.iter())
            .filter(|a| a.completes_at > now)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(5);
        assert_eq!(c.now(), 5);
        c.advance_to(3); // never backwards
        assert_eq!(c.now(), 5);
        c.advance_to(9);
        assert_eq!(c.now(), 9);
    }

    #[test]
    fn async_test_semantics() {
        let mut q = AsyncQueues::new();
        let mut clock = VirtualClock::new();
        clock.advance(10);
        // Launch at t=10 costing 100: completes at 110.
        q.enqueue(AsyncTag::Numbered(1), 110, 0);
        clock.advance(2); // host does a couple of statements
        assert!(
            !q.tag_done(AsyncTag::Numbered(1), clock.now()),
            "immediately after launch: not done"
        );
        // wait(tag): jump the clock to completion.
        clock.advance_to(q.tag_completion(AsyncTag::Numbered(1)).unwrap());
        assert!(q.tag_done(AsyncTag::Numbered(1), clock.now()));
    }

    #[test]
    fn unknown_tag_is_trivially_done() {
        let q = AsyncQueues::new();
        assert!(q.tag_done(AsyncTag::Numbered(42), 0));
        assert!(q.all_done(0));
        assert_eq!(q.tag_completion(AsyncTag::Numbered(42)), None);
    }

    #[test]
    fn tags_are_independent() {
        let mut q = AsyncQueues::new();
        q.enqueue(AsyncTag::Numbered(1), 50, 0);
        q.enqueue(AsyncTag::Numbered(2), 100, 1);
        assert!(q.tag_done(AsyncTag::Numbered(1), 60));
        assert!(!q.tag_done(AsyncTag::Numbered(2), 60));
        assert!(!q.all_done(60));
        assert!(q.all_done(100));
        assert_eq!(q.all_completion(), Some(100));
    }

    #[test]
    fn drain_returns_payloads_in_order() {
        let mut q = AsyncQueues::new();
        q.enqueue(AsyncTag::Default, 10, 7);
        q.enqueue(AsyncTag::Default, 20, 8);
        q.enqueue(AsyncTag::Default, 30, 9);
        assert_eq!(q.drain_complete(AsyncTag::Default, 25), vec![7, 8]);
        assert_eq!(q.pending(25), 1);
        assert_eq!(q.drain_complete(AsyncTag::Default, 25), Vec::<u64>::new());
        assert_eq!(q.drain_complete(AsyncTag::Default, 30), vec![9]);
    }

    #[test]
    fn drain_all_is_deterministic() {
        let mut q = AsyncQueues::new();
        q.enqueue(AsyncTag::Numbered(5), 10, 50);
        q.enqueue(AsyncTag::Numbered(1), 10, 10);
        q.enqueue(AsyncTag::Default, 10, 0);
        assert_eq!(q.drain_all_complete(10), vec![0, 10, 50]);
    }
}
